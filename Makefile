# Convenience targets for the PH-tree reproduction.

PYTHON ?= python

.PHONY: install test fuzz durable-smoke bench bench-small bench-json examples results clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || \
		$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Correctness harness: fixed-seed differential fuzz across the engine
# matrix plus the parallel-layer fault drill (the CI fuzz-smoke job).
fuzz:
	PYTHONPATH=src $(PYTHON) -m repro.tool check --fuzz --seed 0 --ops 4000 --dims 2,6,14

# Durable-store battery: the store unit suite (incl. the torn-WAL corpus
# and the 100+-point crash-offset sweep), a durable differential fuzz
# leg, and the seeded kill-during-flush drills (the CI durability-smoke job).
durable-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/store -q
	PYTHONPATH=src $(PYTHON) -m repro.tool check --fuzz --durable --learned --seed 0 --ops 1500 --dims 2,6
	PYTHONPATH=src $(PYTHON) -m repro.tool check --fault-kinds disk-flush-kill,disk-compact-kill,disk-torn-wal
	PYTHONPATH=src $(PYTHON) -m repro.tool check --faults

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-small:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --repro-scale small

# Regenerate the hot-path perf trajectory (BENCH_core.json at repo root),
# including the instrumented nodes-visited/slots-scanned counts per op.
bench-json:
	PYTHONPATH=src $(PYTHON) -m repro.bench.trajectory --instrument -o BENCH_core.json

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; $(PYTHON) $$f || exit 1; \
	done

results:
	$(PYTHON) -m repro.bench -e all -s small -o results

clean:
	rm -rf build dist src/*.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
