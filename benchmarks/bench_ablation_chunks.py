"""Ablation -- chunked node bit-strings (paper Outlook, item 1).

Asserts the paper's prediction: for large streams the chunked layout
updates faster than the monolithic bit-string, and its cost curve grows
slower.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_ablation_chunks(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "ablation_chunks", repro_scale, results_dir
    )
    mono = result.get("monolithic")
    chunked = result.get("chunked(4KiB)")
    assert mono.xs == chunked.xs
    # At the largest stream the chunked buffer must win.
    assert chunked.ys[-1] < mono.ys[-1], (mono.ys, chunked.ys)
    # And its growth from smallest to largest must be slower.
    mono_growth = mono.ys[-1] / mono.ys[0]
    chunked_growth = chunked.ys[-1] / chunked.ys[0]
    assert chunked_growth < mono_growth
