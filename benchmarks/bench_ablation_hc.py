"""Ablation -- HC/LHC automatic switching (paper Section 3.2).

Asserts that the automatic mode's modelled space never exceeds the better
of the two forced modes by more than rounding noise, at any k.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_ablation_hc(benchmark, repro_scale, results_dir):
    results = run_and_report(
        benchmark, "ablation_hc", repro_scale, results_dir
    )
    by_id = {r.exp_id: r for r in results}
    space = by_id["ablation_hc-space"]
    auto = space.get("PH[auto]")
    lhc = space.get("PH[lhc]")
    hc = space.get("PH[hc]")
    for i in range(len(auto.xs)):
        best_forced = min(lhc.ys[i], hc.ys[i])
        assert auto.ys[i] <= best_forced * 1.05, (
            auto.xs[i],
            auto.ys[i],
            best_forced,
        )
