"""Ablation -- mask-guided range iteration (paper Section 3.5).

Asserts that masked and naive traversals return identical work (their
per-returned-entry costs are reported; correctness equivalence is covered
by the test suite) and that results exist for both datasets.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_and_report


def test_ablation_masks(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "ablation_masks", repro_scale, results_dir
    )
    labels = {s.label for s in result.series}
    assert labels == {
        "masks-CUBE",
        "naive-CUBE",
        "CB1-CUBE",
        "masks-CLUSTER0.5",
        "naive-CLUSTER0.5",
        "CB1-CLUSTER0.5",
    }
    for series in result.series:
        assert all(y > 0 or math.isnan(y) for y in series.ys), series
