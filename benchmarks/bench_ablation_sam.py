"""Ablation -- the paper's §2 arguments vs R-tree and plain quadtree.

Asserts the measurable parts of the claims: the PH-tree needs less
modelled memory than both relatives at every n, the R-tree's per-entry
load cost exceeds the PH-tree's (quadratic splits + MBR maintenance),
and R-tree point queries degrade with n (overlapping MBRs) while the
PH-tree's stay flat.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_ablation_sam(benchmark, repro_scale, results_dir):
    results = run_and_report(
        benchmark, "ablation_sam", repro_scale, results_dir
    )
    by_id = {r.exp_id: r for r in results}
    space = by_id["ablation_sam-space"]
    ph = space.get("PH")
    rt = space.get("RT")
    qt = space.get("QT")
    for i in range(len(ph.xs)):
        assert ph.ys[i] < rt.ys[i]
        assert ph.ys[i] < qt.ys[i]
    load = by_id["ablation_sam-load"]
    assert load.get("RT").ys[-1] > load.get("PH").ys[-1]
    point = by_id["ablation_sam-point"]
    # R-tree point queries must trail the reference PAM (overlapping
    # MBRs force multi-path descents); growth-ratio comparisons are too
    # noisy at tiny n to assert.
    assert point.get("RT").ys[-1] > point.get("KD1").ys[-1]
