"""Ablation -- storage engines: mutable nodes vs bulk build vs frozen
bytes.

Asserts the space/speed trade-off DESIGN.md documents: the frozen
byte-stream is an order of magnitude smaller than the mutable engine's
real footprint, while the mutable engine answers point queries faster;
bulk loading produces the same canonical structure (checked by the unit
tests) at comparable cost.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_ablation_storage(benchmark, repro_scale, results_dir):
    results = run_and_report(
        benchmark, "ablation_storage", repro_scale, results_dir
    )
    by_id = {r.exp_id: r for r in results}
    space = by_id["ablation_storage-space"]
    mutable = space.get("mutable(py)")
    frozen = space.get("frozen(bytes)")
    for i in range(len(mutable.xs)):
        assert frozen.ys[i] * 5 < mutable.ys[i], (
            frozen.ys[i],
            mutable.ys[i],
        )
    query = by_id["ablation_storage-query"]
    assert query.get("mutable").ys[-1] < query.get("frozen").ys[-1]
    build = by_id["ablation_storage-build"]
    for series in build.series:
        assert all(y > 0 for y in series.ys)
