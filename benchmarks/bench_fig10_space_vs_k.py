"""Figure 10 -- PH bytes/entry vs k for CLUSTER0.4/0.5/CUBE (Section
4.3.6).

Asserts the paper's divergence: at high k, CLUSTER0.5 costs clearly more
per entry than CLUSTER0.4.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig10_space_vs_k(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "fig10", repro_scale, results_dir
    )
    c04 = result.get("PH-CLUSTER0.4")
    c05 = result.get("PH-CLUSTER0.5")
    assert all(v > 0 for v in c04.ys + c05.ys)
    # Divergence at the high-k end of the collision regime (k in 5..10).
    high = [i for i, k in enumerate(c04.xs) if 5 <= k <= 10]
    assert any(c05.ys[i] > 1.2 * c04.ys[i] for i in high), (
        c04.ys,
        c05.ys,
    )
