"""Figure 11 -- insertion times vs k on CLUSTER (Section 4.3.7)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig11_insert_vs_k_cluster(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "fig11", repro_scale, results_dir
    )
    expected = {
        "PH-CLUSTER0.4",
        "PH-CLUSTER0.5",
        "KD2-CLUSTER0.5",
        "CB1-CLUSTER0.5",
        "CB1-CLUSTER0.4",
    }
    assert {s.label for s in result.series} == expected
    for series in result.series:
        assert all(y > 0 for y in series.ys)
