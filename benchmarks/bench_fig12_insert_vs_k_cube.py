"""Figure 12 -- insertion times vs k on CUBE (Section 4.3.7).

Asserts the paper's CB-tree shape: CB1 insertion cost grows with k
(binary-trie depth is k*w), ending above its low-k cost.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig12_insert_vs_k_cube(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "fig12", repro_scale, results_dir
    )
    assert {s.label for s in result.series} == {
        "PH-CUBE",
        "KD2-CUBE",
        "CB1-CUBE",
    }
    cb = result.get("CB1-CUBE")
    assert cb.ys[-1] > cb.ys[0], cb.ys  # linear growth in k
