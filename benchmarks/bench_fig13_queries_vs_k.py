"""Figure 13 -- query times vs k (Section 4.3.7).

Three panels: point queries on CLUSTER and CUBE, range queries across
datasets.  Asserts the paper's CB-vs-PH point-query scaling: the CB tree's
cost grows with k much faster than the PH-tree's.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_and_report


def test_fig13_queries_vs_k(benchmark, repro_scale, results_dir):
    results = run_and_report(benchmark, "fig13", repro_scale, results_dir)
    by_id = {r.exp_id: r for r in results}
    assert set(by_id) == {"fig13a", "fig13b", "fig13c"}
    # Panel b: CB1 point queries scale linearly in k; PH stays flatter.
    cube = by_id["fig13b"]
    ph = cube.get("PH-CUBE")
    cb = cube.get("CB1-CUBE")
    ph_growth = ph.ys[-1] / ph.ys[0]
    cb_growth = cb.ys[-1] / cb.ys[0]
    assert cb_growth > ph_growth, (ph.ys, cb.ys)
    # Panel c values are per returned entry and must be positive/NaN.
    for series in by_id["fig13c"].series:
        assert all(y > 0 or math.isnan(y) for y in series.ys)
