"""Figure 14 -- space vs k on CLUSTER, all structures (Section 4.3.7).

Asserts: PH-CL0.4 stays below KD1 at every k, and even the worst-case
PH-CL0.5 stays below KD1 (the paper: 'over 15% fewer bytes per entry than
the KD1 tree').
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig14_space_vs_k_cluster(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "fig14", repro_scale, results_dir
    )
    kd1 = result.get("KD1-CLUSTER0.5")
    c04 = result.get("PH-CLUSTER0.4")
    c05 = result.get("PH-CLUSTER0.5")
    for i in range(len(kd1.xs)):
        assert c04.ys[i] < kd1.ys[i]
        assert c05.ys[i] < kd1.ys[i]
