"""Figure 15 -- space vs k on CUBE, all structures (Section 4.3.7).

Asserts the paper's ordering at every k: PH below KD1 and both CB trees;
the naive double[] below everything.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig15_space_vs_k_cube(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "fig15", repro_scale, results_dir
    )
    ph = result.get("PH-CUBE")
    kd1 = result.get("KD1-CUBE")
    cb1 = result.get("CB1-CUBE")
    obj = result.get("o[]-CUBE")
    for i in range(len(ph.xs)):
        assert ph.ys[i] < kd1.ys[i]
        assert ph.ys[i] < cb1.ys[i]
    # At high k the PH-tree undercuts even the object[] layout -- the
    # paper's "can easily compete with un-indexed structures" claim.
    assert ph.ys[-1] < obj.ys[-1]
