"""Figure 7 -- insertion times per entry (paper Section 4.3.1).

Regenerates all three panels: 2D TIGER/Line, 3D CUBE, 3D CLUSTER, for
PH, KD1, KD2, CB1 and CB2.  Asserts the reproducible shape: the PH-tree's
per-entry insertion cost stays flat (within noise) as n grows.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig7_insertion(benchmark, repro_scale, results_dir):
    results = run_and_report(benchmark, "fig7", repro_scale, results_dir)
    by_id = {r.exp_id: r for r in results}
    assert set(by_id) == {"fig7a", "fig7b", "fig7c"}
    for result in results:
        for series in result.series:
            assert len(series.ys) == len(series.xs)
            assert all(y > 0 for y in series.ys)
    # Shape check: PH per-entry insertion roughly flat over the sweep
    # (paper: "virtually constant behaviour"); allow 3x noise headroom.
    for exp_id in ("fig7b", "fig7c"):
        ph = by_id[exp_id].get("PH")
        assert ph.ys[-1] < 3.0 * ph.ys[0], (exp_id, ph.ys)
