"""Figure 8 -- point query times (paper Section 4.3.2).

Regenerates the three panels and asserts the paper's headline shape: the
PH-tree's point queries stay nearly flat in n, and the CB trees are the
slowest family on 3D data (binary depth ~ k*w versus the PH-tree's w).
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig8_point_queries(benchmark, repro_scale, results_dir):
    results = run_and_report(benchmark, "fig8", repro_scale, results_dir)
    by_id = {r.exp_id: r for r in results}
    assert set(by_id) == {"fig8a", "fig8b", "fig8c"}
    for result in results:
        for series in result.series:
            assert all(y > 0 for y in series.ys)
    # PH point queries degrade only mildly with n.
    ph = by_id["fig8b"].get("PH")
    assert ph.ys[-1] < 4.0 * ph.ys[0], ph.ys
    # CB trees cost more than PH at the largest n on CUBE (paper Fig 8b).
    largest = -1
    assert by_id["fig8b"].get("CB1").ys[largest] > ph.ys[largest] * 0.8
