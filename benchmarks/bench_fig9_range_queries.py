"""Figure 9 -- range query times per returned entry (paper Section 4.3.3).

Regenerates the three panels (PH, KD1, KD2).  Asserts the paper's headline
CLUSTER result: the PH-tree answers the cluster-slab queries at least an
order of magnitude faster per returned entry than the kD-trees.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_and_report


def test_fig9_range_queries(benchmark, repro_scale, results_dir):
    results = run_and_report(benchmark, "fig9", repro_scale, results_dir)
    by_id = {r.exp_id: r for r in results}
    assert set(by_id) == {"fig9a", "fig9b", "fig9c"}
    for result in results:
        for series in result.series:
            assert all(
                y > 0 or math.isnan(y) for y in series.ys
            ), series
    # Paper Fig 9c: PH beats the kD-trees decisively on CLUSTER.
    cluster = by_id["fig9c"]
    ph_last = cluster.get("PH").ys[-1]
    kd_last = min(cluster.get("KD1").ys[-1], cluster.get("KD2").ys[-1])
    if not math.isnan(ph_last) and not math.isnan(kd_last):
        assert ph_last < kd_last
