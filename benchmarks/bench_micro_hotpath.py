"""Hot-path micro-benchmarks (perf trajectory -> BENCH_core.json).

Unlike the per-figure ``bench_*`` files, this benchmark tracks the
reproduction's *own* speed over time: it times the core hot paths
(insert, sequential vs batched point queries, the iterative range-scan
kernel vs the seed generator engine, kNN) and writes the numbers to
``BENCH_core.json`` at the repository root.  Run via ``make bench-json``
or ``pytest benchmarks/bench_micro_hotpath.py --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.trajectory import SCALES, format_report, run_trajectory, write_report

REPO_ROOT = Path(__file__).resolve().parents[1]

pytestmark = pytest.mark.benchmark(group="micro_hotpath")


def test_micro_hotpath_trajectory(benchmark, repro_scale):
    # "paper" has no dedicated preset; the trajectory tops out at medium.
    scale = repro_scale if repro_scale in SCALES else "medium"
    report = benchmark.pedantic(
        run_trajectory,
        kwargs={"scale": scale, "instrument": True},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_report(report))
    write_report(report, REPO_ROOT / "BENCH_core.json")

    metrics = report["metrics"]
    assert all(v > 0 for v in metrics.values())
    # Loose floors (the acceptance numbers are recorded at scale=small;
    # CI machines are noisy, so only guard against outright regressions).
    assert metrics["speedup_get_many"] > 1.0
    assert metrics["speedup_range_iter"] > 1.0
    # The specialized per-(k, width) kernels must have been selected —
    # a silent fallback to the generic engines would still pass every
    # correctness test while quietly losing the perf layer.
    specialization = report["specialization"]
    assert specialization["selected"], specialization
    assert specialization["kernel"].startswith("Specialization("), specialization
    assert 1 <= specialization["registry_size"] <= specialization["registry_cap"]
    assert metrics["speedup_spec_insert"] > 1.0
    assert metrics["speedup_spec_point"] > 1.0
    assert metrics["speedup_spec_window"] > 1.0
    # The instrumented pass must have actually counted the work.
    instrumentation = report["instrumentation"]
    for op in ("insert", "point_seq", "point_batch", "range_kernel",
               "query_many", "knn"):
        counts = instrumentation[op]
        assert counts["ops"] > 0, op
        assert any(
            v > 0 for k, v in counts.items() if k != "ops"
        ), (op, counts)
