"""Micro-benchmark -- slab word reads: ``array('Q')`` vs ``memoryview``
vs hoisted ``list`` vs ``Struct.unpack_from``.

Documents the boxed-PyLong cost the arena read kernels are built
around: every subscript of an ``array('Q')`` (or of an unsigned 64-bit
``memoryview`` over it) materialises a fresh PyLong, so k subscripts
per node visit pay k allocations.  A one-shot ``tolist`` slice boxes
the same words once in a single C loop and every later read is a
plain-list pointer fetch; ``Struct("=kQ").unpack_from`` builds a whole
key tuple in one C call.  The plan cache in ``core/specialize.py``
(DESIGN.md section 11.5) exists precisely because of the ratios pinned
here, and ``bisect_left`` over a hoisted list vs over the raw array is
why cached LHC plans carry plain lists.

Run directly (``python benchmarks/bench_micro_slab_reads.py``) for the
nanosecond table, or under pytest for the ordering assertions (loose
floors only -- CI runners are noisy).
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_left
from struct import Struct

N_WORDS = 4096
K = 4
REPS = 200


def _best(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure():
    words = array("Q", range(N_WORDS))
    view = memoryview(words)
    hoisted = words.tolist()
    unpack = Struct(f"={K}Q").unpack_from
    idx = list(range(0, N_WORDS - K, K))
    n_groups = len(idx)

    def read_array():
        acc = 0
        for i in idx:
            acc += words[i] + words[i + 1] + words[i + 2] + words[i + 3]
        return acc

    def read_view():
        acc = 0
        for i in idx:
            acc += view[i] + view[i + 1] + view[i + 2] + view[i + 3]
        return acc

    def read_list():
        acc = 0
        for i in idx:
            acc += (
                hoisted[i] + hoisted[i + 1] + hoisted[i + 2] + hoisted[i + 3]
            )
        return acc

    def read_struct():
        acc = 0
        for i in idx:
            a, b, c, d = unpack(words, i << 3)
            acc += a + b + c + d
        return acc

    def hoist_tolist():
        for i in idx:
            words[i : i + K].tolist()

    probes = idx[: n_groups // 2]

    def bisect_array():
        for a in probes:
            bisect_left(words, a, 0, N_WORDS)

    def bisect_list():
        for a in probes:
            bisect_left(hoisted, a, 0, N_WORDS)

    assert read_array() == read_view() == read_list() == read_struct()
    per_group = {
        "array('Q') subscripts x4": _best(read_array) / n_groups,
        "memoryview subscripts x4": _best(read_view) / n_groups,
        "hoisted-list subscripts x4": _best(read_list) / n_groups,
        f"Struct(={K}Q).unpack_from": _best(read_struct) / n_groups,
        "slice+tolist (the hoist itself)": _best(hoist_tolist) / n_groups,
    }
    per_probe = {
        "bisect_left over array('Q')": _best(bisect_array) / len(probes),
        "bisect_left over list": _best(bisect_list) / len(probes),
    }
    return per_group, per_probe


def test_boxed_pylong_cost():
    per_group, per_probe = measure()
    arr = per_group["array('Q') subscripts x4"]
    lst = per_group["hoisted-list subscripts x4"]
    struct_read = per_group[f"Struct(={K}Q).unpack_from"]
    # The hoisted list must clearly beat per-read boxing (measured
    # ~1.8x here; 1.2x floor for noisy runners) and one Struct call
    # must not lose to 4 boxed subscripts.
    assert lst * 1.2 < arr, (lst, arr)
    assert struct_read < arr * 1.1, (struct_read, arr)
    # A C bisect over the hoisted list must beat the same search over
    # the boxing array -- the reason cached plans carry plain lists.
    assert (
        per_probe["bisect_left over list"]
        < per_probe["bisect_left over array('Q')"]
    ), per_probe
    # The hoist pays for itself after a handful of revisits.
    hoist = per_group["slice+tolist (the hoist itself)"]
    assert hoist < arr * 8, (hoist, arr)


if __name__ == "__main__":
    per_group, per_probe = measure()
    print(f"{N_WORDS} words, best of {REPS} reps")
    for label, seconds in {**per_group, **per_probe}.items():
        print(f"  {label:34s} {seconds * 1e9:7.1f} ns")
