"""Table 1 -- bytes per entry across seven structures (Section 4.3.5).

Asserts the paper's ordering: d[] < o[] < PH on CUBE, PH below both
kD-trees on every dataset.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_tab1_space(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(benchmark, "tab1", repro_scale, results_dir)
    text = result.text
    assert "TIGER" in text and "CUBE" in text and "CLUSTER0.5" in text
    # Parse the measured rows back out for shape assertions.
    rows = {}
    for line in text.splitlines():
        parts = line.split()
        if parts and parts[0] in ("TIGER", "CUBE", "CLUSTER0.5"):
            rows[parts[0]] = [float(v) for v in parts[2:]]
    names = ("PH", "KD1", "KD2", "CB1", "CB2", "d[]", "o[]")
    for dataset, values in rows.items():
        by_name = dict(zip(names, values))
        assert by_name["PH"] < by_name["KD1"], dataset
        assert by_name["PH"] < by_name["KD2"], dataset
        assert by_name["d[]"] < by_name["o[]"], dataset
    assert rows["CUBE"][0] < rows["CUBE"][3]  # PH < CB1 on CUBE
