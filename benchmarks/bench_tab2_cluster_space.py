"""Table 2 -- PH bytes/entry vs n for CLUSTER0.4 / CLUSTER0.5 (Section
4.3.6).

Asserts both paper trends: bytes/entry falls (or stays flat) with n, and
CLUSTER0.5 starts above CLUSTER0.4.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_tab2_cluster_space(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(benchmark, "tab2", repro_scale, results_dir)
    c04 = result.get("PH-CLUSTER0.4").ys
    c05 = result.get("PH-CLUSTER0.5").ys
    assert all(v > 0 for v in c04 + c05)
    # Trend 1: the 0.5 offset costs extra space at the smallest n.
    assert c05[0] > c04[0]
    # Trend 2: per-entry space shrinks (or stays put) as the tree grows.
    assert c05[-1] <= c05[0]
    assert c04[-1] <= c04[0] * 1.1
