"""Table 3 -- PH-tree node counts for varying k (Section 4.3.6).

Asserts the headline effect at the reproducible range: for mid-range k
(where n >> 2**k still holds at the chosen scale), CLUSTER0.5 needs far
more nodes than CLUSTER0.4.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_tab3_node_counts(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(benchmark, "tab3", repro_scale, results_dir)
    cube = result.get("PH-CUBE")
    c04 = result.get("PH-CLUSTER0.4")
    c05 = result.get("PH-CLUSTER0.5")
    assert cube.xs == c04.xs == c05.xs
    # At mid-range k (where n >> 2**k still holds at reproduction scale)
    # the 0.5 offset must inflate node counts (the paper's k=5..15 blow-up).
    mid = [i for i, k in enumerate(cube.xs) if 3 <= k <= 10]
    assert any(
        c05.ys[i] > 1.3 * c04.ys[i] for i in mid
    ), (c04.ys, c05.ys)
