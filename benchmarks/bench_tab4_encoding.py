"""Table 4 -- IEEE Binary64 representations (Section 4.3.6).

A deterministic, exact reproduction: the benchmark asserts bit-for-bit
equality with the paper's four rows.
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_tab4_encoding(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(benchmark, "tab4", repro_scale, results_dir)
    assert "match the paper's Table 4 exactly" in result.text
    assert "MISMATCH" not in result.text
