"""Section 4.3.4 -- tree unloading (deletion).

No paper figure exists; the text reports deletion "very similar to tree
loading, but a bit faster" with PH deletes ~10% faster than inserts.  The
benchmark regenerates the measurement and sanity-checks that PH deletion
stays within 2x of insertion per entry (the qualitative claim; exact
ratios are JVM-specific).
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_unload(benchmark, repro_scale, results_dir):
    (result,) = run_and_report(
        benchmark, "unload", repro_scale, results_dir
    )
    for series in result.series:
        assert all(y > 0 for y in series.ys)
    assert any("delete/insert" in note for note in result.notes)
