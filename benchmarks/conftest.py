"""Shared helpers for the per-figure benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper at
the configurable scale (default ``tiny`` so ``pytest benchmarks/
--benchmark-only`` completes in minutes; pass ``--repro-scale small`` or
``medium`` for closer-to-paper sweeps).  The experiment's result tables
are printed into the pytest report (run with ``-s`` or check the captured
output) and written to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="tiny",
        choices=["tiny", "small", "medium", "paper"],
        help="parameter scale for the paper-reproduction benchmarks",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_and_report(benchmark, exp_id, scale, results_dir):
    """Run one experiment exactly once under pytest-benchmark and persist
    its report."""
    from repro.bench.experiments import run_experiment

    results = benchmark.pedantic(
        run_experiment, args=(exp_id, scale), rounds=1, iterations=1
    )
    assert results, f"experiment {exp_id} produced no results"
    text = "\n\n".join(r.format_table() for r in results)
    print()
    print(text)
    (results_dir / f"{exp_id}_{scale}.txt").write_text(text + "\n")
    return results
