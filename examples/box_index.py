#!/usr/bin/env python3
"""Region data in a point tree: bounding-box indexing with PHTreeSolidF.

The paper classifies the PH-tree as a point access method (§2); the
classic trick to store *regions* in it is to map each k-dimensional
axis-aligned box to one 2k-dimensional point (min corner ++ max corner).
This example indexes the bounding boxes of a simulated city -- buildings,
parks, road segments -- and answers the workloads a GIS or a game engine
would ask: "what overlaps this viewport?", "what is entirely inside this
district?", "what covers this point?" (stabbing query).

Run:  python examples/box_index.py
"""

from __future__ import annotations

import random
import time

from repro import PHTreeSolidF

N_BOXES = 20_000


def main() -> None:
    rng = random.Random(2014)
    solid = PHTreeSolidF(dims=2)

    print(f"indexing {N_BOXES} bounding boxes ...")
    started = time.perf_counter()
    kinds = ("building", "park", "road")
    for i in range(N_BOXES):
        kind = kinds[i % len(kinds)]
        cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
        if kind == "road":
            w, h = rng.uniform(1, 20), rng.uniform(0.01, 0.05)
        elif kind == "park":
            w, h = rng.uniform(0.5, 3), rng.uniform(0.5, 3)
        else:
            w, h = rng.uniform(0.02, 0.2), rng.uniform(0.02, 0.2)
        solid.put(
            (cx - w / 2, cy - h / 2),
            (cx + w / 2, cy + h / 2),
            f"{kind}-{i}",
        )
    print(
        f"loaded in {time.perf_counter() - started:.2f}s; the boxes live "
        f"in a {solid.point_tree.dims}-dimensional point tree"
    )

    # Viewport query: everything intersecting the camera rectangle.
    viewport = ((40.0, 40.0), (42.0, 41.5))
    hits = list(solid.query_intersect(*viewport))
    by_kind = {}
    for _, _, name in hits:
        by_kind[name.split("-")[0]] = by_kind.get(name.split("-")[0], 0) + 1
    print(f"viewport {viewport}: {len(hits)} objects {by_kind}")

    # Containment query: what fits entirely inside a district?
    district = ((10.0, 10.0), (30.0, 30.0))
    contained = sum(1 for _ in solid.query_contained(*district))
    intersecting = sum(1 for _ in solid.query_intersect(*district))
    print(
        f"district {district}: {contained} objects fully inside, "
        f"{intersecting} touching it"
    )

    # Stabbing query: what covers a clicked point?
    click = (41.0, 40.7)
    covering = [name for _, _, name in solid.query_point(click)]
    print(f"objects under the cursor at {click}: {len(covering)}")

    # Collision check for a new building footprint.
    candidate = ((41.0, 40.6), (41.3, 40.9))
    blockers = list(solid.query_intersect(*candidate))
    print(
        f"placing a building at {candidate}: "
        f"{'BLOCKED by ' + blockers[0][2] if blockers else 'free'}"
    )
    solid.check_invariants()


if __name__ == "__main__":
    main()
