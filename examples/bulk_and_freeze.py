#!/usr/bin/env python3
"""An ETL pipeline: bulk-build, freeze, ship, query at rest.

A common deployment pattern for read-mostly spatial data: construct the
index once from a data dump (``bulk_load``), freeze it into a compact
byte artifact (``freeze``), ship the artifact, and serve queries
directly from the bytes (``FrozenPHTree``) -- no deserialisation step,
no pointer structures, memory = file size.

Run:  python examples/bulk_and_freeze.py
"""

from __future__ import annotations

import time

from repro import FrozenPHTree, PHTree, bulk_load, freeze
from repro.core.serialize import U64ValueCodec
from repro.datasets import generate_tiger
from repro.encoding.ieee import encode_point

N_POINTS = 25_000


def main() -> None:
    # --- Extract: the nightly data dump.
    print(f"extracting {N_POINTS} map points ...")
    points = generate_tiger(N_POINTS, seed=7)
    records = [
        (encode_point(p), row_id) for row_id, p in enumerate(points)
    ]

    # --- Transform: bulk-build the canonical tree.
    started = time.perf_counter()
    tree = bulk_load(records, dims=2, width=64)
    build_s = time.perf_counter() - started
    print(f"bulk-built {len(tree)} entries in {build_s:.2f}s")

    # The bulk build is bit-identical to an incremental one -- verify on
    # a sample (the full check is in the test suite).
    incremental = PHTree(dims=2, width=64)
    for key, value in records[:1000]:
        incremental.put(key, value)

    # --- Load: freeze into the shippable artifact.
    artifact = freeze(tree, U64ValueCodec)
    flat = len(tree) * 2 * 8
    print(
        f"frozen artifact: {len(artifact):,} bytes "
        f"({len(artifact) / len(tree):.1f} B/point incl. row ids; "
        f"flat coordinates alone would be {flat:,})"
    )

    # --- Serve: query the bytes directly.
    frozen = FrozenPHTree(artifact, U64ValueCodec)
    sample_key = records[123][0]
    started = time.perf_counter()
    hits = 0
    for _ in range(2000):
        frozen.contains(sample_key)
        hits += 1
    per_query = (time.perf_counter() - started) / hits * 1e6
    print(f"point queries at rest: {per_query:.1f} us each")

    # Window query over Colorado-ish territory, straight off the bytes.
    lo = encode_point((-109.0, 37.0))
    hi = encode_point((-102.0, 41.0))
    started = time.perf_counter()
    in_window = frozen.count(lo, hi)
    window_ms = (time.perf_counter() - started) * 1e3
    print(
        f"window query: {in_window} points in {window_ms:.1f} ms, "
        f"zero deserialisation"
    )

    # Round-trip safety: thaw and compare sizes.
    thawed = frozen.thaw()
    assert len(thawed) == len(tree)
    print(f"thawed back into a mutable tree: {len(thawed)} entries")


if __name__ == "__main__":
    main()
