#!/usr/bin/env python3
"""Concurrent access (paper Outlook, item 3).

The paper notes that, with at most two nodes modified per update, the
PH-tree is well suited for concurrent access.  This example runs a
multi-threaded sensor-ingestion workload against a
`SynchronizedPHTree`: writer threads stream in readings while reader
threads run window queries and nearest-neighbour lookups, then the final
content is verified against a sequential replay.

Run:  python examples/concurrent_updates.py
"""

from __future__ import annotations

import random
import threading
import time

from repro import PHTree, SynchronizedPHTree

N_WRITERS = 3
N_READERS = 3
EVENTS_PER_WRITER = 4_000
WIDTH = 16


def main() -> None:
    tree = SynchronizedPHTree(PHTree(dims=2, width=WIDTH))
    query_counts = []
    stop = threading.Event()

    def writer(worker: int) -> None:
        rng = random.Random(worker)
        for i in range(EVENTS_PER_WRITER):
            # Station grid position; value = (worker, sequence).
            key = (rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH))
            tree.put(key, (worker, i))

    def reader(worker: int) -> None:
        rng = random.Random(1000 + worker)
        queries = 0
        while not stop.is_set():
            lo = (rng.randrange(1 << 15), rng.randrange(1 << 15))
            hi = (lo[0] + (1 << 13), lo[1] + (1 << 13))
            results = tree.query(lo, hi)
            # Every result must actually lie in the box (no torn reads).
            for key, _ in results:
                assert lo[0] <= key[0] <= hi[0]
                assert lo[1] <= key[1] <= hi[1]
            tree.knn((1 << 15, 1 << 15), 3)
            queries += 1
        query_counts.append(queries)

    writers = [
        threading.Thread(target=writer, args=(w,))
        for w in range(N_WRITERS)
    ]
    readers = [
        threading.Thread(target=reader, args=(r,))
        for r in range(N_READERS)
    ]
    started = time.perf_counter()
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    elapsed = time.perf_counter() - started

    print(
        f"{N_WRITERS} writers ingested "
        f"{N_WRITERS * EVENTS_PER_WRITER} events in {elapsed:.2f}s "
        f"({N_WRITERS * EVENTS_PER_WRITER / elapsed:,.0f} events/s)"
    )
    print(
        f"{N_READERS} readers completed "
        f"{sum(query_counts)} window+kNN query rounds concurrently"
    )

    # Verify: replay the same events sequentially -> identical content.
    replay = PHTree(dims=2, width=WIDTH)
    for worker in range(N_WRITERS):
        rng = random.Random(worker)
        for i in range(EVENTS_PER_WRITER):
            key = (rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH))
            replay.put(key, (worker, i))
    concurrent_content = dict(tree.items())
    sequential_content = dict(replay.items())
    assert set(concurrent_content) == set(sequential_content)
    print(
        f"verification: {len(concurrent_content)} unique keys match a "
        f"sequential replay exactly"
    )
    tree.check_invariants()
    print("structural invariants hold after concurrent ingestion")


if __name__ == "__main__":
    main()
