#!/usr/bin/env python3
"""Geospatial indexing: the paper's TIGER/Line motivation, end to end.

Builds a PH-tree over a synthetic US county-road dataset (the TIGER/Line
substitute from `repro.datasets.tiger`), then answers the workloads a
geo-information system would issue -- bounding-box lookups, k-nearest
points of interest -- and compares query cost and memory against a classic
kD-tree on the same data.

Run:  python examples/geospatial_index.py
"""

from __future__ import annotations

import time

from repro.baselines import KDTree, PHTreeIndex
from repro.datasets import generate_tiger
from repro.workloads import data_bounds, make_volume_boxes

N_POINTS = 30_000
N_QUERIES = 200


def timed(label, func):
    start = time.perf_counter()
    result = func()
    elapsed = time.perf_counter() - start
    print(f"{label:<42s} {elapsed * 1e3:8.1f} ms")
    return result


def main() -> None:
    print(f"generating {N_POINTS} TIGER-like map points ...")
    points = generate_tiger(N_POINTS, seed=2014)
    bounds = data_bounds(points)
    print(
        f"bounding box: x in [{bounds[0][0]:.1f}, {bounds[1][0]:.1f}], "
        f"y in [{bounds[0][1]:.1f}, {bounds[1][1]:.1f}]"
    )

    ph = PHTreeIndex(dims=2)
    kd = KDTree(dims=2)
    timed("load PH-tree", lambda: [ph.put(p) for p in points])
    timed("load kD-tree", lambda: [kd.put(p) for p in points])
    print(
        f"memory: PH {ph.bytes_per_entry():.0f} B/entry, "
        f"KD {kd.bytes_per_entry():.0f} B/entry "
        f"(JVM model; paper Table 1: 68 vs 87)"
    )

    # 1%-of-area boxes, as in the paper's Section 4.3.3.
    boxes = make_volume_boxes(bounds, N_QUERIES, 0.01, seed=7)

    def run_queries(index):
        total = 0
        for lo, hi in boxes:
            for _ in index.query(lo, hi):
                total += 1
        return total

    ph_hits = timed(
        f"{N_QUERIES} window queries on PH-tree", lambda: run_queries(ph)
    )
    kd_hits = timed(
        f"{N_QUERIES} window queries on kD-tree", lambda: run_queries(kd)
    )
    assert ph_hits == kd_hits, "indexes disagree!"
    print(f"   both returned {ph_hits} points in total")

    # Nearest points of interest around a few map positions.
    print("5 nearest map points to Denver-ish (-105.0, 39.7):")
    for point, _ in ph.knn((-105.0, 39.7), 5):
        print(f"   ({point[0]:.4f}, {point[1]:.4f})")

    # Incremental updates: a map edit session.
    edits = points[:1000]
    timed(
        "delete+reinsert 1000 points (map edits)",
        lambda: [
            (ph.remove(p), ph.put(p)) for p in edits
        ],
    )
    print(f"index intact: {len(ph)} points")


if __name__ == "__main__":
    main()
