#!/usr/bin/env python3
"""Persistence: bit-stream serialisation of a whole PH-tree.

The PH-tree serialises each node into a tightly packed bit-string (paper
Section 3.4).  This example stores a tree to disk, restores it, and
demonstrates the structural *canonicity* that makes the format useful for
content-addressed storage: the bytes depend only on the key set, never on
the construction history.

Run:  python examples/persistence.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import PHTree
from repro.core.serialize import (
    U64ValueCodec,
    deserialize_tree,
    serialize_tree,
)


def main() -> None:
    rng = random.Random(99)
    tree = PHTree(dims=3, width=32)
    for i in range(20_000):
        key = tuple(rng.randrange(1 << 32) for _ in range(3))
        tree.put(key, i)  # u64 payloads survive the round trip

    data = serialize_tree(tree, U64ValueCodec)
    flat_bytes = len(tree) * 3 * 8
    print(f"entries:             {len(tree)}")
    print(f"serialised size:     {len(data)} bytes")
    print(f"flat double[] size:  {flat_bytes} bytes")
    print(f"compression ratio:   {flat_bytes / len(data):.2f}x "
          f"(before values; prefix sharing at work)")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tree.pht"
        path.write_bytes(data)
        print(f"wrote {path.name} ({path.stat().st_size} bytes)")

        restored = deserialize_tree(path.read_bytes(), U64ValueCodec)
        assert len(restored) == len(tree)
        assert dict(restored.items()) == dict(tree.items())
        restored.check_invariants()
        print("restored tree: identical content, invariants hold")

    # Canonical bytes: reinsert the same keys in a shuffled order.
    entries = list(tree.items())
    rng.shuffle(entries)
    shuffled = PHTree(dims=3, width=32)
    for key, value in entries:
        shuffled.put(key, value)
    assert serialize_tree(shuffled, U64ValueCodec) == data
    print("canonical form: shuffled construction -> identical bytes")
    print("(the tree structure is determined only by the data, paper §3)")


if __name__ == "__main__":
    main()
