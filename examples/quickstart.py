#!/usr/bin/env python3
"""Quickstart: the PH-tree in five minutes.

Covers the whole public surface: creating a tree, inserting float points
with values, point queries, window (range) queries, k-nearest-neighbour
search, deletion, and tree statistics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import PHTree, PHTreeF, collect_stats


def float_tree_basics() -> None:
    print("=== PHTreeF: floating point keys (the common case) ===")
    tree = PHTreeF(dims=2)

    # Insert: any sequence of floats works as a key; values are optional.
    tree.put((48.8566, 2.3522), "Paris")
    tree.put((52.5200, 13.4050), "Berlin")
    tree.put((47.3769, 8.5417), "Zurich")
    tree.put((41.9028, 12.4964), "Rome")
    print(f"stored {len(tree)} cities")

    # Point query: exact-match lookup.
    print("lookup (47.3769, 8.5417):", tree.get((47.3769, 8.5417)))
    print("contains Paris:", (48.8566, 2.3522) in tree)

    # Window query: inclusive axis-aligned box.
    print("cities in central Europe (46..53, 5..14):")
    for point, name in tree.query((46.0, 5.0), (53.0, 14.0)):
        print(f"   {name} at {point}")

    # Nearest neighbours.
    print("2 nearest to (48.0, 9.0):")
    for point, name in tree.knn((48.0, 9.0), 2):
        print(f"   {name} at {point}")

    # Update and delete.
    previous = tree.put((41.9028, 12.4964), "Roma")
    print(f"renamed {previous!r} -> {tree.get((41.9028, 12.4964))!r}")
    tree.remove((52.5200, 13.4050))
    print(f"after deletion: {len(tree)} cities")


def integer_tree_basics() -> None:
    print()
    print("=== PHTree: integer keys (bit-exact control) ===")
    # Integer trees take a bit width; keys live in [0, 2**width).
    tree = PHTree(dims=3, width=16)
    rng = random.Random(42)
    for _ in range(10_000):
        tree.put(tuple(rng.randrange(1 << 16) for _ in range(3)))
    print(f"stored {len(tree)} random 3D/16-bit keys")

    hits = sum(
        1
        for _ in tree.query(
            (0, 0, 0), (1 << 12, 1 << 12, (1 << 16) - 1)
        )
    )
    print(f"window query found {hits} keys")

    # Structural statistics (the quantities the paper reasons about).
    stats = collect_stats(tree)
    print(
        f"nodes={stats.n_nodes} entry/node ratio="
        f"{stats.entry_to_node_ratio:.2f} "
        f"HC nodes={stats.n_hc_nodes} LHC nodes={stats.n_lhc_nodes}"
    )
    print(
        f"max depth={stats.max_depth} (bounded by width="
        f"{tree.width}, never by n)"
    )
    print(
        "serialised bytes/entry="
        f"{stats.serialized_bytes_per_entry:.1f} "
        f"(vs {3 * 8} for a flat double[] layout)"
    )


def main() -> None:
    float_tree_basics()
    integer_tree_basics()


if __name__ == "__main__":
    main()
