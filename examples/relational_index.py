#!/usr/bin/env python3
"""The PH-tree as a fully indexed relational table (paper Outlook, item 5).

The paper closes with: "this would also allow the PH-tree to be
effectively used as a compact and fully indexed table of a relational
database."  This example builds exactly that: a four-column table of
sensor readings stored *only* in a PH-tree -- every column is part of the
key, so the table is simultaneously indexed on all columns, and any
combination of per-column range predicates becomes one window query.

Run:  python examples/relational_index.py
"""

from __future__ import annotations

import random

from repro import PHTree, collect_stats

# Table schema: (station_id, day_of_year, temperature_dK, humidity_pct).
# All columns are encoded as unsigned integers (temperature in deci-Kelvin
# keeps it positive and sortable -- the fixed-point trick from the paper's
# Section 4.3.6 discussion).
WIDTH = 32
COLUMNS = ("station_id", "day_of_year", "temperature_dK", "humidity_pct")
COLUMN_MIN = (0, 1, 0, 0)
COLUMN_MAX = ((1 << 16) - 1, 366, 4000, 100)


class SensorTable:
    """A relation whose primary storage *is* the index."""

    def __init__(self) -> None:
        self._tree = PHTree(dims=len(COLUMNS), width=WIDTH)

    def insert(self, **row: int) -> None:
        key = tuple(row[c] for c in COLUMNS)
        for value, lo, hi in zip(key, COLUMN_MIN, COLUMN_MAX):
            if not lo <= value <= hi:
                raise ValueError(f"column value {value} outside [{lo},{hi}]")
        self._tree.put(key)

    def select(self, **predicates):
        """SELECT * WHERE col BETWEEN lo AND hi [AND ...].

        Unconstrained columns default to their full domain; the whole WHERE
        clause is one PH-tree window query.
        """
        lower = list(COLUMN_MIN)
        upper = list(COLUMN_MAX)
        for column, (lo, hi) in predicates.items():
            i = COLUMNS.index(column)
            lower[i], upper[i] = lo, hi
        for key, _ in self._tree.query(tuple(lower), tuple(upper)):
            yield dict(zip(COLUMNS, key))

    def __len__(self) -> int:
        return len(self._tree)

    def stats(self):
        return collect_stats(self._tree)


def main() -> None:
    rng = random.Random(7)
    table = SensorTable()
    print("inserting 50,000 sensor readings ...")
    for _ in range(50_000):
        table.insert(
            station_id=rng.randrange(500),
            day_of_year=rng.randrange(1, 367),
            temperature_dK=int(rng.gauss(2880, 150)),
            humidity_pct=rng.randrange(101),
        )
    print(f"table holds {len(table)} unique rows")

    print()
    print("Q1: hot summer readings at station 42")
    q1 = list(
        table.select(
            station_id=(42, 42),
            day_of_year=(152, 244),
            temperature_dK=(3030, 4000),
        )
    )
    print(f"   {len(q1)} rows; first: {q1[0] if q1 else None}")

    print("Q2: humid days anywhere in January")
    q2 = list(
        table.select(day_of_year=(1, 31), humidity_pct=(90, 100))
    )
    print(f"   {len(q2)} rows")

    print("Q3: full scan of one station (indexed on ANY column)")
    q3 = list(table.select(station_id=(100, 100)))
    print(f"   {len(q3)} rows")

    stats = table.stats()
    flat = len(table) * len(COLUMNS) * 8
    print()
    print(
        f"storage: {stats.total_serialized_bytes} serialised bytes "
        f"({stats.serialized_bytes_per_entry:.1f}/row) vs {flat} bytes "
        f"for a flat array -- and the table is its own index on all "
        f"{len(COLUMNS)} columns."
    )


if __name__ == "__main__":
    main()
