#!/usr/bin/env python3
"""Skewed data and the 0.5-exponent trap (paper Section 4.3.6).

The PH-tree's space usage depends on the *absolute position* of the data:
clusters straddling 0.5 cross an IEEE-754 exponent boundary, which breaks
prefix sharing in the high bits and -- for higher dimensionality --
explodes the node count.  This example demonstrates the effect, shows how
to diagnose it with tree statistics, and applies the paper's suggested
mitigations (shifting the coordinates, or storing scaled integers).

Run:  python examples/skewed_clusters.py
"""

from __future__ import annotations

from repro import PHTree, collect_stats
from repro.baselines import PHTreeIndex
from repro.datasets import generate_cluster
from repro.encoding.ieee import raw_bits

K = 10
N = 8_000


def load(points, dims):
    index = PHTreeIndex(dims=dims)
    for p in points:
        index.put(p)
    return index


def describe(label, index):
    stats = collect_stats(index.tree.int_tree)
    print(
        f"{label:<22s} nodes={stats.n_nodes:>6d} "
        f"entry/node={stats.entry_to_node_ratio:6.2f} "
        f"bytes/entry={index.bytes_per_entry():7.1f}"
    )
    return stats


def main() -> None:
    print("why 0.49999 -> 0.50000 hurts (the paper's Table 4):")
    for v in (0.49999, 0.50000):
        bits = format(raw_bits(v), "064b")
        print(f"   {v:<8g} sign={bits[0]} exponent={bits[1:12]} "
              f"fraction={bits[12:28]}...")
    print("   -> the exponent flips, so points on either side of 0.5")
    print("      differ at bit ~11 of 64 and share almost no prefix.")
    print()

    print(f"loading {N} points in {K}D clusters at two offsets:")
    cluster05 = generate_cluster(N, K, offset=0.5, seed=1)
    cluster04 = generate_cluster(N, K, offset=0.4, seed=1)
    index05 = load(cluster05, K)
    index04 = load(cluster04, K)
    stats05 = describe("CLUSTER at 0.5", index05)
    stats04 = describe("CLUSTER at 0.4", index04)
    blowup = stats05.n_nodes / stats04.n_nodes
    print(f"   -> the 0.5 offset costs {blowup:.1f}x the nodes")
    print()

    print("mitigation 1: shift the data away from the boundary")
    # Careful: shifting to 0.25 would land on the next power-of-two
    # boundary; 0.5 - 0.13 = 0.37 sits safely inside one exponent.
    shifted = [tuple(v - 0.13 for v in p) for p in cluster05]
    describe("CLUSTER shifted -0.13", load(shifted, K))
    print()

    print("mitigation 2: store scaled integers (e.g. nanometres)")
    int_tree = PHTree(dims=K, width=64)
    for p in cluster05:
        # Cluster x-coordinates can dip a hair below 0; clamp after
        # scaling (integers must be unsigned).
        int_tree.put(tuple(max(0, int(v * 1e9)) for v in p))
    stats_int = collect_stats(int_tree)
    print(
        f"{'integer [nm] tree':<22s} nodes={stats_int.n_nodes:>6d} "
        f"entry/node={stats_int.entry_to_node_ratio:6.2f} "
        f"bytes/entry={stats_int.serialized_bytes_per_entry:7.1f} "
        f"(serialised)"
    )
    print()
    print("take-away: when your data hugs a power of two, shift it or")
    print("use fixed-point integers; the PH-tree rewards you with the")
    print("CLUSTER0.4-style compactness.")


if __name__ == "__main__":
    main()
