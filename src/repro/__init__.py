"""repro -- full Python reproduction of "The PH-tree: a space-efficient
storage structure and multi-dimensional index" (Zäschke, Zimmerli, Norrie;
SIGMOD 2014).

Public API highlights:

- :class:`repro.PHTree` -- the integer-keyed k-dimensional PH-tree.
- :class:`repro.PHTreeF` -- the floating-point facade (IEEE-754 sortable
  encoding, Section 3.3 of the paper).
- :mod:`repro.baselines` -- the comparison structures of the paper's
  evaluation (two kD-trees, two critical-bit trees, naive arrays).
- :mod:`repro.datasets` -- CUBE, CLUSTER and the TIGER/Line substitute.
- :mod:`repro.memory` -- the JVM-style memory model reproducing the
  bytes-per-entry measurements.
- :mod:`repro.bench` -- the experiment harness regenerating every table
  and figure of the paper's Section 4.
"""

from repro.core import (
    FrozenPHTree,
    PHTree,
    PHTreeF,
    PHTreeMultiMap,
    PHTreeSolidF,
    SynchronizedPHTree,
    TreeStats,
    bulk_load,
    collect_stats,
    freeze,
)

__version__ = "1.0.0"

__all__ = [
    "FrozenPHTree",
    "PHTree",
    "PHTreeF",
    "PHTreeMultiMap",
    "PHTreeSolidF",
    "SynchronizedPHTree",
    "TreeStats",
    "bulk_load",
    "collect_stats",
    "freeze",
    "__version__",
]
