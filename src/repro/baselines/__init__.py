"""Comparison structures of the paper's evaluation (Section 4.1).

The paper benchmarks the PH-tree against two freely available kD-tree
implementations (KD1, KD2), two critical-bit trees over bit-interleaved
keys (CB1, CB2) and two naive storage layouts (``double[]``, ``object[]``).
The original libraries are Java; this package re-implements each algorithm
from scratch in Python with the same structural behaviour:

- :class:`repro.baselines.kdtree.KDTree` (KD1) -- classic pointer-based
  kD-tree with lazy deletion,
- :class:`repro.baselines.kdtree_bucket.BucketKDTree` (KD2) -- bucketed
  kD-tree with median splits,
- :class:`repro.baselines.critbit.CritBitTree` (CB1) -- crit-bit tree over
  Morton-interleaved keys,
- :class:`repro.baselines.patricia.PatriciaTrie` (CB2) -- PATRICIA trie
  with explicit skipped-prefix storage, also over interleaved keys,
- :class:`repro.baselines.naive.PlainArray` / ``ObjectArray`` -- the
  un-indexed reference layouts,
- :class:`repro.baselines.adapter.PHTreeIndex` -- the PH-tree wrapped in
  the same :class:`~repro.baselines.interface.SpatialIndex` interface so
  the benchmark harness treats all structures uniformly.
"""

from repro.baselines.adapter import PHTreeIndex
from repro.baselines.critbit import CritBitTree
from repro.baselines.interface import SpatialIndex, make_index
from repro.baselines.kdtree import KDTree
from repro.baselines.kdtree_bucket import BucketKDTree
from repro.baselines.naive import ObjectArray, PlainArray
from repro.baselines.patricia import PatriciaTrie
from repro.baselines.quadtree import QuadTree
from repro.baselines.rtree import RTree

__all__ = [
    "BucketKDTree",
    "CritBitTree",
    "KDTree",
    "ObjectArray",
    "PHTreeIndex",
    "PatriciaTrie",
    "PlainArray",
    "QuadTree",
    "RTree",
    "SpatialIndex",
    "make_index",
]
