"""The PH-tree behind the common :class:`SpatialIndex` interface.

Wraps :class:`repro.core.phtree_float.PHTreeF` so the benchmark harness can
drive the PH-tree exactly like the baselines.  The memory accounting
follows the Java implementation's node layout (paper Section 3.4):

- one node object holding two packed int fields (``post_len``,
  ``infix_len``) and two references (bit-string, sub-node array),
- one ``byte[]`` with the node's serialised bit-string -- infix, slot
  flags/addresses and postfixes, each value occupying exactly the bits it
  needs,
- one ``Object[]`` holding the sub-node references (value references are
  only charged when the tree actually stores values).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.interface import SpatialIndex
from repro.core.hypercube import SLOT_FLAG_BITS
from repro.core.node import Node
from repro.core.phtree import PHTree
from repro.core.phtree_float import PHTreeF
from repro.memory.model import JvmMemoryModel

__all__ = ["PHTreeIndex", "phtree_memory_bytes"]

Point = Tuple[float, ...]


def _node_bit_string_bits(node: Node, k: int, value_bits: int) -> int:
    """Bits of one node's serialised ``byte[]`` (excluding JVM refs)."""
    n_sub, n_post = node.slot_counts()
    payload = node.post_len * k + value_bits
    if node.container.is_hc:
        return (1 << k) * (SLOT_FLAG_BITS + payload)
    return (n_sub + n_post) * (k + SLOT_FLAG_BITS) + n_post * payload


def phtree_memory_bytes(
    tree: PHTree,
    model: Optional[JvmMemoryModel] = None,
    with_values: bool = False,
) -> int:
    """Heap footprint of a PH-tree under the JVM object model."""
    model = model or JvmMemoryModel.compressed_oops()
    k = tree.dims
    value_bits = 0
    total = 0
    node_obj = model.object_bytes(refs=2, ints=2)
    for node in tree.nodes():
        n_sub, n_post = node.slot_counts()
        bits = node.infix_len * k + _node_bit_string_bits(
            node, k, value_bits
        )
        total += node_obj + model.byte_array_for_bits(bits)
        ref_slots = n_sub + (n_post if with_values else 0)
        if ref_slots:
            total += model.array_bytes("ref", ref_slots)
    return total


class PHTreeIndex(SpatialIndex):
    """PH-tree over float points, conforming to the benchmark interface.

    >>> idx = PHTreeIndex(dims=2)
    >>> idx.put((0.5, 0.5), "x")
    >>> idx.contains((0.5, 0.5))
    True
    """

    name = "PH"

    def __init__(
        self,
        dims: int,
        hc_mode: str = "auto",
        hc_hysteresis: float = 0.0,
    ) -> None:
        super().__init__(dims)
        self._tree = PHTreeF(
            dims=dims, hc_mode=hc_mode, hc_hysteresis=hc_hysteresis
        )
        self._stores_values = False

    @property
    def tree(self) -> PHTreeF:
        """The wrapped float PH-tree."""
        return self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        if value is not None:
            self._stores_values = True
        return self._tree.put(point, value)

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        return self._tree.get(point, default)

    def contains(self, point: Sequence[float]) -> bool:
        return self._tree.contains(point)

    def remove(self, point: Sequence[float]) -> Any:
        return self._tree.remove(point)

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        return self._tree.query(box_min, box_max)

    def knn(
        self, point: Sequence[float], n: int = 1
    ) -> List[Tuple[Point, Any]]:
        return self._tree.knn(point, n)

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        return phtree_memory_bytes(
            self._tree.int_tree, model, with_values=self._stores_values
        )
