"""CB1: crit-bit tree over Morton-interleaved keys.

Re-implementation of the first critical-bit tree used by the paper
(Section 4.1, "CB1").  To store k-dimensional entries, the k coordinate
values of each entry are converted with the IEEE-754 sortable encoding and
interleaved into a single ``k * 64``-bit string (paper references [13, 17]);
the crit-bit tree then manages these bit-strings.

The structure is the classic Bernstein crit-bit / Morrison PATRICIA shape:
inner nodes store only the index of the first bit at which their two
subtrees differ (no prefixes), leaves store the full key.  Consequences the
paper points out and that this implementation shares:

- point lookups must walk up to ``k * w`` levels and finish with a full key
  comparison at the leaf,
- range queries degenerate towards full scans because subtrees carry no
  prefix information to prune on ("resulted in nearly full scans
  approaching O(n)", Section 4.3.3); the implementation walks every leaf
  and filters.

Bit indices are MSB-first over the interleaved code: index 0 is the most
significant bit.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from repro.baselines.interface import SpatialIndex
from repro.encoding.ieee import decode_point, encode_point
from repro.encoding.interleave import deinterleave, interleave
from repro.memory.model import JvmMemoryModel

__all__ = ["CritBitTree"]

Point = Tuple[float, ...]
_WIDTH = 64


class _Leaf:
    __slots__ = ("code", "point", "value")

    def __init__(self, code: int, point: Point, value: Any) -> None:
        self.code = code
        self.point = point
        self.value = value


class _Inner:
    __slots__ = ("bit", "left", "right")

    def __init__(
        self,
        bit: int,
        left: Union["_Inner", _Leaf],
        right: Union["_Inner", _Leaf],
    ) -> None:
        self.bit = bit
        self.left = left
        self.right = right


_NodeT = Union[_Inner, _Leaf]


class CritBitTree(SpatialIndex):
    """Crit-bit tree over interleaved 64-bit-per-dimension keys (CB1).

    >>> tree = CritBitTree(dims=2)
    >>> tree.put((0.25, 0.75), "a")
    >>> tree.get((0.25, 0.75))
    'a'
    """

    name = "CB1"

    def __init__(self, dims: int) -> None:
        super().__init__(dims)
        self._root: Optional[_NodeT] = None
        self._size = 0
        self._total_bits = dims * _WIDTH

    def __len__(self) -> int:
        return self._size

    # -- encoding -------------------------------------------------------------

    def _encode(self, point: Sequence[float]) -> Tuple[Point, int]:
        point = tuple(float(v) for v in point)
        if len(point) != self._dims:
            raise ValueError(
                f"point has {len(point)} dimensions, index has {self._dims}"
            )
        return point, interleave(encode_point(point), _WIDTH)

    def _bit(self, code: int, index: int) -> int:
        # Index 0 is the MSB of the interleaved code.
        return (code >> (self._total_bits - 1 - index)) & 1

    # -- updates ---------------------------------------------------------------

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        point, code = self._encode(point)
        if self._root is None:
            self._root = _Leaf(code, point, value)
            self._size = 1
            return None
        # Phase 1: walk to the nearest leaf.
        node = self._root
        while isinstance(node, _Inner):
            node = node.right if self._bit(code, node.bit) else node.left
        if node.code == code:
            previous = node.value
            node.value = value
            return previous
        diff = node.code ^ code
        crit = self._total_bits - diff.bit_length()
        # Phase 2: re-descend to the insertion point: the first edge whose
        # target is a leaf or an inner node testing a bit below `crit`.
        parent: Optional[_Inner] = None
        node = self._root
        while isinstance(node, _Inner) and node.bit < crit:
            parent = node
            node = node.right if self._bit(code, node.bit) else node.left
        leaf = _Leaf(code, point, value)
        if self._bit(code, crit):
            inner = _Inner(crit, node, leaf)
        else:
            inner = _Inner(crit, leaf, node)
        if parent is None:
            self._root = inner
        elif self._bit(code, parent.bit):
            parent.right = inner
        else:
            parent.left = inner
        self._size += 1
        return None

    def remove(self, point: Sequence[float]) -> Any:
        point, code = self._encode(point)
        if self._root is None:
            raise KeyError(f"point not found: {point}")
        grandparent: Optional[_Inner] = None
        parent: Optional[_Inner] = None
        node = self._root
        while isinstance(node, _Inner):
            grandparent = parent
            parent = node
            node = node.right if self._bit(code, node.bit) else node.left
        if node.code != code:
            raise KeyError(f"point not found: {point}")
        if parent is None:
            self._root = None
        else:
            sibling = (
                parent.left
                if self._bit(code, parent.bit)
                else parent.right
            )
            if grandparent is None:
                self._root = sibling
            elif grandparent.left is parent:
                grandparent.left = sibling
            else:
                grandparent.right = sibling
        self._size -= 1
        return node.value

    # -- lookups -----------------------------------------------------------------

    def _find(self, code: int) -> Optional[_Leaf]:
        node = self._root
        while isinstance(node, _Inner):
            node = node.right if self._bit(code, node.bit) else node.left
        if node is not None and node.code == code:
            return node
        return None

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        _, code = self._encode(point)
        leaf = self._find(code)
        return default if leaf is None else leaf.value

    def contains(self, point: Sequence[float]) -> bool:
        _, code = self._encode(point)
        return self._find(code) is not None

    # -- queries --------------------------------------------------------------------

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        """Near-full-scan range query: inner nodes carry no prefix, so the
        traversal visits every leaf and filters (the behaviour the paper
        measured for the available CB implementations)."""
        box_min = tuple(float(v) for v in box_min)
        box_max = tuple(float(v) for v in box_max)
        if self._root is None:
            return
        stack: List[_NodeT] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                stack.append(node.left)
                stack.append(node.right)
                continue
            inside = True
            for v, lo, hi in zip(node.point, box_min, box_max):
                if v < lo or v > hi:
                    inside = False
                    break
            if inside:
                yield node.point, node.value

    def query_zorder(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        """Range query with z-order skip-scanning (BIGMIN).

        The paper observes that the available CB implementations do
        near-full scans but that "it is possible to provide more
        efficient range queries" (§4.3.3).  This is that possibility:
        scan leaves in code order and, on leaving the box, jump straight
        to the smallest re-entering code via
        :func:`repro.encoding.zorder.bigmin`.  Results arrive in
        z-order.
        """
        from repro.encoding.zorder import bigmin

        box_min = tuple(float(v) for v in box_min)
        box_max = tuple(float(v) for v in box_max)
        if any(lo > hi for lo, hi in zip(box_min, box_max)):
            return
        if self._root is None:
            return
        k = self._dims
        zmin = interleave(encode_point(box_min), _WIDTH)
        zmax = interleave(encode_point(box_max), _WIDTH)
        low_codes = encode_point(box_min)
        high_codes = encode_point(box_max)
        cursor = zmin
        while cursor is not None and cursor <= zmax:
            leaf = self._ceiling(cursor)
            if leaf is None or leaf.code > zmax:
                return
            codes = deinterleave(leaf.code, k, _WIDTH)
            if all(
                lo <= c <= hi
                for c, lo, hi in zip(codes, low_codes, high_codes)
            ):
                yield leaf.point, leaf.value
                cursor = leaf.code + 1
            else:
                cursor = bigmin(zmin, zmax, leaf.code, k, _WIDTH)

    def _leftmost(self, node: _NodeT) -> _Leaf:
        while isinstance(node, _Inner):
            node = node.left
        return node

    def _ceiling(self, code: int) -> Optional[_Leaf]:
        """Smallest leaf with ``leaf.code >= code``, in O(depth).

        Classic two-pass crit-bit successor: descend by ``code``'s bits
        to a representative leaf, find the most significant bit ``d``
        where ``code`` diverges from it, then resolve with one more
        subtree walk.  PATRICIA's skipped-bit property guarantees every
        leaf below the divergence point shares the representative's bit
        at ``d``.
        """
        node = self._root
        if node is None:
            return None
        path: List[_Inner] = []
        while isinstance(node, _Inner):
            path.append(node)
            node = (
                node.right if self._bit(code, node.bit) else node.left
            )
        leaf: _Leaf = node
        if leaf.code == code:
            return leaf
        diff = leaf.code ^ code
        d = self._total_bits - diff.bit_length()  # MSB-first index
        if self._bit(code, d) == 0:
            # Every key sharing code's prefix above d has a 1 at d (the
            # trie skipped d on this path), so all of them exceed code:
            # the answer is the leftmost leaf of the subtree below d.
            subtree: _NodeT = leaf
            for inner in path:
                if inner.bit > d:
                    subtree = inner
                    break
            return self._leftmost(subtree)
        # code has a 1 at d: every key in that subtree is smaller.  Climb
        # to the deepest ancestor above d where the descent went left --
        # its right child holds the successor candidates.
        for inner in reversed(path):
            if inner.bit < d and not self._bit(code, inner.bit):
                return self._leftmost(inner.right)
        return None

    # -- memory -----------------------------------------------------------------------

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        """Java layout per entry: a leaf object (key + value refs), the
        interleaved key as ``long[k]``, and (for all but the first entry)
        one inner node (bit index int + 2 child refs)."""
        model = model or JvmMemoryModel.compressed_oops()
        leaf_bytes = model.object_bytes(refs=2)
        key_bytes = model.array_bytes("long", self._dims)
        inner_bytes = model.object_bytes(refs=2, ints=1)
        n_inner = max(0, self._size - 1)
        return self._size * (leaf_bytes + key_bytes) + n_inner * inner_bytes

    # -- introspection -------------------------------------------------------------------

    def depth(self) -> int:
        """Maximum leaf depth (bounded by ``k * w``)."""
        best = 0
        if self._root is None:
            return best
        stack: List[Tuple[_NodeT, int]] = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            if isinstance(node, _Inner):
                stack.append((node.left, depth + 1))
                stack.append((node.right, depth + 1))
            elif depth > best:
                best = depth
        return best
