"""Common interface of all benchmarked index structures.

Every structure in the evaluation -- the PH-tree and all baselines --
implements :class:`SpatialIndex` over k-dimensional ``float`` points, so
the benchmark harness is generic.  Structures that operate on integer bit
strings internally (PH-tree, the two CB trees) apply the IEEE-754 sortable
conversion of paper Section 3.3 at this boundary.

:func:`make_index` is the factory the harness uses, keyed by the paper's
structure names (``"PH"``, ``"KD1"``, ``"KD2"``, ``"CB1"``, ``"CB2"``,
``"d[]"``, ``"o[]"``) plus the two §2-argument baselines this
reproduction adds (``"RT"`` R-tree, ``"QT"`` plain quadtree).
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.memory.model import JvmMemoryModel

__all__ = ["SpatialIndex", "make_index", "INDEX_NAMES"]

Point = Tuple[float, ...]

INDEX_NAMES = ("PH", "KD1", "KD2", "CB1", "CB2", "RT", "d[]", "o[]")


class SpatialIndex(abc.ABC):
    """A k-dimensional point index mapping float points to values."""

    #: Short name used in benchmark output (matches the paper's labels).
    name: str = "?"

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self._dims = dims

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._dims

    # -- mandatory operations ------------------------------------------------

    @abc.abstractmethod
    def put(self, point: Sequence[float], value: Any = None) -> Any:
        """Insert ``point`` (or update its value); return previous value."""

    @abc.abstractmethod
    def get(self, point: Sequence[float], default: Any = None) -> Any:
        """Value stored at ``point`` or ``default``."""

    @abc.abstractmethod
    def contains(self, point: Sequence[float]) -> bool:
        """Point query."""

    @abc.abstractmethod
    def remove(self, point: Sequence[float]) -> Any:
        """Delete ``point``; raise KeyError when absent."""

    @abc.abstractmethod
    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        """Iterate entries in the inclusive box."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored points."""

    @abc.abstractmethod
    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        """Heap footprint of the structure under the JVM memory model."""

    # -- optional operations -------------------------------------------------

    def knn(
        self, point: Sequence[float], n: int = 1
    ) -> List[Tuple[Point, Any]]:
        """``n`` nearest neighbours; structures without native support may
        raise NotImplementedError."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support kNN queries"
        )

    def query_all(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> List[Tuple[Point, Any]]:
        """Materialised :meth:`query` result."""
        return list(self.query(box_min, box_max))

    def __contains__(self, point: Sequence[float]) -> bool:
        return self.contains(point)

    def bytes_per_entry(
        self, model: Optional[JvmMemoryModel] = None
    ) -> float:
        """Convenience: :meth:`memory_bytes` divided by entry count."""
        n = len(self)
        if n == 0:
            return 0.0
        return self.memory_bytes(model) / n


def make_index(name: str, dims: int, **kwargs: Any) -> SpatialIndex:
    """Instantiate a structure by its paper label.

    >>> idx = make_index("PH", dims=2)
    >>> idx.name
    'PH'
    """
    from repro.baselines.adapter import PHTreeIndex
    from repro.baselines.critbit import CritBitTree
    from repro.baselines.kdtree import KDTree
    from repro.baselines.kdtree_bucket import BucketKDTree
    from repro.baselines.naive import ObjectArray, PlainArray
    from repro.baselines.patricia import PatriciaTrie
    from repro.baselines.quadtree import QuadTree
    from repro.baselines.rtree import RTree

    factories = {
        "PH": PHTreeIndex,
        "KD1": KDTree,
        "KD2": BucketKDTree,
        "CB1": CritBitTree,
        "CB2": PatriciaTrie,
        "RT": RTree,
        "QT": QuadTree,
        "d[]": PlainArray,
        "o[]": ObjectArray,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown index {name!r}; one of {sorted(factories)}"
        ) from None
    return factory(dims=dims, **kwargs)
