"""KD1: classic pointer-based kD-tree with lazy deletion.

Re-implementation of the first kD-tree library used by the paper
(Section 4.1, "KD1"): a textbook Bentley kD-tree where

- the split axis cycles round-robin with tree depth,
- nodes are created in insertion order (no balancing, so the structure
  depends on insertion order and can degenerate -- exactly the behaviour
  the paper contrasts the PH-tree against),
- deletion is *lazy*: nodes are flagged as deleted and stay in the tree
  (the levy KDTree strategy), so delete is as fast as a point query but
  memory is not reclaimed.

Search rule: strictly-less goes left, greater-or-equal goes right.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.interface import SpatialIndex
from repro.memory.model import JvmMemoryModel

__all__ = ["KDTree"]

Point = Tuple[float, ...]


class _KDNode:
    """One kD-tree node: a stored point plus two children.

    Mirrors the Java original's layout for the memory model: the node
    object holds references to a point wrapper, the value, both children,
    and a deletion flag.
    """

    __slots__ = ("point", "value", "left", "right", "deleted")

    def __init__(self, point: Point, value: Any) -> None:
        self.point = point
        self.value = value
        self.left: Optional["_KDNode"] = None
        self.right: Optional["_KDNode"] = None
        self.deleted = False


class KDTree(SpatialIndex):
    """Classic kD-tree over float points (the paper's KD1).

    >>> tree = KDTree(dims=2)
    >>> tree.put((0.1, 0.2), "a")
    >>> tree.contains((0.1, 0.2))
    True
    >>> [p for p, _ in tree.query((0.0, 0.0), (1.0, 1.0))]
    [(0.1, 0.2)]
    """

    name = "KD1"

    def __init__(self, dims: int) -> None:
        super().__init__(dims)
        self._root: Optional[_KDNode] = None
        self._size = 0
        self._n_nodes = 0  # includes lazily deleted nodes

    def __len__(self) -> int:
        return self._size

    @property
    def node_count(self) -> int:
        """All allocated nodes, including lazily deleted ones."""
        return self._n_nodes

    # -- updates ------------------------------------------------------------

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        point = self._check(point)
        if self._root is None:
            self._root = _KDNode(point, value)
            self._size = 1
            self._n_nodes = 1
            return None
        node = self._root
        depth = 0
        while True:
            if node.point == point:
                previous = None if node.deleted else node.value
                if node.deleted:
                    node.deleted = False
                    self._size += 1
                node.value = value
                return previous
            axis = depth % self._dims
            if point[axis] < node.point[axis]:
                if node.left is None:
                    node.left = _KDNode(point, value)
                    self._size += 1
                    self._n_nodes += 1
                    return None
                node = node.left
            else:
                if node.right is None:
                    node.right = _KDNode(point, value)
                    self._size += 1
                    self._n_nodes += 1
                    return None
                node = node.right
            depth += 1

    def remove(self, point: Sequence[float]) -> Any:
        point = self._check(point)
        node = self._find(point)
        if node is None or node.deleted:
            raise KeyError(f"point not found: {point}")
        node.deleted = True
        self._size -= 1
        return node.value

    # -- lookups ------------------------------------------------------------

    def _find(self, point: Point) -> Optional[_KDNode]:
        node = self._root
        depth = 0
        while node is not None:
            if node.point == point:
                return node
            axis = depth % self._dims
            node = (
                node.left if point[axis] < node.point[axis] else node.right
            )
            depth += 1
        return None

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        node = self._find(self._check(point))
        if node is None or node.deleted:
            return default
        return node.value

    def contains(self, point: Sequence[float]) -> bool:
        node = self._find(self._check(point))
        return node is not None and not node.deleted

    # -- queries ------------------------------------------------------------

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        box_min = self._check(box_min)
        box_max = self._check(box_max)
        if self._root is None:
            return
        stack: List[Tuple[_KDNode, int]] = [(self._root, 0)]
        k = self._dims
        while stack:
            node, depth = stack.pop()
            axis = depth % k
            coord = node.point[axis]
            if not node.deleted and _in_box(node.point, box_min, box_max):
                yield node.point, node.value
            if node.left is not None and box_min[axis] < coord:
                stack.append((node.left, depth + 1))
            if node.right is not None and box_max[axis] >= coord:
                stack.append((node.right, depth + 1))

    def knn(
        self, point: Sequence[float], n: int = 1
    ) -> List[Tuple[Point, Any]]:
        """Branch-and-bound nearest neighbours (squared Euclidean)."""
        point = self._check(point)
        if self._root is None or n <= 0:
            return []
        import heapq

        # Max-heap of the best n candidates: (-distance, counter, node).
        best: List[Tuple[float, int, _KDNode]] = []
        counter = [0]

        def visit(node: Optional[_KDNode], depth: int) -> None:
            if node is None:
                return
            axis = depth % self._dims
            if not node.deleted:
                d2 = sum(
                    (a - b) * (a - b) for a, b in zip(point, node.point)
                )
                counter[0] += 1
                if len(best) < n:
                    heapq.heappush(best, (-d2, counter[0], node))
                elif d2 < -best[0][0]:
                    heapq.heapreplace(best, (-d2, counter[0], node))
            diff = point[axis] - node.point[axis]
            near, far = (
                (node.left, node.right)
                if diff < 0
                else (node.right, node.left)
            )
            visit(near, depth + 1)
            if len(best) < n or diff * diff < -best[0][0]:
                visit(far, depth + 1)

        visit(self._root, 0)
        ordered = sorted(best, key=lambda item: -item[0])
        return [(node.point, node.value) for _, _, node in ordered]

    # -- memory --------------------------------------------------------------

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        """Heap usage of the Java layout: per node one _KDNode object
        (4 refs + deleted flag), one point-wrapper object (1 ref) and one
        ``double[k]``.  Lazily deleted nodes still count."""
        model = model or JvmMemoryModel.compressed_oops()
        node_bytes = model.object_bytes(refs=4, booleans=1)
        wrapper_bytes = model.object_bytes(refs=1)
        coords_bytes = model.array_bytes("double", self._dims)
        return self._n_nodes * (node_bytes + wrapper_bytes + coords_bytes)

    # -- internals -----------------------------------------------------------

    def _check(self, point: Sequence[float]) -> Point:
        point = tuple(float(v) for v in point)
        if len(point) != self._dims:
            raise ValueError(
                f"point has {len(point)} dimensions, index has {self._dims}"
            )
        return point


def _in_box(point: Point, box_min: Point, box_max: Point) -> bool:
    for v, lo, hi in zip(point, box_min, box_max):
        if v < lo or v > hi:
            return False
    return True
