"""KD2: pointer-based kD-tree with eager deletion.

Re-implementation of the second kD-tree library used by the paper
(Section 4.1, "KD2").  Like KD1 it is an insertion-order kD-tree with
round-robin split axes, but it differs in the ways the paper observed the
two libraries differing ("each has its own strengths"):

- deletion is *eager*: the removed node is replaced by the minimum of its
  right subtree along the node's split axis (the textbook kD-tree delete),
  so memory is reclaimed but deletes are more expensive,
- nodes carry a little more bookkeeping (an explicit axis field and a
  cached hash, as the original library's coordinate wrapper does), making
  the structure slightly larger per entry.

The class name is historical: early revisions bucketed leaves.  The
benchmark label is "KD2".
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.interface import SpatialIndex
from repro.memory.model import JvmMemoryModel

__all__ = ["BucketKDTree"]

Point = Tuple[float, ...]


class _Node:
    __slots__ = ("point", "value", "left", "right")

    def __init__(self, point: Point, value: Any) -> None:
        self.point = point
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class BucketKDTree(SpatialIndex):
    """kD-tree with eager find-min deletion (the paper's KD2).

    >>> tree = BucketKDTree(dims=2)
    >>> tree.put((0.3, 0.7), 1)
    >>> tree.remove((0.3, 0.7))
    1
    >>> len(tree)
    0
    """

    name = "KD2"

    def __init__(self, dims: int) -> None:
        super().__init__(dims)
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def node_count(self) -> int:
        """Number of live nodes (== entry count for this structure)."""
        return self._size

    # -- updates -------------------------------------------------------------

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        point = self._check(point)
        if self._root is None:
            self._root = _Node(point, value)
            self._size = 1
            return None
        node = self._root
        depth = 0
        while True:
            if node.point == point:
                previous = node.value
                node.value = value
                return previous
            axis = depth % self._dims
            if point[axis] < node.point[axis]:
                if node.left is None:
                    node.left = _Node(point, value)
                    self._size += 1
                    return None
                node = node.left
            else:
                if node.right is None:
                    node.right = _Node(point, value)
                    self._size += 1
                    return None
                node = node.right
            depth += 1

    def remove(self, point: Sequence[float]) -> Any:
        point = self._check(point)
        removed: List[Any] = []
        self._root = self._delete(self._root, point, 0, removed)
        if not removed:
            raise KeyError(f"point not found: {point}")
        self._size -= 1
        return removed[0]

    def _delete(
        self,
        node: Optional[_Node],
        point: Point,
        depth: int,
        removed: List[Any],
    ) -> Optional[_Node]:
        if node is None:
            return None
        axis = depth % self._dims
        if node.point == point:
            removed.append(node.value)
            if node.right is not None:
                successor = self._find_min(node.right, axis, depth + 1)
                node.point = successor.point
                node.value = successor.value
                node.right = self._delete(
                    node.right, successor.point, depth + 1, []
                )
            elif node.left is not None:
                # No right subtree: pull the left subtree's axis-minimum up
                # and hang the remainder on the right, preserving the
                # "left strictly less" invariant.
                successor = self._find_min(node.left, axis, depth + 1)
                node.point = successor.point
                node.value = successor.value
                node.right = self._delete(
                    node.left, successor.point, depth + 1, []
                )
                node.left = None
            else:
                return None
            return node
        if point[axis] < node.point[axis]:
            node.left = self._delete(node.left, point, depth + 1, removed)
        else:
            node.right = self._delete(node.right, point, depth + 1, removed)
        return node

    def _find_min(self, node: _Node, axis: int, depth: int) -> _Node:
        """Node with the minimal coordinate along ``axis`` in the subtree."""
        best = node
        node_axis = depth % self._dims
        if node.left is not None:
            candidate = self._find_min(node.left, axis, depth + 1)
            if candidate.point[axis] < best.point[axis]:
                best = candidate
        if node_axis != axis and node.right is not None:
            candidate = self._find_min(node.right, axis, depth + 1)
            if candidate.point[axis] < best.point[axis]:
                best = candidate
        return best

    # -- lookups -------------------------------------------------------------

    def _find(self, point: Point) -> Optional[_Node]:
        node = self._root
        depth = 0
        while node is not None:
            if node.point == point:
                return node
            axis = depth % self._dims
            node = (
                node.left if point[axis] < node.point[axis] else node.right
            )
            depth += 1
        return None

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        node = self._find(self._check(point))
        return default if node is None else node.value

    def contains(self, point: Sequence[float]) -> bool:
        return self._find(self._check(point)) is not None

    # -- queries -------------------------------------------------------------

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        box_min = self._check(box_min)
        box_max = self._check(box_max)
        if self._root is None:
            return
        stack: List[Tuple[_Node, int]] = [(self._root, 0)]
        k = self._dims
        while stack:
            node, depth = stack.pop()
            axis = depth % k
            coord = node.point[axis]
            inside = True
            for v, lo, hi in zip(node.point, box_min, box_max):
                if v < lo or v > hi:
                    inside = False
                    break
            if inside:
                yield node.point, node.value
            if node.left is not None and box_min[axis] < coord:
                stack.append((node.left, depth + 1))
            if node.right is not None and box_max[axis] >= coord:
                stack.append((node.right, depth + 1))

    def knn(
        self, point: Sequence[float], n: int = 1
    ) -> List[Tuple[Point, Any]]:
        """Branch-and-bound nearest neighbours (squared Euclidean)."""
        point = self._check(point)
        if self._root is None or n <= 0:
            return []
        import heapq

        best: List[Tuple[float, int, _Node]] = []
        counter = [0]

        def visit(node: Optional[_Node], depth: int) -> None:
            if node is None:
                return
            axis = depth % self._dims
            d2 = sum((a - b) * (a - b) for a, b in zip(point, node.point))
            counter[0] += 1
            if len(best) < n:
                heapq.heappush(best, (-d2, counter[0], node))
            elif d2 < -best[0][0]:
                heapq.heapreplace(best, (-d2, counter[0], node))
            diff = point[axis] - node.point[axis]
            near, far = (
                (node.left, node.right)
                if diff < 0
                else (node.right, node.left)
            )
            visit(near, depth + 1)
            if len(best) < n or diff * diff < -best[0][0]:
                visit(far, depth + 1)

        visit(self._root, 0)
        ordered = sorted(best, key=lambda item: -item[0])
        return [(node.point, node.value) for _, _, node in ordered]

    # -- memory ---------------------------------------------------------------

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        """Java layout: node object (4 refs + axis int), coordinate wrapper
        with cached hash (1 ref + 1 int), ``double[k]`` coordinates."""
        model = model or JvmMemoryModel.compressed_oops()
        node_bytes = model.object_bytes(refs=4, ints=1)
        wrapper_bytes = model.object_bytes(refs=1, ints=1)
        coords_bytes = model.array_bytes("double", self._dims)
        return self._size * (node_bytes + wrapper_bytes + coords_bytes)

    # -- internals -----------------------------------------------------------

    def _check(self, point: Sequence[float]) -> Point:
        point = tuple(float(v) for v in point)
        if len(point) != self._dims:
            raise ValueError(
                f"point has {len(point)} dimensions, index has {self._dims}"
            )
        return point
