"""Naive storage layouts: ``double[]`` and ``object[]`` (paper Section
4.3.5).

The paper reports two un-indexed reference layouts alongside the trees:

- the *plain array*: all coordinates in one flat ``double[]`` of
  ``k * 8 * n`` bytes,
- the *object array*: one object per entry with ``k`` double fields, plus
  an array of references -- ``(k * 8 + 16 + 4) * n`` bytes including
  alignment.

Both support the full :class:`~repro.baselines.interface.SpatialIndex`
interface through linear scans, which also makes them the brute-force
oracles of the test suite.  The reported memory follows the paper's
formulas exactly (via the JVM model); the Python-side bookkeeping dict is
an implementation artefact and deliberately not charged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.interface import SpatialIndex
from repro.memory.model import JvmMemoryModel

__all__ = ["ObjectArray", "PlainArray"]

Point = Tuple[float, ...]


class _ScanIndex(SpatialIndex):
    """Shared linear-scan implementation of both naive layouts."""

    def __init__(self, dims: int) -> None:
        super().__init__(dims)
        self._entries: Dict[Point, Any] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _check(self, point: Sequence[float]) -> Point:
        point = tuple(float(v) for v in point)
        if len(point) != self._dims:
            raise ValueError(
                f"point has {len(point)} dimensions, index has {self._dims}"
            )
        return point

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        point = self._check(point)
        previous = self._entries.get(point)
        self._entries[point] = value
        return previous

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        return self._entries.get(self._check(point), default)

    def contains(self, point: Sequence[float]) -> bool:
        return self._check(point) in self._entries

    def remove(self, point: Sequence[float]) -> Any:
        point = self._check(point)
        try:
            return self._entries.pop(point)
        except KeyError:
            raise KeyError(f"point not found: {point}") from None

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        box_min = self._check(box_min)
        box_max = self._check(box_max)
        for point, value in self._entries.items():
            inside = True
            for v, lo, hi in zip(point, box_min, box_max):
                if v < lo or v > hi:
                    inside = False
                    break
            if inside:
                yield point, value

    def knn(
        self, point: Sequence[float], n: int = 1
    ) -> List[Tuple[Point, Any]]:
        """Brute-force k nearest neighbours (exact oracle for tests)."""
        point = self._check(point)

        def d2(candidate: Point) -> float:
            return sum((a - b) * (a - b) for a, b in zip(point, candidate))

        ordered = sorted(self._entries.items(), key=lambda kv: d2(kv[0]))
        return ordered[: max(0, n)]


class PlainArray(_ScanIndex):
    """The paper's ``double[]`` layout: one flat coordinate array."""

    name = "d[]"

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        model = model or JvmMemoryModel.compressed_oops()
        return model.array_bytes("double", self._dims * len(self._entries))


class ObjectArray(_ScanIndex):
    """The paper's ``object[]`` layout: one k-double object per entry plus
    a reference array."""

    name = "o[]"

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        model = model or JvmMemoryModel.compressed_oops()
        n = len(self._entries)
        per_object = model.object_bytes(doubles=self._dims)
        return per_object * n + model.array_bytes("ref", n)
