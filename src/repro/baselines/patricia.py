"""CB2: PATRICIA trie with explicit skipped-prefix storage.

Re-implementation of the second critical-bit tree used by the paper
(Section 4.1, "CB2").  Like CB1 it manages Morton-interleaved bit-strings,
but it is a *radix* variant: every inner node stores the bit fragment that
all keys of its subtree share beyond the parent's split point.  That makes
nodes larger than CB1's (bit-index-only) inner nodes but allows the range
query to prune subtrees.

Pruning uses a property of MSB-first round-robin interleaving: if a subtree
fixes the first ``L`` interleaved bits, then padding those bits with zeros
respectively ones and de-interleaving yields the exact per-dimension
bounding box of the subtree, for *any* ``L`` (each dimension's bits split
into a fixed high part and free low part).  The query still has to descend
one bit layer at a time though -- this is precisely the binary-tree
handicap versus the PH-tree's 2**k-way nodes that the paper discusses in
Section 4.3.3.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from repro.baselines.interface import SpatialIndex
from repro.encoding.ieee import decode_point, encode_point
from repro.encoding.interleave import interleave
from repro.memory.model import JvmMemoryModel

__all__ = ["PatriciaTrie"]

Point = Tuple[float, ...]
_WIDTH = 64


class _Leaf:
    __slots__ = ("code", "point", "value")

    def __init__(self, code: int, point: Point, value: Any) -> None:
        self.code = code
        self.point = point
        self.value = value


class _Inner:
    """Inner node owning the ``depth`` most significant interleaved bits.

    ``depth`` is the number of leading bits shared by (and stored for) the
    whole subtree; the children differ in bit ``depth`` (0 -> left).
    """

    __slots__ = ("prefix", "depth", "left", "right")

    def __init__(
        self,
        prefix: int,
        depth: int,
        left: Union["_Inner", _Leaf],
        right: Union["_Inner", _Leaf],
    ) -> None:
        self.prefix = prefix
        self.depth = depth
        self.left = left
        self.right = right


_NodeT = Union[_Inner, _Leaf]


class PatriciaTrie(SpatialIndex):
    """PATRICIA trie over interleaved keys with prefix pruning (CB2).

    >>> trie = PatriciaTrie(dims=2)
    >>> trie.put((0.1, 0.9), "a")
    >>> trie.put((0.2, 0.8), "b")
    >>> sorted(p for p, _ in trie.query((0.0, 0.0), (1.0, 1.0)))
    [(0.1, 0.9), (0.2, 0.8)]
    """

    name = "CB2"

    def __init__(self, dims: int) -> None:
        super().__init__(dims)
        self._root: Optional[_NodeT] = None
        self._size = 0
        self._total_bits = dims * _WIDTH

    def __len__(self) -> int:
        return self._size

    # -- encoding ---------------------------------------------------------------

    def _encode(self, point: Sequence[float]) -> Tuple[Point, int]:
        point = tuple(float(v) for v in point)
        if len(point) != self._dims:
            raise ValueError(
                f"point has {len(point)} dimensions, index has {self._dims}"
            )
        return point, interleave(encode_point(point), _WIDTH)

    def _node_prefix_depth(self, node: _NodeT) -> Tuple[int, int]:
        """(prefix bits, depth) of a node: leaves own their full code."""
        if isinstance(node, _Inner):
            return node.prefix, node.depth
        return node.code, self._total_bits

    # -- updates ----------------------------------------------------------------

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        point, code = self._encode(point)
        if self._root is None:
            self._root = _Leaf(code, point, value)
            self._size = 1
            return None
        total = self._total_bits
        parent: Optional[_Inner] = None
        on_right = False
        node = self._root
        while True:
            prefix, depth = self._node_prefix_depth(node)
            # Compare the key's leading `depth` bits with the node prefix.
            key_prefix = code >> (total - depth) if depth else 0
            if key_prefix == prefix:
                if isinstance(node, _Leaf):
                    previous = node.value
                    node.value = value
                    return previous
                # Full prefix match: descend by the next bit.
                bit = (code >> (total - 1 - depth)) & 1
                parent = node
                on_right = bool(bit)
                node = node.right if bit else node.left
                continue
            # Mismatch inside this node's prefix: split at the first
            # differing bit.
            diff = key_prefix ^ prefix
            mismatch_depth = depth - diff.bit_length()
            shared = code >> (total - mismatch_depth) if mismatch_depth else 0
            leaf = _Leaf(code, point, value)
            bit = (code >> (total - 1 - mismatch_depth)) & 1
            if bit:
                split = _Inner(shared, mismatch_depth, node, leaf)
            else:
                split = _Inner(shared, mismatch_depth, leaf, node)
            if parent is None:
                self._root = split
            elif on_right:
                parent.right = split
            else:
                parent.left = split
            self._size += 1
            return None

    def remove(self, point: Sequence[float]) -> Any:
        point, code = self._encode(point)
        if self._root is None:
            raise KeyError(f"point not found: {point}")
        total = self._total_bits
        grandparent: Optional[_Inner] = None
        gp_on_right = False
        parent: Optional[_Inner] = None
        on_right = False
        node = self._root
        while isinstance(node, _Inner):
            key_prefix = code >> (total - node.depth) if node.depth else 0
            if key_prefix != node.prefix:
                raise KeyError(f"point not found: {point}")
            bit = (code >> (total - 1 - node.depth)) & 1
            grandparent, gp_on_right = parent, on_right
            parent, on_right = node, bool(bit)
            node = node.right if bit else node.left
        if node.code != code:
            raise KeyError(f"point not found: {point}")
        if parent is None:
            self._root = None
        else:
            sibling = parent.left if on_right else parent.right
            if grandparent is None:
                self._root = sibling
            elif gp_on_right:
                grandparent.right = sibling
            else:
                grandparent.left = sibling
        self._size -= 1
        return node.value

    # -- lookups -------------------------------------------------------------------

    def _find(self, code: int) -> Optional[_Leaf]:
        total = self._total_bits
        node = self._root
        while isinstance(node, _Inner):
            key_prefix = code >> (total - node.depth) if node.depth else 0
            if key_prefix != node.prefix:
                return None
            bit = (code >> (total - 1 - node.depth)) & 1
            node = node.right if bit else node.left
        if node is not None and node.code == code:
            return node
        return None

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        _, code = self._encode(point)
        leaf = self._find(code)
        return default if leaf is None else leaf.value

    def contains(self, point: Sequence[float]) -> bool:
        _, code = self._encode(point)
        return self._find(code) is not None

    # -- queries ----------------------------------------------------------------------

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        """Range query with per-subtree bounding-box pruning."""
        box_min = tuple(float(v) for v in box_min)
        box_max = tuple(float(v) for v in box_max)
        if self._root is None:
            return
        total = self._total_bits
        encoded_min = encode_point(box_min)
        encoded_max = encode_point(box_max)
        stack: List[_NodeT] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                inside = True
                for v, lo, hi in zip(node.point, box_min, box_max):
                    if v < lo or v > hi:
                        inside = False
                        break
                if inside:
                    yield node.point, node.value
                continue
            if node.depth and not self._subtree_intersects(
                node.prefix, node.depth, encoded_min, encoded_max
            ):
                continue
            stack.append(node.left)
            stack.append(node.right)

    def _subtree_intersects(
        self,
        prefix: int,
        depth: int,
        encoded_min: Tuple[int, ...],
        encoded_max: Tuple[int, ...],
    ) -> bool:
        """Bounding box of the subtree vs the encoded query box.

        Pads the fixed prefix with zeros/ones and extracts each dimension's
        bounds directly from the padded codes.
        """
        total = self._total_bits
        free = total - depth
        code_lo = prefix << free
        code_hi = code_lo | ((1 << free) - 1)
        k = self._dims
        # Dimension d owns interleaved bit positions d, d+k, d+2k, ...
        # (from the MSB).  Extract its bounds from the padded codes.
        for dim in range(k):
            lo_d = 0
            hi_d = 0
            for layer in range(_WIDTH):
                shift = total - 1 - (layer * k + dim)
                lo_d = (lo_d << 1) | ((code_lo >> shift) & 1)
                hi_d = (hi_d << 1) | ((code_hi >> shift) & 1)
            if hi_d < encoded_min[dim] or lo_d > encoded_max[dim]:
                return False
        return True

    # -- memory -------------------------------------------------------------------------

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        """Java layout: leaves are bare ``long[k]`` key arrays plus a value
        reference slot; inner nodes store two child refs, the prefix
        fragment (packed longs) and its length."""
        model = model or JvmMemoryModel.compressed_oops()
        key_bytes = model.array_bytes("long", self._dims)
        total = 0
        if self._root is None:
            return 0
        stack: List[Tuple[_NodeT, int]] = [(self._root, 0)]
        while stack:
            node, parent_depth = stack.pop()
            if isinstance(node, _Leaf):
                total += key_bytes + model.reference_bytes
                continue
            fragment_bits = node.depth - parent_depth
            fragment_longs = max(1, (fragment_bits + 63) // 64)
            total += model.object_bytes(
                refs=2, ints=1, longs=fragment_longs
            )
            stack.append((node.left, node.depth + 1))
            stack.append((node.right, node.depth + 1))
        return total
