"""QT: a plain bucket quadtree/octree baseline (Finkel & Bentley 1974,
the paper's reference [6]).

The PH-tree "is essentially a quadtree that uses hypercubes,
prefix-sharing and bit-stream storage" (§3).  This baseline is the
ancestor *without* those three additions: a region quadtree over
``[0,1)**k``-style domains that splits a bucket into ``2**k`` children at
the midpoint whenever it overflows.  Comparing it with the PH-tree
isolates the paper's actual contribution:

- no path compression -> long chains of single-child nodes appear for
  skewed data (the paper's §2 criticism: quadtrees "tend to require a
  lot of memory due to their propensity for requiring many and large
  nodes"),
- the domain must be known up front and the depth is unbounded for
  adversarially close points (we stop splitting at ``max_depth`` and let
  the deepest buckets grow).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.interface import SpatialIndex
from repro.memory.model import JvmMemoryModel

__all__ = ["QuadTree"]

Point = Tuple[float, ...]

BUCKET_CAPACITY = 8
MAX_DEPTH = 64


class _Cell:
    __slots__ = ("centre", "half", "children", "bucket")

    def __init__(self, centre: Point, half: float) -> None:
        self.centre = centre
        self.half = half
        self.children: Optional[List[Optional["_Cell"]]] = None
        self.bucket: List[Tuple[Point, Any]] = []

    def child_index(self, point: Point) -> int:
        index = 0
        for c, v in zip(self.centre, point):
            index = (index << 1) | (1 if v >= c else 0)
        return index

    def child_centre(self, index: int) -> Point:
        k = len(self.centre)
        quarter = self.half / 2.0
        return tuple(
            c + (quarter if (index >> (k - 1 - d)) & 1 else -quarter)
            for d, c in enumerate(self.centre)
        )

    def intersects(self, box_min: Point, box_max: Point) -> bool:
        for c, lo, hi in zip(self.centre, box_min, box_max):
            if c + self.half < lo or c - self.half > hi:
                return False
        return True


class QuadTree(SpatialIndex):
    """Bucket quadtree/octree over a fixed domain (label "QT").

    The domain defaults to the paper's synthetic datasets' ``[0, 1]``
    cube; pass ``domain=(lo, hi)`` for other data (e.g. TIGER
    coordinates).

    >>> tree = QuadTree(dims=2)
    >>> tree.put((0.25, 0.75), "a")
    >>> tree.get((0.25, 0.75))
    'a'
    """

    name = "QT"

    def __init__(
        self,
        dims: int,
        domain: Tuple[float, float] = (0.0, 1.0),
    ) -> None:
        super().__init__(dims)
        lo, hi = float(domain[0]), float(domain[1])
        if not lo < hi:
            raise ValueError(f"degenerate domain [{lo}, {hi}]")
        centre = ((lo + hi) / 2.0,) * dims
        self._root = _Cell(centre, (hi - lo) / 2.0)
        self._domain = (lo, hi)
        self._size = 0
        self._n_cells = 1

    def __len__(self) -> int:
        return self._size

    @property
    def cell_count(self) -> int:
        """Number of allocated cells (inner + bucket)."""
        return self._n_cells

    def _check(self, point: Sequence[float]) -> Point:
        point = tuple(float(v) for v in point)
        if len(point) != self._dims:
            raise ValueError(
                f"point has {len(point)} dimensions, index has {self._dims}"
            )
        lo, hi = self._domain
        for v in point:
            if not lo <= v <= hi:
                raise ValueError(
                    f"coordinate {v} outside the domain [{lo}, {hi}]"
                )
        return point

    # -- updates ------------------------------------------------------------------

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        point = self._check(point)
        cell = self._root
        depth = 0
        while cell.children is not None:
            index = cell.child_index(point)
            child = cell.children[index]
            if child is None:
                child = _Cell(
                    cell.child_centre(index), cell.half / 2.0
                )
                cell.children[index] = child
                self._n_cells += 1
            cell = child
            depth += 1
        for i, (stored, _) in enumerate(cell.bucket):
            if stored == point:
                previous = cell.bucket[i][1]
                cell.bucket[i] = (point, value)
                return previous
        cell.bucket.append((point, value))
        self._size += 1
        if len(cell.bucket) > BUCKET_CAPACITY and depth < MAX_DEPTH:
            self._split(cell)
        return None

    def _split(self, cell: _Cell) -> None:
        cell.children = [None] * (1 << self._dims)
        overflow = cell.bucket
        cell.bucket = []
        for point, value in overflow:
            index = cell.child_index(point)
            child = cell.children[index]
            if child is None:
                child = _Cell(
                    cell.child_centre(index), cell.half / 2.0
                )
                cell.children[index] = child
                self._n_cells += 1
            child.bucket.append((point, value))
        # A pathological cluster may land entirely in one child; the
        # child splits lazily on its next overflow insert.

    def remove(self, point: Sequence[float]) -> Any:
        point = self._check(point)
        cell = self._root
        while cell.children is not None:
            child = cell.children[cell.child_index(point)]
            if child is None:
                raise KeyError(f"point not found: {point}")
            cell = child
        for i, (stored, value) in enumerate(cell.bucket):
            if stored == point:
                cell.bucket.pop(i)
                self._size -= 1
                # No merging: like classic quadtrees, empty cells stay.
                return value
        raise KeyError(f"point not found: {point}")

    # -- lookups --------------------------------------------------------------------

    def _locate(self, point: Point) -> Optional[Tuple[Point, Any]]:
        cell = self._root
        while cell.children is not None:
            child = cell.children[cell.child_index(point)]
            if child is None:
                return None
            cell = child
        for stored, value in cell.bucket:
            if stored == point:
                return stored, value
        return None

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        found = self._locate(self._check(point))
        return default if found is None else found[1]

    def contains(self, point: Sequence[float]) -> bool:
        return self._locate(self._check(point)) is not None

    # -- queries ---------------------------------------------------------------------

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        box_min = self._check(box_min)
        box_max = self._check(box_max)
        stack = [self._root]
        while stack:
            cell = stack.pop()
            if not cell.intersects(box_min, box_max):
                continue
            for point, value in cell.bucket:
                inside = True
                for v, lo, hi in zip(point, box_min, box_max):
                    if v < lo or v > hi:
                        inside = False
                        break
                if inside:
                    yield point, value
            if cell.children is not None:
                for child in cell.children:
                    if child is not None:
                        stack.append(child)

    # -- memory ------------------------------------------------------------------------

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        """Java layout: cell object (centre double[k] + half + child
        array ref + bucket ref), children as a 2**k ref array where
        split, bucket entries as point double[k] + value ref."""
        model = model or JvmMemoryModel.compressed_oops()
        cell_obj = model.object_bytes(refs=2, doubles=1)
        centre_bytes = model.array_bytes("double", self._dims)
        point_bytes = model.array_bytes("double", self._dims)
        child_array = model.array_bytes("ref", 1 << self._dims)
        total = 0
        stack = [self._root]
        while stack:
            cell = stack.pop()
            total += cell_obj + centre_bytes
            if cell.bucket:
                total += model.array_bytes("ref", len(cell.bucket))
                total += len(cell.bucket) * (
                    point_bytes + model.reference_bytes
                )
            if cell.children is not None:
                total += child_array
                for child in cell.children:
                    if child is not None:
                        stack.append(child)
        return total
