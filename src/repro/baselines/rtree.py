"""RT: an R-tree baseline (Guttman 1984, the paper's reference [10]).

The paper's related work (§2) argues that SAM structures like the R-tree
"can also be used to store points by using regions with size 0, but they
can not compete with PAM structures in this domain".  The paper does not
benchmark one; we implement it anyway so the claim itself becomes an
experiment (``ablation_sam``).

This is a textbook main-memory Guttman R-tree in point mode:

- leaf entries hold points (zero-extent rectangles), inner entries hold
  child nodes with their minimum bounding rectangles (MBRs),
- inserts descend by least area enlargement and split overflowing nodes
  with the quadratic split,
- deletes condense the tree: underfull nodes are dissolved and their
  entries reinserted,
- window queries descend every child whose MBR intersects the box; kNN
  is best-first over MBR distances.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.interface import SpatialIndex
from repro.memory.model import JvmMemoryModel

__all__ = ["RTree"]

Point = Tuple[float, ...]

#: Guttman's M and m: node capacity and minimum fill.
MAX_ENTRIES = 8
MIN_ENTRIES = 3


class _Rect:
    """A mutable axis-aligned MBR."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Point, hi: Point) -> None:
        self.lo = list(lo)
        self.hi = list(hi)

    @classmethod
    def of_point(cls, point: Point) -> "_Rect":
        return cls(point, point)

    def copy(self) -> "_Rect":
        return _Rect(tuple(self.lo), tuple(self.hi))

    def area(self) -> float:
        result = 1.0
        for lo, hi in zip(self.lo, self.hi):
            result *= hi - lo
        return result

    def enlarge(self, other: "_Rect") -> None:
        for d in range(len(self.lo)):
            if other.lo[d] < self.lo[d]:
                self.lo[d] = other.lo[d]
            if other.hi[d] > self.hi[d]:
                self.hi[d] = other.hi[d]

    def enlarged_area(self, other: "_Rect") -> float:
        result = 1.0
        for d in range(len(self.lo)):
            lo = min(self.lo[d], other.lo[d])
            hi = max(self.hi[d], other.hi[d])
            result *= hi - lo
        return result

    def intersects_box(self, box_min: Point, box_max: Point) -> bool:
        for d in range(len(self.lo)):
            if self.hi[d] < box_min[d] or self.lo[d] > box_max[d]:
                return False
        return True

    def contains_point(self, point: Point) -> bool:
        for d, v in enumerate(point):
            if v < self.lo[d] or v > self.hi[d]:
                return False
        return True

    def min_dist2(self, point: Point) -> float:
        total = 0.0
        for d, v in enumerate(point):
            if v < self.lo[d]:
                delta = self.lo[d] - v
            elif v > self.hi[d]:
                delta = v - self.hi[d]
            else:
                continue
            total += delta * delta
        return total


class _Node:
    __slots__ = ("leaf", "entries", "rect")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # Leaf entries: (point, value); inner entries: _Node children.
        self.entries: List[Any] = []
        self.rect: Optional[_Rect] = None

    def recompute_rect(self) -> None:
        rects = [
            _Rect.of_point(e[0]) if self.leaf else e.rect
            for e in self.entries
        ]
        if not rects:
            self.rect = None
            return
        rect = rects[0].copy()
        for other in rects[1:]:
            rect.enlarge(other)
        self.rect = rect


class RTree(SpatialIndex):
    """Guttman R-tree over float points (label "RT").

    >>> tree = RTree(dims=2)
    >>> tree.put((0.1, 0.2), "a")
    >>> tree.get((0.1, 0.2))
    'a'
    """

    name = "RT"

    def __init__(self, dims: int) -> None:
        super().__init__(dims)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _check(self, point: Sequence[float]) -> Point:
        point = tuple(float(v) for v in point)
        if len(point) != self._dims:
            raise ValueError(
                f"point has {len(point)} dimensions, index has {self._dims}"
            )
        return point

    # -- insertion ------------------------------------------------------------

    def put(self, point: Sequence[float], value: Any = None) -> Any:
        point = self._check(point)
        existing = self._find_leaf(self._root, point)
        if existing is not None:
            node, index = existing
            previous = node.entries[index][1]
            node.entries[index] = (point, value)
            return previous
        split = self._insert(self._root, point, value)
        if split is not None:
            # Root split: grow the tree by one level.
            old_root = self._root
            new_root = _Node(leaf=False)
            new_root.entries = [old_root, split]
            new_root.recompute_rect()
            self._root = new_root
        self._size += 1
        return None

    def _insert(
        self, node: _Node, point: Point, value: Any
    ) -> Optional[_Node]:
        point_rect = _Rect.of_point(point)
        if node.rect is None:
            node.rect = point_rect.copy()
        else:
            node.rect.enlarge(point_rect)
        if node.leaf:
            node.entries.append((point, value))
        else:
            child = self._choose_subtree(node, point_rect)
            split = self._insert(child, point, value)
            if split is not None:
                node.entries.append(split)
        if len(node.entries) > MAX_ENTRIES:
            return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, rect: _Rect) -> _Node:
        best = None
        best_enlargement = float("inf")
        best_area = float("inf")
        for child in node.entries:
            area = child.rect.area()
            enlargement = child.rect.enlarged_area(rect) - area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best = child
                best_enlargement = enlargement
                best_area = area
        return best

    def _entry_rect(self, node: _Node, entry: Any) -> _Rect:
        if node.leaf:
            return _Rect.of_point(entry[0])
        return entry.rect

    def _split(self, node: _Node) -> _Node:
        """Guttman quadratic split; returns the new sibling."""
        entries = node.entries
        rects = [self._entry_rect(node, e) for e in entries]
        # Pick the pair wasting the most area as seeds.
        worst = -float("inf")
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    rects[i].enlarged_area(rects[j])
                    - rects[i].area()
                    - rects[j].area()
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        rect_a = rects[seeds[0]].copy()
        rect_b = rects[seeds[1]].copy()
        remaining = [
            (entries[i], rects[i])
            for i in range(len(entries))
            if i not in seeds
        ]
        for entry, rect in remaining:
            grow_a = rect_a.enlarged_area(rect) - rect_a.area()
            grow_b = rect_b.enlarged_area(rect) - rect_b.area()
            need_a = MIN_ENTRIES - len(group_a)
            need_b = MIN_ENTRIES - len(group_b)
            unassigned = (
                len(entries) - len(group_a) - len(group_b)
            )
            if need_a >= unassigned:
                target, target_rect = group_a, rect_a
            elif need_b >= unassigned:
                target, target_rect = group_b, rect_b
            elif grow_a < grow_b or (
                grow_a == grow_b and rect_a.area() <= rect_b.area()
            ):
                target, target_rect = group_a, rect_a
            else:
                target, target_rect = group_b, rect_b
            target.append(entry)
            target_rect.enlarge(rect)
        node.entries = group_a
        node.recompute_rect()
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        sibling.recompute_rect()
        return sibling

    # -- lookup ------------------------------------------------------------------

    def _find_leaf(
        self, node: _Node, point: Point
    ) -> Optional[Tuple[_Node, int]]:
        if node.rect is None or not node.rect.contains_point(point):
            return None
        if node.leaf:
            for index, (stored, _) in enumerate(node.entries):
                if stored == point:
                    return node, index
            return None
        for child in node.entries:
            found = self._find_leaf(child, point)
            if found is not None:
                return found
        return None

    def get(self, point: Sequence[float], default: Any = None) -> Any:
        found = self._find_leaf(self._root, self._check(point))
        if found is None:
            return default
        node, index = found
        return node.entries[index][1]

    def contains(self, point: Sequence[float]) -> bool:
        return self._find_leaf(self._root, self._check(point)) is not None

    # -- deletion -------------------------------------------------------------------

    def remove(self, point: Sequence[float]) -> Any:
        point = self._check(point)
        removed: List[Any] = []
        orphans: List[Tuple[Point, Any]] = []
        self._delete(self._root, point, removed, orphans)
        if not removed:
            raise KeyError(f"point not found: {point}")
        self._size -= 1
        # Shrink a root that lost its children.
        if not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0]
        if not self._root.entries:
            self._root = _Node(leaf=True)
        for orphan_point, orphan_value in orphans:
            split = self._insert(self._root, orphan_point, orphan_value)
            if split is not None:
                old_root = self._root
                new_root = _Node(leaf=False)
                new_root.entries = [old_root, split]
                new_root.recompute_rect()
                self._root = new_root
        return removed[0]

    def _delete(
        self,
        node: _Node,
        point: Point,
        removed: List[Any],
        orphans: List[Tuple[Point, Any]],
    ) -> bool:
        """Returns True when ``node`` itself should be dissolved."""
        if node.rect is None or not node.rect.contains_point(point):
            return False
        if node.leaf:
            for index, (stored, value) in enumerate(node.entries):
                if stored == point:
                    removed.append(value)
                    node.entries.pop(index)
                    node.recompute_rect()
                    return (
                        node is not self._root
                        and len(node.entries) < MIN_ENTRIES
                    )
            return False
        for child_index, child in enumerate(node.entries):
            dissolve = self._delete(child, point, removed, orphans)
            if removed:
                if dissolve:
                    node.entries.pop(child_index)
                    orphans.extend(self._collect_points(child))
                node.recompute_rect()
                return (
                    node is not self._root
                    and len(node.entries) < MIN_ENTRIES
                )
        return False

    def _collect_points(self, node: _Node) -> List[Tuple[Point, Any]]:
        if node.leaf:
            return list(node.entries)
        result = []
        for child in node.entries:
            result.extend(self._collect_points(child))
        return result

    # -- queries ------------------------------------------------------------------------

    def query(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Iterator[Tuple[Point, Any]]:
        box_min = self._check(box_min)
        box_max = self._check(box_max)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is None or not node.rect.intersects_box(
                box_min, box_max
            ):
                continue
            if node.leaf:
                for point, value in node.entries:
                    inside = True
                    for v, lo, hi in zip(point, box_min, box_max):
                        if v < lo or v > hi:
                            inside = False
                            break
                    if inside:
                        yield point, value
            else:
                stack.extend(node.entries)

    def knn(
        self, point: Sequence[float], n: int = 1
    ) -> List[Tuple[Point, Any]]:
        point = self._check(point)
        if self._size == 0 or n <= 0:
            return []
        tiebreak = itertools.count()
        heap: List[Tuple[float, int, Any, bool]] = []
        if self._root.rect is not None:
            heap.append(
                (self._root.rect.min_dist2(point), next(tiebreak),
                 self._root, False)
            )
        results: List[Tuple[Point, Any]] = []
        while heap and len(results) < n:
            dist, _, item, is_entry = heapq.heappop(heap)
            if is_entry:
                results.append(item)
                continue
            node: _Node = item
            if node.leaf:
                for entry in node.entries:
                    d2 = sum(
                        (a - b) * (a - b)
                        for a, b in zip(point, entry[0])
                    )
                    heapq.heappush(
                        heap, (d2, next(tiebreak), entry, True)
                    )
            else:
                for child in node.entries:
                    if child.rect is not None:
                        heapq.heappush(
                            heap,
                            (
                                child.rect.min_dist2(point),
                                next(tiebreak),
                                child,
                                False,
                            ),
                        )
        return results

    # -- memory ----------------------------------------------------------------------------

    def memory_bytes(self, model: Optional[JvmMemoryModel] = None) -> int:
        """Java layout: node object (flag + entry-array ref + rect ref),
        MBR as two double[k], entry array of refs; leaf entries as
        point double[k] + value ref."""
        model = model or JvmMemoryModel.compressed_oops()
        node_obj = model.object_bytes(refs=2, booleans=1)
        rect_bytes = model.object_bytes(refs=2) + 2 * model.array_bytes(
            "double", self._dims
        )
        point_bytes = model.array_bytes("double", self._dims)
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node_obj + rect_bytes
            total += model.array_bytes("ref", len(node.entries))
            if node.leaf:
                total += len(node.entries) * (
                    point_bytes + model.reference_bytes
                )
            else:
                stack.extend(node.entries)
        return total

    # -- validation -----------------------------------------------------------------------

    def check_invariants(self) -> None:
        """R-tree invariants: MBRs cover their subtrees, fill bounds."""
        count = self._check_node(self._root, is_root=True)
        if count != self._size:
            raise AssertionError(
                f"size bookkeeping off: counted {count}, "
                f"stored {self._size}"
            )

    def _check_node(self, node: _Node, is_root: bool = False) -> int:
        if not node.entries:
            if not is_root:
                raise AssertionError("empty non-root node")
            return 0
        if not is_root and not (
            MIN_ENTRIES <= len(node.entries) <= MAX_ENTRIES
        ):
            raise AssertionError(
                f"node fill {len(node.entries)} outside "
                f"[{MIN_ENTRIES}, {MAX_ENTRIES}]"
            )
        if node.leaf:
            for point, _ in node.entries:
                if not node.rect.contains_point(point):
                    raise AssertionError("leaf MBR misses a point")
            return len(node.entries)
        total = 0
        for child in node.entries:
            for d in range(self._dims):
                if (
                    child.rect.lo[d] < node.rect.lo[d]
                    or child.rect.hi[d] > node.rect.hi[d]
                ):
                    raise AssertionError("child MBR escapes parent MBR")
            total += self._check_node(child)
        return total
