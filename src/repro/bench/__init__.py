"""Benchmark harness regenerating every table and figure of the paper's
Section 4.

Layout:

- :mod:`repro.bench.timing` -- wall-clock measurement helpers (the paper's
  metrics: µs per inserted entry, µs per query, µs per returned entry).
- :mod:`repro.bench.runner` -- generic experiment drivers (n-sweeps and
  k-sweeps over datasets and structures).
- :mod:`repro.bench.scales` -- the ``tiny`` / ``small`` / ``medium`` /
  ``paper`` parameter scales (Python is 50-100x slower per operation than
  the paper's JVM testbed; the default scales shrink n while preserving
  sweep shapes -- see DESIGN.md).
- :mod:`repro.bench.experiments` -- one module per paper table/figure.
- :mod:`repro.bench.cli` -- ``python -m repro.bench --experiment fig7``.
"""

from repro.bench.runner import ExperimentResult, Series

__all__ = ["ExperimentResult", "Series"]
