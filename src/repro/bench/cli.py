"""Command-line entry point for the benchmark harness.

Examples::

    python -m repro.bench --list
    python -m repro.bench --experiment fig7 --scale small
    python -m repro.bench --experiment all --scale tiny --out results/

One text report per experiment is printed to stdout; with ``--out`` each
result is additionally written as ``<exp_id>.txt`` and ``<exp_id>.csv``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.bench.experiments import REGISTRY, run_experiment
from repro.bench.scales import SCALES

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phtree-bench",
        description=(
            "Regenerate the tables and figures of 'The PH-tree' "
            "(SIGMOD 2014)."
        ),
    )
    parser.add_argument(
        "--experiment",
        "-e",
        default="all",
        help=(
            "experiment id ('all' or one of: "
            + ", ".join(sorted(REGISTRY))
            + ")"
        ),
    )
    parser.add_argument(
        "--scale",
        "-s",
        default="small",
        choices=sorted(SCALES),
        help="parameter scale (default: small)",
    )
    parser.add_argument(
        "--out",
        "-o",
        type=Path,
        default=None,
        help="directory for per-experiment .txt/.csv reports",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiment ids and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the benchmark CLI; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.list:
        for exp_id in sorted(REGISTRY):
            doc = sys.modules[REGISTRY[exp_id].__module__].__doc__ or ""
            first_line = doc.strip().splitlines()[0] if doc else ""
            print(f"{exp_id:>16s}  {first_line}")
        return 0
    if args.experiment == "all":
        exp_ids = sorted(REGISTRY)
    else:
        exp_ids = [args.experiment]
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for exp_id in exp_ids:
        started = time.perf_counter()
        try:
            results = run_experiment(exp_id, args.scale)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        for result in results:
            print(result.format_table())
            print()
            if args.out is not None:
                txt = args.out / f"{result.exp_id}.txt"
                txt.write_text(result.format_table() + "\n")
                csv = args.out / f"{result.exp_id}.csv"
                csv.write_text(result.to_csv())
                if getattr(result, "series", None):
                    from repro.bench.plotting import render_chart

                    chart = args.out / f"{result.exp_id}.chart.txt"
                    chart.write_text(render_chart(result) + "\n")
        print(f"[{exp_id} done in {elapsed:.1f}s, scale={args.scale}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
