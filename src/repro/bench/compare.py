"""Compare two benchmark result directories.

``python -m repro.bench.compare results_before results_after`` loads the
per-experiment CSV files two harness runs produced (``--out`` directories
of :mod:`repro.bench.cli`) and prints per-series ratios -- the tool to
answer "did my change make fig9 faster?" or "how do tiny and small scale
shapes compare?".
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["compare_directories", "load_csv_series", "main"]

Series = Dict[str, List[Tuple[float, float]]]


def load_csv_series(path: Path) -> Series:
    """Parse one harness CSV into {series label: [(x, y), ...]}."""
    lines = path.read_text().strip().splitlines()
    if not lines:
        return {}
    header = lines[0].split(",")
    if len(header) < 2:
        return {}
    labels = header[1:]
    series: Series = {label: [] for label in labels}
    for line in lines[1:]:
        parts = line.split(",")
        if len(parts) != len(header):
            continue
        try:
            x = float(parts[0])
        except ValueError:
            continue
        for label, cell in zip(labels, parts[1:]):
            try:
                y = float(cell)
            except ValueError:
                y = float("nan")
            series[label].append((x, y))
    return series


def _geometric_mean_ratio(
    before: List[Tuple[float, float]],
    after: List[Tuple[float, float]],
) -> Optional[float]:
    """Geometric mean of after/before at shared x positions."""
    before_by_x = {x: y for x, y in before}
    logs = []
    for x, y_after in after:
        y_before = before_by_x.get(x)
        if (
            y_before is None
            or y_before <= 0
            or y_after <= 0
            or math.isnan(y_before)
            or math.isnan(y_after)
        ):
            continue
        logs.append(math.log(y_after / y_before))
    if not logs:
        return None
    return math.exp(sum(logs) / len(logs))


def compare_directories(
    before_dir: Path, after_dir: Path
) -> List[Tuple[str, str, Optional[float]]]:
    """Return (experiment, series label, after/before ratio) rows for
    every CSV present in both directories."""
    rows: List[Tuple[str, str, Optional[float]]] = []
    for before_csv in sorted(before_dir.glob("*.csv")):
        after_csv = after_dir / before_csv.name
        if not after_csv.exists():
            continue
        before = load_csv_series(before_csv)
        after = load_csv_series(after_csv)
        exp_id = before_csv.stem
        for label in before:
            if label not in after:
                continue
            rows.append(
                (
                    exp_id,
                    label,
                    _geometric_mean_ratio(before[label], after[label]),
                )
            )
    return rows


def format_report(
    rows: List[Tuple[str, str, Optional[float]]],
    threshold: float = 0.0,
) -> str:
    """Human-readable ratio table; ``threshold`` hides |change| below it
    (e.g. 0.1 hides changes under 10%)."""
    lines = [f"{'experiment':<24s} {'series':<22s} {'after/before':>12s}"]
    for exp_id, label, ratio in rows:
        if ratio is None:
            rendered = "n/a"
        else:
            if threshold and abs(ratio - 1.0) < threshold:
                continue
            rendered = f"{ratio:.3f}x"
        lines.append(f"{exp_id:<24s} {label:<22s} {rendered:>12s}")
    if len(lines) == 1:
        lines.append("(no overlapping data)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Run the comparison CLI; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Compare two harness result directories.",
    )
    parser.add_argument("before", type=Path)
    parser.add_argument("after", type=Path)
    parser.add_argument(
        "--threshold",
        "-t",
        type=float,
        default=0.0,
        help="hide changes smaller than this fraction (e.g. 0.1)",
    )
    args = parser.parse_args(argv)
    for directory in (args.before, args.after):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory",
                  file=sys.stderr)
            return 2
    rows = compare_directories(args.before, args.after)
    print(format_report(rows, args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
