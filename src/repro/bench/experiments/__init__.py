"""One module per paper table/figure.

Each experiment module exposes ``EXP_ID`` and a ``run(scale_name)``
function returning a list of result objects (each with ``exp_id``,
``format_table()`` and ``to_csv()``).  :data:`REGISTRY` maps experiment ids
to their run functions; :func:`run_experiment` dispatches by id.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench.experiments import (
    ablation_chunks,
    ablation_hc,
    ablation_masks,
    ablation_sam,
    ablation_storage,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    tab1,
    tab2,
    tab3,
    tab4,
    unload,
)

__all__ = ["REGISTRY", "run_experiment"]

REGISTRY: Dict[str, Callable[[str], list]] = {
    "ablation_chunks": ablation_chunks.run,
    "ablation_sam": ablation_sam.run,
    "ablation_storage": ablation_storage.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "unload": unload.run,
    "tab1": tab1.run,
    "tab2": tab2.run,
    "tab3": tab3.run,
    "tab4": tab4.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "ablation_hc": ablation_hc.run,
    "ablation_masks": ablation_masks.run,
}


def run_experiment(exp_id: str, scale: str = "small") -> List[object]:
    """Run one experiment by id at the given scale."""
    try:
        runner = REGISTRY[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; one of {sorted(REGISTRY)}"
        ) from None
    return runner(scale)
