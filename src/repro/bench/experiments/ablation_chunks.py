"""Ablation: monolithic vs chunked node bit-strings (paper Outlook 1).

The paper predicts that splitting node bit-strings into chunks improves
update performance ("all node-data is stored in a single bit-string which
makes insert and delete operations slow for k > 8").  This experiment
measures the primitive that dominates LHC updates -- a mid-stream bit
insert followed by a removal -- on a monolithic
:class:`~repro.encoding.bitbuffer.BitBuffer` versus a
:class:`~repro.encoding.chunked.ChunkedBitBuffer`, for growing stream
sizes (a stand-in for growing node sizes at high k).
"""

from __future__ import annotations

import random
from typing import List

from repro.bench.runner import ExperimentResult, Series
from repro.bench.scales import get_scale
from repro.bench.timing import time_callable, us_per_op
from repro.encoding.bitbuffer import BitBuffer
from repro.encoding.chunked import ChunkedBitBuffer

EXP_ID = "ablation_chunks"

_OPS = 300


def _filled(buffer, n_bits: int):
    rng = random.Random(1)
    remaining = n_bits
    while remaining > 0:
        width = min(32, remaining)
        buffer.append(rng.randrange(1 << width), width)
        remaining -= width
    return buffer


def _update_cost(buffer, n_bits: int, seed: int) -> float:
    rng = random.Random(seed)

    def run() -> None:
        for _ in range(_OPS):
            pos = rng.randrange(n_bits)
            buffer.insert(pos, 0b1011, 4)
            buffer.remove(pos, 4)

    seconds, _ = time_callable(run)
    return us_per_op(seconds, _OPS)


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    # Stream sizes: what one node's bit-string reaches as k grows
    # (k * w bits per postfix, hundreds of postfixes).
    sizes = [1 << e for e in (10, 13, 16, 19)]
    if scale.name == "tiny":
        # Keep the largest size: that is where the asymptotic difference
        # (O(stream) vs O(chunk)) separates reliably.
        sizes = [1 << 13, 1 << 16, 1 << 19]
    result = ExperimentResult(
        exp_id="ablation_chunks",
        title="mid-stream insert+remove cost: monolithic vs chunked",
        x_label="stream bits",
        y_label="us per insert+remove pair",
    )
    mono = Series(label="monolithic")
    chunked = Series(label="chunked(4KiB)")
    for n_bits in sizes:
        mono_buf = _filled(BitBuffer(), n_bits)
        mono.add(n_bits, _update_cost(mono_buf, n_bits, seed=2))
        chunk_buf = _filled(ChunkedBitBuffer(), n_bits)
        chunked.add(n_bits, _update_cost(chunk_buf, n_bits, seed=2))
    result.series.extend([mono, chunked])
    result.notes.append(
        "expect: monolithic cost grows with stream size, chunked stays "
        "bounded by the 4KiB chunk (the paper's Outlook-1 prediction)"
    )
    return [result]
