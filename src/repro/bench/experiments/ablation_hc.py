"""Ablation: HC/LHC representation switching (paper Section 3.2).

The PH-tree's automatic per-node choice between the flat 2**k hypercube
array (HC) and the sorted linear table (LHC) is one of its central design
decisions.  This ablation loads the same dataset with the switching forced
to one representation:

- ``auto``  -- the paper's behaviour (pick whichever is smaller),
- ``lhc``   -- always linear (a pure PATRICIA-quadtree),
- ``hc``    -- always the flat array (a classic quadtree; memory explodes
  with k).

Reported per mode: load time, point-query time and modelled bytes/entry.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import (
    ExperimentResult,
    Series,
    load_index,
    time_callable,
    us_per_op,
)
from repro.bench.scales import get_scale
from repro.datasets import make_dataset
from repro.workloads import data_bounds, make_point_queries

EXP_ID = "ablation_hc"
_MODES = ("auto", "lhc", "hc")


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    k_values = [k for k in scale.k_sweep_perf if k <= 8]
    load_result = ExperimentResult(
        exp_id="ablation_hc-load",
        title="HC/LHC ablation: load time vs k (CUBE)",
        x_label="k",
        y_label="us per inserted entry",
    )
    query_result = ExperimentResult(
        exp_id="ablation_hc-query",
        title="HC/LHC ablation: point query time vs k (CUBE)",
        x_label="k",
        y_label="us per point query",
    )
    space_result = ExperimentResult(
        exp_id="ablation_hc-space",
        title="HC/LHC ablation: bytes/entry vs k (CUBE)",
        x_label="k",
        y_label="bytes per entry",
    )
    for mode in _MODES:
        load_series = Series(label=f"PH[{mode}]")
        query_series = Series(label=f"PH[{mode}]")
        space_series = Series(label=f"PH[{mode}]")
        for k in k_values:
            points = make_dataset("CUBE", scale.n_fixed, k)
            index, seconds = load_index("PH", k, points, hc_mode=mode)
            load_series.add(k, us_per_op(seconds, len(points)))
            queries = make_point_queries(
                points, scale.n_point_queries, data_bounds(points), seed=1
            )

            def run_queries() -> None:
                for q in queries:
                    index.contains(q)

            q_seconds, _ = time_callable(run_queries)
            query_series.add(k, us_per_op(q_seconds, len(queries)))
            space_series.add(k, index.bytes_per_entry())
        load_result.series.append(load_series)
        query_result.series.append(query_series)
        space_result.series.append(space_series)
    space_result.notes.append(
        "auto should never exceed the better of the two forced modes"
    )
    return [load_result, query_result, space_result]
