"""Ablation: mask-guided range-query iteration (paper Section 3.5).

The paper's ``m_L``/``m_U`` masks restrict the hypercube addresses a range
query visits inside each node and let the iterator skip invalid address
ranges in one operation.  This ablation times the same range-query
workloads with the masks enabled (paper behaviour) and disabled (visit
every occupied slot of every intersecting node), plus the CB1 near-full-
scan as the binary-tree reference point.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import (
    ExperimentResult,
    Series,
    load_index,
    time_callable,
    us_per_op,
)
from repro.bench.runner import _range_boxes
from repro.bench.scales import get_scale

EXP_ID = "ablation_masks"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = ExperimentResult(
        exp_id="ablation_masks",
        title="range-query mask ablation (us per returned entry)",
        x_label="k",
        y_label="us per returned entry",
    )
    from repro.datasets import make_dataset

    k_values = [k for k in scale.k_sweep_perf if k <= 8]
    datasets = ("CUBE", "CLUSTER0.5")
    for dataset in datasets:
        masked = Series(label=f"masks-{dataset}")
        naive = Series(label=f"naive-{dataset}")
        critbit = Series(label=f"CB1-{dataset}")
        for k in k_values:
            points = make_dataset(dataset, scale.n_fixed, k)
            boxes = _range_boxes(
                dataset, k, points, scale.n_range_queries, seed=2
            )
            index, _ = load_index("PH", k, points)
            tree = index.tree

            for series, use_masks in ((masked, True), (naive, False)):
                returned = 0

                def run_queries() -> None:
                    nonlocal returned
                    for lo, hi in boxes:
                        for _ in tree.query(lo, hi, use_masks=use_masks):
                            returned += 1

                seconds, _ = time_callable(run_queries)
                series.add(k, us_per_op(seconds, returned))

            cb_index, _ = load_index("CB1", k, points)
            returned = 0

            def run_cb_queries() -> None:
                nonlocal returned
                for lo, hi in boxes:
                    for _ in cb_index.query(lo, hi):
                        returned += 1

            seconds, _ = time_callable(run_cb_queries)
            critbit.add(k, us_per_op(seconds, returned))
        result.series.extend([masked, naive, critbit])
    result.notes.append(
        "CB1 rows document the near-O(n)-scan behaviour the paper reports "
        "for CB-tree range queries (Section 4.3.3)"
    )
    return [result]
