"""Ablation: the PH-tree vs its relatives the paper only argues about.

Section 2 of the paper makes two comparative claims it never benchmarks:

- SAM structures (R-trees) "can also be used to store points by using
  regions with size 0" but "can not compete with PAM structures in this
  domain";
- plain quadtrees "tend to require a lot of memory due to their
  propensity for requiring many and large nodes", which the PH-tree
  counters with prefix sharing and bit-stream nodes.

This experiment turns both claims into measurements: PH, RT (Guttman
R-tree), QT (bucket quadtree) and KD1 (reference PAM) on the CUBE
dataset -- load time, point queries, window queries and modelled
bytes/entry.
"""

from __future__ import annotations

from typing import List

from repro.baselines.interface import make_index
from repro.bench.runner import ExperimentResult, Series, _range_boxes
from repro.bench.scales import get_scale
from repro.bench.timing import time_callable, us_per_op
from repro.datasets import make_dataset
from repro.workloads import data_bounds, make_point_queries

EXP_ID = "ablation_sam"
_STRUCTURES = ("PH", "RT", "QT", "KD1")


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    n_values = list(scale.n_sweep[:4])
    dims = 3
    load = ExperimentResult(
        "ablation_sam-load",
        "PAM vs SAM vs quadtree: load time (CUBE 3D)",
        "entries",
        "us per entry",
    )
    point = ExperimentResult(
        "ablation_sam-point",
        "PAM vs SAM vs quadtree: point queries (CUBE 3D)",
        "entries",
        "us per query",
    )
    window = ExperimentResult(
        "ablation_sam-window",
        "PAM vs SAM vs quadtree: window queries (CUBE 3D)",
        "entries",
        "us per returned entry",
    )
    space = ExperimentResult(
        "ablation_sam-space",
        "PAM vs SAM vs quadtree: modelled memory (CUBE 3D)",
        "entries",
        "bytes per entry",
    )
    series = {
        result.exp_id: {name: Series(label=name) for name in _STRUCTURES}
        for result in (load, point, window, space)
    }
    for n in n_values:
        points = make_dataset("CUBE", n, dims)
        queries = make_point_queries(
            points, scale.n_point_queries, data_bounds(points), seed=1
        )
        boxes = _range_boxes("CUBE", dims, points, scale.n_range_queries,
                             seed=2)
        for name in _STRUCTURES:
            index = make_index(name, dims=dims)

            def build() -> None:
                for p in points:
                    index.put(p)

            seconds, _ = time_callable(build)
            series["ablation_sam-load"][name].add(
                n, us_per_op(seconds, n)
            )

            def run_points() -> None:
                for q in queries:
                    index.contains(q)

            seconds, _ = time_callable(run_points)
            series["ablation_sam-point"][name].add(
                n, us_per_op(seconds, len(queries))
            )
            returned = 0

            def run_windows() -> None:
                nonlocal returned
                for lo, hi in boxes:
                    for _ in index.query(lo, hi):
                        returned += 1

            seconds, _ = time_callable(run_windows)
            series["ablation_sam-window"][name].add(
                n, us_per_op(seconds, returned)
            )
            series["ablation_sam-space"][name].add(
                n, index.bytes_per_entry()
            )
    for result in (load, point, window, space):
        result.series.extend(series[result.exp_id].values())
    space.notes.append(
        "paper §2: R-trees cannot compete with PAMs on points; quadtrees "
        "need many/large nodes -- both show up as space overheads here"
    )
    return [load, point, window, space]
