"""Ablation: storage engines -- mutable nodes vs bulk build vs frozen
bytes.

Three ways to hold the same key set:

- the mutable object-node engine (repeated ``put``),
- the same engine filled by :func:`~repro.core.bulk.bulk_load`,
- the read-only :class:`~repro.core.frozen.FrozenPHTree` (queries decode
  the packed byte stream directly).

Reported per engine and n: build time (µs/entry), point-query time
(µs/query) and real memory (actual bytes for frozen; deep CPython size
for the object engines).  This quantifies the space/speed trade-off that
DESIGN.md calls out: the paper's compactness claims attach to the packed
layout, the object engine buys update speed.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, Series
from repro.bench.scales import get_scale
from repro.bench.timing import time_callable, us_per_op
from repro.core import PHTree, bulk_load, freeze
from repro.core.frozen import FrozenPHTree
from repro.datasets import make_dataset
from repro.encoding.ieee import encode_point
from repro.memory.pysize import index_sizeof
from repro.workloads import data_bounds, make_point_queries

EXP_ID = "ablation_storage"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    n_values = list(scale.n_sweep[:4])
    build = ExperimentResult(
        "ablation_storage-build",
        "storage engines: build time",
        "entries",
        "us per entry",
    )
    query = ExperimentResult(
        "ablation_storage-query",
        "storage engines: point query time",
        "entries",
        "us per query",
    )
    space = ExperimentResult(
        "ablation_storage-space",
        "storage engines: real memory",
        "entries",
        "bytes per entry (actual)",
    )
    put_build = Series(label="put-loop")
    bulk_build = Series(label="bulk_load")
    put_query = Series(label="mutable")
    frozen_query = Series(label="frozen")
    put_space = Series(label="mutable(py)")
    frozen_space = Series(label="frozen(bytes)")

    for n in n_values:
        points = make_dataset("CUBE", n, 3)
        keys = [encode_point(p) for p in points]
        queries = make_point_queries(
            points, scale.n_point_queries, data_bounds(points), seed=1
        )
        encoded_queries = [encode_point(q) for q in queries]

        def incremental() -> PHTree:
            tree = PHTree(dims=3, width=64)
            for key in keys:
                tree.put(key)
            return tree

        seconds, tree = time_callable(incremental)
        put_build.add(n, us_per_op(seconds, n))
        seconds, _ = time_callable(
            lambda: bulk_load(((k, None) for k in keys), dims=3)
        )
        bulk_build.add(n, us_per_op(seconds, n))

        frozen = FrozenPHTree(freeze(tree))

        def run_queries(target) -> None:
            contains = target.contains
            for q in encoded_queries:
                contains(q)

        seconds, _ = time_callable(lambda: run_queries(tree))
        put_query.add(n, us_per_op(seconds, len(encoded_queries)))
        seconds, _ = time_callable(lambda: run_queries(frozen))
        frozen_query.add(n, us_per_op(seconds, len(encoded_queries)))

        put_space.add(n, index_sizeof(tree) / n)
        frozen_space.add(n, frozen.memory_bytes() / n)

    build.series.extend([put_build, bulk_build])
    query.series.extend([put_query, frozen_query])
    space.series.extend([put_space, frozen_space])
    space.notes.append(
        "frozen = actual byte-stream length; mutable = deep CPython size"
    )
    return [build, query, space]
