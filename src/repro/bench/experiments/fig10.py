"""Figure 10: PH-tree bytes per entry for increasing k (Section 4.3.6).

Series: PH on CLUSTER0.4, CLUSTER0.5 and CUBE; n fixed (paper: 10^6).
Expected shape: CLUSTER0.5 blows up dramatically with k (exponent-boundary
splits destroy the entry-to-node ratio) while CLUSTER0.4 stays low; CUBE
sits in between.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_k_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig10"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = run_k_sweep(
        "fig10",
        "PH-tree bytes/entry vs k",
        [("PH", "CLUSTER0.4"), ("PH", "CLUSTER0.5"), ("PH", "CUBE")],
        scale.k_sweep_space,
        scale.n_space,
        metric="bytes_per_entry",
    )
    result.notes.append(
        "expect: CL0.5 rising steeply with k, CL0.4 low/flat, CUBE between"
    )
    return [result]
