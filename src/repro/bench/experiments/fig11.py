"""Figure 11: insertion times vs k, CLUSTER datasets (Section 4.3.7).

Series: PH-CL0.4, PH-CL0.5, KD2-CL0.5, CB1-CL0.5, CB1-CL0.4; n fixed
(paper: 10^7), k <= 10.  Expected shape: PH scales well until ~k=8, then
node size starts to hurt updates; CB trees scale linearly with k.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_k_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig11"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = run_k_sweep(
        "fig11",
        "insertion vs k, CLUSTER",
        [
            ("PH", "CLUSTER0.4"),
            ("PH", "CLUSTER0.5"),
            ("KD2", "CLUSTER0.5"),
            ("CB1", "CLUSTER0.5"),
            ("CB1", "CLUSTER0.4"),
        ],
        scale.k_sweep_perf,
        scale.n_fixed,
        metric="insert",
        repeats=scale.repeats,
    )
    return [result]
