"""Figure 12: insertion times vs k, CUBE dataset (Section 4.3.7).

Series: PH-CU, KD2-CU, CB1-CU; n fixed (paper: 10^7), k <= 10.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_k_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig12"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = run_k_sweep(
        "fig12",
        "insertion vs k, CUBE",
        [("PH", "CUBE"), ("KD2", "CUBE"), ("CB1", "CUBE")],
        scale.k_sweep_perf,
        scale.n_fixed,
        metric="insert",
        repeats=scale.repeats,
    )
    return [result]
