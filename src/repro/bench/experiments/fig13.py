"""Figure 13: query execution times vs k (Section 4.3.7).

Three panels:

- (a) point queries, CLUSTER: PH-CL0.4, PH-CL0.5, KD2-CL0.5, CB1-CL0.5,
- (b) point queries, CUBE: PH-CU, KD2-CU, CB1-CU, CB2-CU,
- (c) range queries: PH-CL0.4, PH-CL0.5, PH-CU, KD2-CU (KD-CL omitted, as
  in the paper, being orders of magnitude slower).

Expected shapes: point queries roughly k-independent for PH/KD with PH
fastest; CB scaling linearly in k.  Range queries: PH-CU linear in k
(LHC-dominated), PH-CL0.4 nearly flat (HC-dominated).
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_k_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig13"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    a = run_k_sweep(
        "fig13a",
        "point queries vs k, CLUSTER",
        [
            ("PH", "CLUSTER0.4"),
            ("PH", "CLUSTER0.5"),
            ("KD2", "CLUSTER0.5"),
            ("CB1", "CLUSTER0.5"),
        ],
        scale.k_sweep_space,
        scale.n_fixed,
        metric="point_query",
        n_queries=scale.n_point_queries,
        repeats=scale.repeats,
    )
    b = run_k_sweep(
        "fig13b",
        "point queries vs k, CUBE",
        [
            ("PH", "CUBE"),
            ("KD2", "CUBE"),
            ("CB1", "CUBE"),
            ("CB2", "CUBE"),
        ],
        scale.k_sweep_space,
        scale.n_fixed,
        metric="point_query",
        n_queries=scale.n_point_queries,
        repeats=scale.repeats,
    )
    c = run_k_sweep(
        "fig13c",
        "range queries vs k",
        [
            ("PH", "CLUSTER0.4"),
            ("PH", "CLUSTER0.5"),
            ("PH", "CUBE"),
            ("KD2", "CUBE"),
        ],
        scale.k_sweep_perf,
        scale.n_fixed,
        metric="range_query",
        n_queries=scale.n_range_queries,
        repeats=scale.repeats,
    )
    c.notes.append(
        "KD-CLUSTER omitted as in the paper (500-1000 us/returned entry)"
    )
    return [a, b, c]
