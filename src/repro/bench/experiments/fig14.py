"""Figure 14: space per entry vs k, CLUSTER datasets (Section 4.3.7).

Series: PH-CL0.4, PH-CL0.5, KD1-CL, CB1, CB2, double[], object[]; n fixed
(paper: 10^7).  Expected shape: PH dips around k=3..5 (storing 3D-5D
points can take *less* space per entry than 2D), CL0.5 rises steeply for
large k but stays below KD1.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_k_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig14"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = run_k_sweep(
        "fig14",
        "bytes/entry vs k, CLUSTER",
        [
            ("PH", "CLUSTER0.4"),
            ("PH", "CLUSTER0.5"),
            ("KD1", "CLUSTER0.5"),
            ("CB1", "CLUSTER0.5"),
            ("CB2", "CLUSTER0.5"),
            ("d[]", "CLUSTER0.5"),
            ("o[]", "CLUSTER0.5"),
        ],
        scale.k_sweep_space,
        scale.n_space,
        metric="bytes_per_entry",
    )
    return [result]
