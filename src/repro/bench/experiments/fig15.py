"""Figure 15: space per entry vs k, CUBE dataset (Section 4.3.7).

Series: PH-CU, KD1-CU, CB1, CB2, double[], object[]; n fixed (paper:
10^7).  Expected shape: PH below both kD-trees and both CB trees across
all k, competitive with object[].
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_k_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig15"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = run_k_sweep(
        "fig15",
        "bytes/entry vs k, CUBE",
        [
            ("PH", "CUBE"),
            ("KD1", "CUBE"),
            ("CB1", "CUBE"),
            ("CB2", "CUBE"),
            ("d[]", "CUBE"),
            ("o[]", "CUBE"),
        ],
        scale.k_sweep_space,
        scale.n_space,
        metric="bytes_per_entry",
    )
    return [result]
