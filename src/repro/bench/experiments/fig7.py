"""Figure 7: insertion times per entry (paper Section 4.3.1).

Three panels: (a) the 2D TIGER/Line dataset, (b) the 3D CUBE dataset,
(c) the 3D CLUSTER dataset; five structures each (PH, KD1, KD2, CB1, CB2).

Paper findings to look for: the PH-tree's per-entry insertion time is
nearly flat (even *decreasing* on TIGER/CLUSTER thanks to growing prefix
sharing), while the kD-trees slow down with n.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_insertion_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig7"
_STRUCTURES = ("PH", "KD1", "KD2", "CB1", "CB2")


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    panels = [
        ("fig7a", "insertion, 2D TIGER/Line", "TIGER", 2),
        ("fig7b", "insertion, 3D CUBE", "CUBE", 3),
        ("fig7c", "insertion, 3D CLUSTER", "CLUSTER0.5", 3),
    ]
    return [
        run_insertion_sweep(
            exp_id,
            title,
            dataset,
            dims,
            _STRUCTURES,
            scale.n_sweep,
            repeats=scale.repeats,
        )
        for exp_id, title, dataset, dims in panels
    ]
