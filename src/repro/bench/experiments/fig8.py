"""Figure 8: point query times (paper Section 4.3.2).

1M queries in the paper (scaled here), 50% hitting existing points, 50%
random coordinates in the allowed range.  Expected shape: PH consistently
fastest except for very small datasets, with very little degradation as n
grows; CB trees slowest (binary depth ~ k*w).
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_point_query_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig8"
_STRUCTURES = ("PH", "KD1", "KD2", "CB1", "CB2")


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    panels = [
        ("fig8a", "point queries, 2D TIGER/Line", "TIGER", 2),
        ("fig8b", "point queries, 3D CUBE", "CUBE", 3),
        ("fig8c", "point queries, 3D CLUSTER", "CLUSTER0.5", 3),
    ]
    return [
        run_point_query_sweep(
            exp_id,
            title,
            dataset,
            dims,
            _STRUCTURES,
            scale.n_sweep,
            scale.n_point_queries,
            repeats=scale.repeats,
        )
        for exp_id, title, dataset, dims in panels
    ]
