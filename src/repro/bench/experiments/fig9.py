"""Figure 9: range query times per returned entry (paper Section 4.3.3).

Query shapes per dataset: 1%-of-area boxes (TIGER), 0.1%-of-volume cuboids
(CUBE), thin x-slabs over the cluster line (CLUSTER).  The paper plots PH,
KD1 and KD2 only -- CB-tree range queries "resulted in nearly full scans"
and are omitted there (our CB implementations behave the same; see the
ablation benchmarks for evidence).

Expected shape: PH an order of magnitude faster on TIGER; on CLUSTER the
PH-tree gets *faster* with growing n (super-constant behaviour) while
kD-trees degrade badly.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_range_query_sweep
from repro.bench.scales import get_scale

EXP_ID = "fig9"
_STRUCTURES = ("PH", "KD1", "KD2")


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    panels = [
        ("fig9a", "range queries, 2D TIGER/Line", "TIGER", 2),
        ("fig9b", "range queries, 3D CUBE", "CUBE", 3),
        ("fig9c", "range queries, 3D CLUSTER", "CLUSTER0.5", 3),
    ]
    return [
        run_range_query_sweep(
            exp_id,
            title,
            dataset,
            dims,
            _STRUCTURES,
            scale.n_sweep,
            scale.n_range_queries,
            repeats=scale.repeats,
        )
        for exp_id, title, dataset, dims in panels
    ]
