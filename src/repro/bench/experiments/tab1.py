"""Table 1: required bytes per entry (paper Section 4.3.5).

Seven storage structures (PH, KD1, KD2, CB1, CB2, double[], object[]) over
the 2D TIGER/Line and the 3D CUBE and CLUSTER datasets, measured under the
JVM memory model.

Paper values (n >= 5e6):

    =========  ==  ===  ===  ==  ==  ===  ===
    dataset    PH  KD1  KD2 CB1 CB2  d[]  o[]
    =========  ==  ===  ===  ==  ==  ===  ===
    TIGER      68   87   95  79  61   16   36
    CUBE       46   95  103  88  69   24   44
    CLUSTER    43-55 95 103  88  69   24   44
    =========  ==  ===  ===  ==  ==  ===  ===

At the reproduction's smaller n the PH-tree's prefix sharing is weaker, so
expect its bytes/entry to sit above the paper's asymptote while the
relative ordering is preserved.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import TextResult
from repro.bench.scales import get_scale
from repro.datasets import make_dataset
from repro.memory.report import space_report

EXP_ID = "tab1"
_STRUCTURES = ("PH", "KD1", "KD2", "CB1", "CB2", "d[]", "o[]")
_PAPER_ROWS = {
    "TIGER": (68, 87, 95, 79, 61, 16, 36),
    "CUBE": (46, 95, 103, 88, 69, 24, 44),
    "CLUSTER0.5": (49, 95, 103, 88, 69, 24, 44),
}


def run(scale_name: str = "small") -> List[TextResult]:
    scale = get_scale(scale_name)
    datasets = [("TIGER", 2), ("CUBE", 3), ("CLUSTER0.5", 3)]
    header = f"{'dataset':>12s} {'n':>9s} " + " ".join(
        f"{name:>7s}" for name in _STRUCTURES
    )
    lines = [header]
    for dataset, dims in datasets:
        points = make_dataset(dataset, scale.n_space, dims)
        report = space_report(dataset, points, _STRUCTURES, dims)
        row = f"{dataset:>12s} {len(points):>9d} " + " ".join(
            f"{report.per_structure[name]:>7.1f}" for name in _STRUCTURES
        )
        lines.append(row)
        paper = _PAPER_ROWS.get(dataset)
        if paper:
            lines.append(
                f"{'(paper)':>12s} {'>=5e6':>9s} "
                + " ".join(f"{v:>7d}" for v in paper)
            )
    return [
        TextResult(
            "tab1",
            "bytes per entry by structure and dataset",
            "\n".join(lines),
        )
    ]
