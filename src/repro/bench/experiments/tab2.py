"""Table 2: PH-tree bytes per entry vs n for CLUSTER0.4 and CLUSTER0.5 at
k = 3 (paper Section 4.3.6).

Paper values (bytes/entry):

    10^6 entries:    1   5  10  15  25  50
    CLUSTER0.4      48  45  44  44  43  43
    CLUSTER0.5      55  48  46  45  44  43

The reproduction checks the same two trends: (a) bytes/entry falls with n
(growing prefix sharing), (b) CLUSTER0.5 starts noticeably above
CLUSTER0.4 and converges towards it.
"""

from __future__ import annotations

from typing import List

from repro.baselines import make_index
from repro.bench.runner import ExperimentResult, Series
from repro.bench.scales import get_scale
from repro.datasets import make_dataset

EXP_ID = "tab2"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = ExperimentResult(
        exp_id="tab2",
        title="PH-tree bytes/entry vs n, CLUSTER offsets 0.4 and 0.5, k=3",
        x_label="entries",
        y_label="bytes per entry",
    )
    for dataset in ("CLUSTER0.4", "CLUSTER0.5"):
        series = Series(label=f"PH-{dataset}")
        points = make_dataset(dataset, max(scale.n_sweep), 3)
        for n in scale.n_sweep:
            index = make_index("PH", dims=3)
            for point in points[:n]:
                index.put(point)
            series.add(n, index.bytes_per_entry())
        result.series.append(series)
    result.notes.append(
        "paper: 0.4 falls 48->43, 0.5 falls 55->43 over 1e6..5e7 entries"
    )
    return [result]
