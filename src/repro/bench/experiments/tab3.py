"""Table 3: number of PH-tree nodes for varying k (paper Section 4.3.6).

Paper values (thousands of nodes, 10^6 entries):

    k             2    3    5   10   15
    CUBE        623  450  284  199  138
    CLUSTER0.4  684  534  397  139   54
    CLUSTER0.5  718  629  743  995  932

The headline effect: at high k, CLUSTER0.5's exponent-boundary split makes
the node count approach the entry count (terrible entry-to-node ratio),
while CLUSTER0.4's node count collapses.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import ExperimentResult, run_k_sweep
from repro.bench.scales import get_scale

EXP_ID = "tab3"


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = run_k_sweep(
        "tab3",
        "PH-tree node count vs k",
        [("PH", "CUBE"), ("PH", "CLUSTER0.4"), ("PH", "CLUSTER0.5")],
        scale.k_sweep_space,
        scale.n_space,
        metric="node_count",
    )
    result.notes.append(
        f"n = {scale.n_space} entries "
        "(paper: 1e6; shapes comparable, absolute counts scale with n)"
    )
    result.notes.append(
        "note: the CL0.5 blow-up at k needs n >> 2**k slot collisions; "
        "at scaled-down n the k=15 column is below the paper's shape"
    )
    return [result]
