"""Table 4: IEEE Binary64 bit representations around the 0.4/0.5 exponent
boundary (paper Section 4.3.6).

An exact, deterministic reproduction: the signed 64-bit integers and the
sign/exponent/fraction bit groups of 0.39999, 0.40000, 0.49999 and 0.50000.
The point of the table: stepping from 0.49999 to 0.5 flips the *exponent*
(bit 11/12 from the left), which destroys prefix sharing for data
straddling 0.5; 0.39999 -> 0.4 only changes fraction bits around position
25.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import TextResult
from repro.encoding.ieee import java_double_to_long_bits, raw_bits

EXP_ID = "tab4"

#: The paper's exact rows: float literal -> signed 64-bit integer.
PAPER_ROWS = {
    0.39999: 4600877199177713619,
    0.40000: 4600877379321698714,
    0.49999: 4602678639028661817,
    0.50000: 4602678819172646912,
}


def _dotted(bits: str) -> str:
    """Insert a '.' every 8 bits, as in the paper's rendering."""
    return ".".join(bits[i:i + 8] for i in range(0, len(bits), 8))


def format_row(value: float) -> str:
    """One table row: float, signed integer, sign/exponent/fraction."""
    signed = java_double_to_long_bits(value)
    bits = format(raw_bits(value), "064b")
    sign, exponent, fraction = bits[0], bits[1:12], bits[12:]
    return (
        f"{value:<8g} {signed:>20d}  {sign}  "
        f"{exponent[:7]}.{exponent[7:]}  {_dotted(fraction)}"
    )


def run(scale_name: str = "small") -> List[TextResult]:
    del scale_name  # exact computation; scale-independent
    lines = [
        f"{'float':<8s} {'signed 64-bit int':>20s}  s  "
        f"{'exponent':<12s}  fraction"
    ]
    mismatches = []
    for value, expected in PAPER_ROWS.items():
        lines.append(format_row(value))
        got = java_double_to_long_bits(value)
        if got != expected:
            mismatches.append((value, expected, got))
    if mismatches:
        lines.append(f"MISMATCHES vs paper: {mismatches}")
    else:
        lines.append(
            "all four signed integers match the paper's Table 4 exactly"
        )
    return [
        TextResult(
            "tab4",
            "IEEE Binary64 representations near the 0.5 exponent boundary",
            "\n".join(lines),
        )
    ]
