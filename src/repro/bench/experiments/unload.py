"""Section 4.3.4: tree unloading (deletion of all entries).

The paper shows no figure ("due to space limitations") but reports that
results are "very similar to tree loading, but a bit faster", with the
PH-tree consistently about 10% faster for deletes than for inserts.  This
experiment reproduces the measurement and appends the PH insert/delete
ratio as a note.
"""

from __future__ import annotations

from typing import List

from repro.bench.runner import (
    ExperimentResult,
    run_insertion_sweep,
    run_unload_sweep,
)
from repro.bench.scales import get_scale

EXP_ID = "unload"
_STRUCTURES = ("PH", "KD1", "KD2", "CB1", "CB2")


def run(scale_name: str = "small") -> List[ExperimentResult]:
    scale = get_scale(scale_name)
    result = run_unload_sweep(
        "unload",
        "unloading (delete all), 3D CUBE",
        "CUBE",
        3,
        _STRUCTURES,
        scale.n_sweep,
        repeats=scale.repeats,
    )
    insert = run_insertion_sweep(
        "unload-ref",
        "insertion reference",
        "CUBE",
        3,
        ("PH",),
        scale.n_sweep,
        repeats=scale.repeats,
    )
    delete_ph = result.get("PH")
    insert_ph = insert.get("PH")
    ratios = [
        d / i for d, i in zip(delete_ph.ys, insert_ph.ys) if i > 0
    ]
    if ratios:
        mean_ratio = sum(ratios) / len(ratios)
        result.notes.append(
            f"PH delete/insert time ratio: {mean_ratio:.2f} "
            f"(paper: ~0.9, i.e. deletes ~10% faster)"
        )
    return [result]
