"""ASCII line charts for experiment results.

The paper communicates its evaluation through figures; this module gives
the harness a dependency-free way to do the same in a terminal or a text
report.  :func:`render_chart` draws an :class:`ExperimentResult`'s series
on a character canvas with per-series glyphs, linear or log-10 y-scaling
and a legend.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.bench.runner import ExperimentResult, Series

__all__ = ["render_chart"]

_GLYPHS = "ox+*#@%&"


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if not math.isnan(v) and not math.isinf(v)]


def _transform(value: float, log_scale: bool) -> float:
    if log_scale:
        return math.log10(value)
    return value


def render_chart(
    result: ExperimentResult,
    width: int = 64,
    height: int = 16,
    log_y: Optional[bool] = None,
) -> str:
    """Render all series of ``result`` as an ASCII chart.

    ``log_y=None`` auto-selects log-10 scaling when the finite y-range
    spans more than two decades (as several of the paper's figures do).
    """
    if width < 16 or height < 4:
        raise ValueError("chart needs at least 16x4 characters")
    points: List[Tuple[Series, List[Tuple[float, float]]]] = []
    all_x: List[float] = []
    all_y: List[float] = []
    for series in result.series:
        pairs = [
            (x, y)
            for x, y in zip(series.xs, series.ys)
            if not math.isnan(y) and not math.isinf(y)
        ]
        points.append((series, pairs))
        all_x.extend(x for x, _ in pairs)
        all_y.extend(y for _, y in pairs)
    if not all_y:
        return f"{result.title}: (no finite data to plot)"
    if log_y is None:
        positive = [y for y in all_y if y > 0]
        log_y = bool(positive) and (
            max(positive) / max(min(positive), 1e-300) > 100.0
        )
    if log_y:
        all_y = [y for y in all_y if y > 0]
        if not all_y:
            log_y = False
            all_y = [0.0]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo = _transform(min(all_y), log_y)
    y_hi = _transform(max(all_y), log_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (series, pairs) in enumerate(points):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pairs:
            if log_y and y <= 0:
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round(
                (_transform(y, log_y) - y_lo)
                / (y_hi - y_lo)
                * (height - 1)
            )
            canvas[height - 1 - row][col] = glyph

    scale_note = "log10" if log_y else "linear"
    y_top = 10 ** y_hi if log_y else y_hi
    y_bottom = 10 ** y_lo if log_y else y_lo
    lines = [f"{result.title}  [{scale_note} y]"]
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{y_top:>10.3g} |"
        elif i == height - 1:
            label = f"{y_bottom:>10.3g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(
        " " * 11
        + "+"
        + "-" * width
    )
    lines.append(
        " " * 11
        + f"{x_lo:<12g}{result.x_label:^{max(0, width - 24)}}{x_hi:>12g}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {series.label}"
        for i, (series, _) in enumerate(points)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
