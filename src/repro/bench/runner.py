"""Generic experiment drivers: n-sweeps and k-sweeps over datasets and
structures.

Every driver returns an :class:`ExperimentResult` holding one
:class:`Series` per (structure, dataset) combination -- exactly the lines
of the paper's figures -- plus a plain-text table renderer used by the CLI
and the pytest benchmarks.
"""

from __future__ import annotations

import statistics
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.interface import SpatialIndex, make_index
from repro.bench.timing import time_callable, us_per_op
from repro.datasets import make_dataset
from repro.workloads import (
    data_bounds,
    make_cluster_boxes,
    make_point_queries,
    make_volume_boxes,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "TextResult",
    "load_index",
    "run_insertion_sweep",
    "run_point_query_sweep",
    "run_range_query_sweep",
    "run_unload_sweep",
    "run_k_sweep",
]

Point = Tuple[float, ...]
Box = Tuple[Point, Point]

# Deep kD-trees recurse during deletion; datasets loaded in spatial order
# can degenerate them, so give Python room (the paper's Java testbed has a
# deep stack too).
_RECURSION_LIMIT = 1_000_000


@dataclass
class Series:
    """One line of a figure: y-values over the shared x-axis."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one measurement point."""
        self.xs.append(x)
        self.ys.append(y)


@dataclass
class ExperimentResult:
    """All series of one experiment plus presentation metadata."""

    exp_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def get(self, label: str) -> Series:
        """Series by label; KeyError when absent."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.exp_id}")

    def format_table(self) -> str:
        """Render all series as an aligned text table (x-major)."""
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.notes:
            lines.extend(f"   {note}" for note in self.notes)
        if not self.series:
            lines.append("   (no data)")
            return "\n".join(lines)
        xs = self.series[0].xs
        header = [f"{self.x_label:>14s}"] + [
            f"{s.label:>14s}" for s in self.series
        ]
        lines.append(" ".join(header))
        for i, x in enumerate(xs):
            row = [f"{x:>14g}"]
            for s in self.series:
                y = s.ys[i] if i < len(s.ys) else float("nan")
                row.append(f"{y:>14.4g}")
            lines.append(" ".join(row))
        lines.append(f"   (y = {self.y_label})")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering with one column per series."""
        header = [self.x_label] + [s.label for s in self.series]
        rows = [",".join(header)]
        xs = self.series[0].xs if self.series else []
        for i, x in enumerate(xs):
            row = [repr(x)]
            for s in self.series:
                y = s.ys[i] if i < len(s.ys) else float("nan")
                row.append(repr(y))
            rows.append(",".join(row))
        return "\n".join(rows) + "\n"


@dataclass
class TextResult:
    """A pre-rendered experiment result (used by table-shaped outputs
    that do not fit the series-over-x model, e.g. Tables 1 and 4)."""

    exp_id: str
    title: str
    text: str

    def format_table(self) -> str:
        """Render the pre-formatted text with its experiment header."""
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"

    def to_csv(self) -> str:
        """Pre-rendered results have no tabular CSV; emit the text."""
        return self.text + "\n"


def load_index(
    name: str, dims: int, points: Sequence[Point], **kwargs: object
) -> Tuple[SpatialIndex, float]:
    """Create a structure and load all points; returns (index, seconds)."""
    sys.setrecursionlimit(_RECURSION_LIMIT)
    index = make_index(name, dims=dims, **kwargs)

    def load() -> None:
        put = index.put
        for point in points:
            put(point)

    seconds, _ = time_callable(load)
    return index, seconds


def _averaged(
    measure: Callable[[], float], repeats: int
) -> float:
    """Mean of ``repeats`` runs (the paper averages three runs)."""
    return statistics.fmean(measure() for _ in range(max(1, repeats)))


def run_insertion_sweep(
    exp_id: str,
    title: str,
    dataset: str,
    dims: int,
    structures: Sequence[str],
    n_values: Sequence[int],
    seed: int = 0,
    repeats: int = 1,
) -> ExperimentResult:
    """Figure 7 driver: average load time per entry vs n."""
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="entries",
        y_label="us per inserted entry",
    )
    all_points = make_dataset(dataset, max(n_values), dims, seed=seed)
    for name in structures:
        series = Series(label=name)
        for n in n_values:
            points = all_points[:n]

            def measure() -> float:
                _, seconds = load_index(name, dims, points)
                return us_per_op(seconds, n)

            series.add(n, _averaged(measure, repeats))
        result.series.append(series)
    return result


def run_point_query_sweep(
    exp_id: str,
    title: str,
    dataset: str,
    dims: int,
    structures: Sequence[str],
    n_values: Sequence[int],
    n_queries: int,
    seed: int = 0,
    repeats: int = 1,
) -> ExperimentResult:
    """Figure 8 driver: point-query time vs n (50/50 hit/random mix)."""
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="entries",
        y_label="us per point query",
    )
    all_points = make_dataset(dataset, max(n_values), dims, seed=seed)
    bounds = data_bounds(all_points)
    for name in structures:
        series = Series(label=name)
        for n in n_values:
            points = all_points[:n]
            queries = make_point_queries(
                points, n_queries, bounds, seed=seed + 1
            )
            index, _ = load_index(name, dims, points)

            def measure() -> float:
                contains = index.contains

                def run_queries() -> None:
                    for q in queries:
                        contains(q)

                seconds, _ = time_callable(run_queries)
                return us_per_op(seconds, len(queries))

            series.add(n, _averaged(measure, repeats))
        result.series.append(series)
    return result


def _range_boxes(
    dataset: str,
    dims: int,
    points: Sequence[Point],
    n_queries: int,
    seed: int,
) -> List[Box]:
    """The paper's per-dataset range-query shapes (Section 4.3.3)."""
    if dataset == "TIGER":
        return make_volume_boxes(
            data_bounds(points), n_queries, 0.01, seed=seed
        )
    if dataset == "CUBE":
        unit = ((0.0,) * dims, (1.0,) * dims)
        return make_volume_boxes(unit, n_queries, 0.001, seed=seed)
    if dataset.startswith("CLUSTER"):
        return make_cluster_boxes(dims, n_queries, seed=seed)
    raise ValueError(f"no range-query shape defined for {dataset!r}")


def run_range_query_sweep(
    exp_id: str,
    title: str,
    dataset: str,
    dims: int,
    structures: Sequence[str],
    n_values: Sequence[int],
    n_queries: int,
    seed: int = 0,
    repeats: int = 1,
) -> ExperimentResult:
    """Figure 9 driver: range-query time per returned entry vs n."""
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="entries",
        y_label="us per returned entry",
    )
    all_points = make_dataset(dataset, max(n_values), dims, seed=seed)
    for name in structures:
        series = Series(label=name)
        for n in n_values:
            points = all_points[:n]
            boxes = _range_boxes(dataset, dims, points, n_queries, seed + 2)
            index, _ = load_index(name, dims, points)

            def measure() -> float:
                returned = 0

                def run_queries() -> None:
                    nonlocal returned
                    for lo, hi in boxes:
                        for _ in index.query(lo, hi):
                            returned += 1

                seconds, _ = time_callable(run_queries)
                return us_per_op(seconds, returned)

            series.add(n, _averaged(measure, repeats))
        result.series.append(series)
    return result


def run_unload_sweep(
    exp_id: str,
    title: str,
    dataset: str,
    dims: int,
    structures: Sequence[str],
    n_values: Sequence[int],
    seed: int = 0,
    repeats: int = 1,
) -> ExperimentResult:
    """Section 4.3.4 driver: delete-all time per entry vs n."""
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="entries",
        y_label="us per deleted entry",
    )
    all_points = make_dataset(dataset, max(n_values), dims, seed=seed)
    for name in structures:
        series = Series(label=name)
        for n in n_values:
            # Deduplicate: deleting a point twice would raise.
            points = list(dict.fromkeys(all_points[:n]))

            def measure() -> float:
                index, _ = load_index(name, dims, points)
                remove = index.remove

                def unload() -> None:
                    for point in points:
                        remove(point)

                seconds, _ = time_callable(unload)
                return us_per_op(seconds, len(points))

            series.add(n, _averaged(measure, repeats))
        result.series.append(series)
    return result


def run_k_sweep(
    exp_id: str,
    title: str,
    combos: Sequence[Tuple[str, str]],
    k_values: Sequence[int],
    n: int,
    metric: str,
    n_queries: int = 1000,
    seed: int = 0,
    repeats: int = 1,
) -> ExperimentResult:
    """Figures 10-15 driver: a metric vs dimensionality k.

    ``combos`` are ``(structure, dataset)`` pairs (the paper's figure
    legends, e.g. ``("PH", "CLUSTER0.4")``).  ``metric`` is one of
    ``"insert"``, ``"delete"``, ``"point_query"``, ``"range_query"``,
    ``"bytes_per_entry"``, ``"node_count"``.
    """
    y_labels = {
        "insert": "us per inserted entry",
        "delete": "us per deleted entry",
        "point_query": "us per point query",
        "range_query": "us per returned entry",
        "bytes_per_entry": "bytes per entry",
        "node_count": "nodes (PH-tree)",
    }
    if metric not in y_labels:
        raise ValueError(
            f"unknown metric {metric!r}; one of {sorted(y_labels)}"
        )
    result = ExperimentResult(
        exp_id=exp_id,
        title=title,
        x_label="k",
        y_label=y_labels[metric],
    )
    for structure, dataset in combos:
        series = Series(label=f"{structure}-{dataset}")
        for k in k_values:
            points = make_dataset(dataset, n, k, seed=seed)
            series.add(
                k,
                _k_sweep_metric(
                    structure,
                    dataset,
                    points,
                    k,
                    metric,
                    n_queries,
                    seed,
                    repeats,
                ),
            )
        result.series.append(series)
    return result


def _k_sweep_metric(
    structure: str,
    dataset: str,
    points: Sequence[Point],
    k: int,
    metric: str,
    n_queries: int,
    seed: int,
    repeats: int,
) -> float:
    if metric == "insert":

        def measure() -> float:
            _, seconds = load_index(structure, k, points)
            return us_per_op(seconds, len(points))

        return _averaged(measure, repeats)
    if metric == "delete":
        unique = list(dict.fromkeys(points))

        def measure() -> float:
            index, _ = load_index(structure, k, unique)

            def unload() -> None:
                for point in unique:
                    index.remove(point)

            seconds, _ = time_callable(unload)
            return us_per_op(seconds, len(unique))

        return _averaged(measure, repeats)

    index, _ = load_index(structure, k, points)
    if metric == "bytes_per_entry":
        return index.bytes_per_entry()
    if metric == "node_count":
        from repro.core import collect_stats

        if structure != "PH":
            raise ValueError("node_count is a PH-tree metric")
        return collect_stats(index.tree.int_tree).n_nodes
    if metric == "point_query":
        bounds = data_bounds(points)
        queries = make_point_queries(
            points, n_queries, bounds, seed=seed + 1
        )

        def measure() -> float:
            def run_queries() -> None:
                for q in queries:
                    index.contains(q)

            seconds, _ = time_callable(run_queries)
            return us_per_op(seconds, len(queries))

        return _averaged(measure, repeats)
    if metric == "range_query":
        boxes = _range_boxes(dataset, k, points, n_queries, seed + 2)

        def measure() -> float:
            returned = 0

            def run_queries() -> None:
                nonlocal returned
                for lo, hi in boxes:
                    for _ in index.query(lo, hi):
                        returned += 1

            seconds, _ = time_callable(run_queries)
            return us_per_op(seconds, returned)

        return _averaged(measure, repeats)
    raise AssertionError(f"unhandled metric {metric!r}")
