"""Benchmark parameter scales.

The paper's runs reach 10^8 entries on a JVM testbed; pure Python pays a
50-100x constant factor per operation, so the default scales shrink the
entry counts while keeping the sweep *shapes* (growth trends, crossovers,
who-beats-whom).  Every experiment accepts a scale name:

- ``tiny``    -- seconds; used by the pytest benchmark suite and CI,
- ``small``   -- the default for ``python -m repro.bench``; a few minutes,
- ``medium``  -- tens of minutes; closest practical match to the paper,
- ``paper``   -- the original sizes (documented; impractical in Python --
  expect days and tens of GB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["SCALES", "Scale", "get_scale"]


@dataclass(frozen=True)
class Scale:
    """Parameters shared by all experiments at one scale."""

    name: str
    #: n values for entry-count sweeps (Figures 7-9, Table 2).
    n_sweep: Tuple[int, ...]
    #: fixed n for k-sweeps (Figures 10-15, Table 3).
    n_fixed: int
    #: fixed n for the space table (Table 1; paper: >= 5e6).
    n_space: int
    #: k values for performance k-sweeps (Figures 11-13; paper: <= 10).
    k_sweep_perf: Tuple[int, ...]
    #: k values for space k-sweeps (Figures 10, 14, 15; paper: <= 15).
    k_sweep_space: Tuple[int, ...]
    #: number of point queries per measurement (paper: 1e6).
    n_point_queries: int
    #: number of range queries per measurement.
    n_range_queries: int
    #: measurement repetitions (paper: 3).
    repeats: int


SCALES: Dict[str, Scale] = {
    "tiny": Scale(
        name="tiny",
        n_sweep=(300, 600, 1200),
        n_fixed=800,
        n_space=1500,
        k_sweep_perf=(2, 3, 5, 8),
        k_sweep_space=(2, 3, 5, 10, 15),
        n_point_queries=300,
        n_range_queries=20,
        repeats=1,
    ),
    "small": Scale(
        name="small",
        n_sweep=(2000, 5000, 10000, 20000, 40000),
        n_fixed=10000,
        n_space=40000,
        k_sweep_perf=(2, 3, 4, 6, 8, 10),
        k_sweep_space=(2, 3, 5, 10, 15),
        n_point_queries=2000,
        n_range_queries=50,
        repeats=1,
    ),
    "medium": Scale(
        name="medium",
        n_sweep=(10000, 25000, 50000, 100000, 200000),
        n_fixed=50000,
        n_space=200000,
        k_sweep_perf=(2, 3, 4, 6, 8, 10),
        k_sweep_space=(2, 3, 5, 10, 15),
        n_point_queries=10000,
        n_range_queries=100,
        repeats=3,
    ),
    "paper": Scale(
        name="paper",
        n_sweep=(1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000),
        n_fixed=10_000_000,
        n_space=10_000_000,
        k_sweep_perf=(2, 3, 4, 6, 8, 10),
        k_sweep_space=(2, 3, 5, 10, 15),
        n_point_queries=1_000_000,
        n_range_queries=1000,
        repeats=3,
    ),
}


def get_scale(name: str) -> Scale:
    """Scale by name, with a helpful error."""
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; one of {sorted(SCALES)}"
        ) from None
