"""Wall-clock measurement helpers.

The paper reports three normalised metrics (Sections 4.3.1-4.3.3):

- loading: total load time divided by the number of entries (µs/entry),
- point queries: total time divided by the number of queries (µs/query),
- range queries: total time divided by the number of *returned* entries
  (µs per returned entry).

All timing uses :func:`time.perf_counter_ns`.  Where the paper runs each
test three times and reports averages, the drivers accept a ``repeats``
parameter and do the same.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple

__all__ = ["time_callable", "us_per_op"]


def time_callable(func: Callable[[], object]) -> Tuple[float, object]:
    """Run ``func`` once; return ``(elapsed_seconds, result)``."""
    start = time.perf_counter_ns()
    result = func()
    elapsed = time.perf_counter_ns() - start
    return elapsed / 1e9, result


def us_per_op(total_seconds: float, n_ops: int) -> float:
    """Microseconds per operation; 0 ops yields NaN rather than a crash."""
    if n_ops <= 0:
        return float("nan")
    return total_seconds * 1e6 / n_ops
