"""Perf-trajectory micro-benchmarks for the core hot paths.

The paper's headline claims are throughput claims (Section 4: inserts,
point queries, range queries per second against kD-trees and critbit
trees), so this reproduction tracks its own speed over time: each run
times the hot paths at a small, fixed scale and writes the numbers to
``BENCH_core.json`` at the repository root.  That file is the perf
trajectory -- every PR regenerates it (``make bench-json``) and future
PRs must not regress the recorded speedups.

Measured (best of ``repeats`` runs each, CUBE-distributed integer keys):

- ``insert``: sequential ``put`` loop (specialized kernels), plus the
  generic-engine twin (``specialize=False``) as its baseline,
- ``delete``: sequential ``remove`` loop draining a freshly built tree,
- ``bulk_load``: the bottom-up builder over the same entry set,
- ``point_seq``: sequential ``get`` per key over a z-sorted batch
  (specialized), plus the generic-engine twin,
- ``point_batch`` / ``point_batch_presorted``: the same batch through
  :meth:`PHTree.get_many` (with and without the internal sort),
- ``range_kernel`` vs ``range_generator``: the *generic* iterative
  range-scan kernel against the seed generator-stack engine, on
  Figure-9-style window queries (normalised per returned entry),
- ``range_spec``: the same boxes through the per-(k, width) specialized
  kernel (see :mod:`repro.core.specialize`),
- ``query_many``: the batched window engine over the same boxes,
- ``knn``: 10-nearest-neighbour queries,
- ``sharded_query``: the same box batch through the sharded snapshot
  engine's process-pool fan-out with 1 vs 4 workers (the recorded
  ``cpu_count`` says how much hardware parallelism was available),
- ``*_arena``: the flat-buffer arena engine (``layout="arena"``) run
  over the same workloads -- insert, delete, point (sequential and
  batched), window queries and ``freeze()`` -- against the object
  engine, plus a ``space`` section with real bytes-per-entry for both
  mutable layouts (``repro.memory.report.arena_space_report``),
- ``frozen_point`` / ``frozen_window`` / ``frozen_knn`` against their
  ``learned_*`` twins: the frozen snapshot's exact bit-stream descent
  vs the model-seeded bisect over the *same* blob (the PHL1 learned
  trailer from :mod:`repro.learned`, attached twice -- once with the
  trailer ignored), with parity asserted before timing,
- ``router_balance``: shard-population imbalance of the fixed z-prefix
  router vs the learned CDF router on prefix-skewed CLUSTER keys.

Derived speedups are the acceptance numbers: ``speedup_get_many`` /
``speedup_range_iter`` (batching and the iterative kernel against the
seed engine), and ``speedup_spec_insert`` / ``speedup_spec_point`` /
``speedup_spec_window`` (the specialized kernels against the generic
engines they replaced on the hot path -- every workload first asserts
the two produce identical results), and ``speedup_learned_frozen_point``
/ ``speedup_learned_window_seek`` / ``speedup_learned_frozen_knn`` (the
learned z-address model against the exact frozen descent).

Usage::

    PYTHONPATH=src python -m repro.bench.trajectory -o BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.batch import z_sort_key
from repro.encoding.interleave import interleave as _z_interleave
from repro.core.phtree import PHTree
from repro.core.specialize import registry_cap as _registry_cap
from repro.core.specialize import registry_size as _registry_size
from repro.core.range_query import generator_range_iter, range_iter
from repro.datasets.cube import generate_cube
from repro.datasets.rng import make_rng

__all__ = ["SCALES", "main", "run_trajectory", "write_report"]

#: Benchmark scale presets.  The trajectory is a *relative* measure, so
#: the scale stays small enough to run inside the test suite; ``small``
#: is the canonical scale recorded in BENCH_core.json.
SCALES: Dict[str, Dict[str, int]] = {
    "tiny": {"n": 2_000, "n_boxes": 60, "n_knn": 20, "repeats": 3},
    "small": {"n": 10_000, "n_boxes": 200, "n_knn": 60, "repeats": 5},
    "medium": {"n": 50_000, "n_boxes": 400, "n_knn": 120, "repeats": 3},
}

#: Fixed workload shape: 3 dimensions at 20-bit precision, CUBE data.
DIMS = 3
WIDTH = 20

SCHEMA_VERSION = 1


def _best(func: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``func``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _best_group(
    funcs: "List[Callable[[], Any]]", repeats: int
) -> "List[float]":
    """Best-of-``repeats`` for several *competing* candidates, timed
    round-robin: every round times each candidate once, so slow machine
    drift (thermal throttling, background load) lands on all of them
    equally instead of on whichever was measured last.  The engine-vs-
    engine speedup ratios in the report are only meaningful with this
    pairing."""
    best = [float("inf")] * len(funcs)
    for _ in range(repeats):
        for i, func in enumerate(funcs):
            start = time.perf_counter()
            func()
            elapsed = time.perf_counter() - start
            if elapsed < best[i]:
                best[i] = elapsed
    return best


def _make_keys(n: int, seed: int) -> List[Tuple[int, ...]]:
    """CUBE-distributed integer keys (deduplicated, exactly n kept when
    possible)."""
    scale = 1 << WIDTH
    seen = set()
    keys: List[Tuple[int, ...]] = []
    # Over-generate slightly; collisions are rare at this density.
    for point in generate_cube(n + n // 10 + 16, DIMS, seed=seed):
        key = tuple(min(int(v * scale), scale - 1) for v in point)
        if key not in seen:
            seen.add(key)
            keys.append(key)
            if len(keys) == n:
                break
    return keys


def _make_boxes(
    n_boxes: int, seed: int
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Figure-9-style window queries: fixed-extent boxes at random
    positions (~1/64 of the domain volume each)."""
    rng = make_rng(seed + 1)
    top = (1 << WIDTH) - 1
    extent = 1 << (WIDTH - 2)
    boxes = []
    for _ in range(n_boxes):
        lo = tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
        hi = tuple(min(v + extent, top) for v in lo)
        boxes.append((lo, hi))
    return boxes


def _instrument_pass(
    tree: PHTree,
    build: Callable[[], PHTree],
    batch: List[Tuple[int, ...]],
    boxes: List[Tuple[Tuple[int, ...], Tuple[int, ...]]],
    knn_queries: List[Tuple[int, ...]],
    frozen_learned: Any = None,
    seek_boxes: Optional[
        List[Tuple[Tuple[int, ...], Tuple[int, ...]]]
    ] = None,
) -> Dict[str, Any]:
    """Re-drive each benchmarked workload once with observability on and
    report its internal counters (nodes visited, slots scanned, ...).

    Runs strictly *after* all timings: instrumentation must never be
    enabled while the stopwatch is running.
    """
    from repro import obs
    from repro.obs import probes

    def stage(
        run: Callable[[], Any], fields: Dict[str, Any]
    ) -> Dict[str, int]:
        obs.reset()
        run()
        return {name: int(child.value) for name, child in fields.items()}

    obs.enable()
    try:
        counts = {
            "insert": stage(
                build,
                {
                    "nodes_visited": probes.write_nodes_visited,
                    "slots_scanned": probes.write_slots_scanned,
                    "nodes_created": probes.tree_nodes_created,
                    "ops": probes.ops_put,
                },
            ),
            "point_seq": stage(
                lambda: [tree.get(key) for key in batch],
                {
                    "nodes_visited": probes.point_nodes_visited,
                    "slots_scanned": probes.point_slots_scanned,
                    "ops": probes.ops_get,
                },
            ),
            "point_batch": stage(
                lambda: tree.get_many(batch),
                {
                    "nodes_visited": probes.batch_nodes_visited,
                    "slots_scanned": probes.batch_slots_scanned,
                    "keys": probes.batch_keys_get,
                    "ops": probes.ops_get_many,
                },
            ),
            "range_kernel": stage(
                lambda: [
                    sum(1 for _ in tree.query(lo, hi)) for lo, hi in boxes
                ],
                {
                    "nodes_visited": probes.kernel_nodes_visited,
                    "slots_scanned": probes.kernel_slots_scanned,
                    "frames_pushed": probes.kernel_frames_pushed,
                    "full_cover_flushes": probes.kernel_full_cover_flushes,
                    "entries_yielded": probes.kernel_entries_yielded,
                    "ops": probes.ops_query,
                },
            ),
            "query_many": stage(
                lambda: tree.query_many(boxes),
                {
                    "nodes_visited": probes.qmany_nodes_visited,
                    "slots_scanned": probes.qmany_slots_scanned,
                    "ops": probes.ops_query_many,
                },
            ),
            "knn": stage(
                lambda: [tree.knn(query, 10) for query in knn_queries],
                {
                    "regions_expanded": probes.knn_regions_expanded,
                    "heap_pushes": probes.knn_heap_pushes,
                    "heap_high_water": probes.knn_heap_high_water,
                    "entries_yielded": probes.knn_entries_yielded,
                    "ops": probes.ops_knn,
                },
            ),
        }
        if frozen_learned is not None:
            counts["learned_point"] = stage(
                lambda: [frozen_learned.get(key) for key in batch],
                {
                    "model_lookups": probes.learned_lookups_point,
                    "fallbacks": probes.learned_fallbacks_point,
                    "segments_consulted": (
                        probes.learned_segments_consulted
                    ),
                    "prediction_error": probes.learned_prediction_error,
                },
            )
        if frozen_learned is not None and seek_boxes:
            counts["learned_window"] = stage(
                lambda: [
                    sum(1 for _ in frozen_learned.query(lo, hi))
                    for lo, hi in seek_boxes
                ],
                {
                    "model_lookups": probes.learned_lookups_window,
                    "fallbacks": probes.learned_fallbacks_window,
                    "segments_consulted": (
                        probes.learned_segments_consulted
                    ),
                    "prediction_error": probes.learned_prediction_error,
                },
            )
        # Write path, deleting side: drain a fresh tree (built outside
        # the stage so its put probes don't pollute the delete counts).
        victim = build()
        counts["delete"] = stage(
            lambda: [victim.remove(key) for key in batch],
            {
                "nodes_visited": probes.write_nodes_visited,
                "slots_scanned": probes.write_slots_scanned,
                "nodes_merged": probes.tree_nodes_merged,
                "ops": probes.ops_remove,
            },
        )
    finally:
        obs.disable()
        obs.reset()
    return counts


def run_trajectory(
    scale: str = "small", seed: int = 0, instrument: bool = False
) -> Dict[str, Any]:
    """Run the micro-benchmarks and return the trajectory report dict.

    With ``instrument=True`` the report gains an ``instrumentation``
    section: each benchmarked op re-run once (after the timings) with
    :mod:`repro.obs` enabled, recording nodes visited, slots scanned
    and friends.
    """
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r}, expected one of {sorted(SCALES)}"
        )
    params = SCALES[scale]
    n = params["n"]
    repeats = params["repeats"]
    keys = _make_keys(n, seed)
    values = list(range(len(keys)))
    boxes = _make_boxes(params["n_boxes"], seed)
    rng = make_rng(seed + 2)
    knn_queries = [
        tuple(rng.randrange(1 << WIDTH) for _ in range(DIMS))
        for _ in range(params["n_knn"])
    ]

    # -- insert: specialized kernels vs the generic engines --------------
    def build() -> PHTree:
        # The object engine is the comparison baseline for every
        # speedup_arena_* record; pin it now that "arena" is the
        # session default layout.
        tree = PHTree(dims=DIMS, width=WIDTH, layout="object")
        put = tree.put
        for key, value in zip(keys, values):
            put(key, value)
        return tree

    def build_generic() -> PHTree:
        tree = PHTree(
            dims=DIMS, width=WIDTH, specialize=False, layout="object"
        )
        put = tree.put
        for key, value in zip(keys, values):
            put(key, value)
        return tree

    def build_arena() -> PHTree:
        tree = PHTree(dims=DIMS, width=WIDTH, layout="arena")
        put = tree.put
        for key, value in zip(keys, values):
            put(key, value)
        return tree

    t_insert, t_insert_generic, t_insert_arena = _best_group(
        [build, build_generic, build_arena], repeats
    )
    tree = build()
    tree_generic = build_generic()
    tree_arena = build_arena()

    # -- delete: drain a freshly built tree ------------------------------
    def drain_once(builder: Callable[[], PHTree]) -> float:
        victim = builder()
        remove = victim.remove
        start = time.perf_counter()
        for key in keys:
            remove(key)
        elapsed = time.perf_counter() - start
        assert len(victim) == 0
        return elapsed

    t_delete = float("inf")
    t_delete_arena = float("inf")
    for _ in range(repeats):
        t_delete = min(t_delete, drain_once(build))
        t_delete_arena = min(t_delete_arena, drain_once(build_arena))

    # -- bulk load: bottom-up build over the same entries ----------------
    from repro.core.bulk import bulk_load

    entries = list(zip(keys, values))
    t_bulk = _best(
        lambda: bulk_load(entries, dims=DIMS, width=WIDTH), repeats
    )

    # -- point queries: sequential vs batched ----------------------------
    batch = sorted(keys, key=z_sort_key(DIMS, WIDTH))

    def point_seq() -> None:
        get = tree.get
        for key in batch:
            get(key)

    def point_seq_generic() -> None:
        get = tree_generic.get
        for key in batch:
            get(key)

    def point_seq_arena() -> None:
        get = tree_arena.get
        for key in batch:
            get(key)

    t_point_seq, t_point_seq_generic, t_point_seq_arena = _best_group(
        [point_seq, point_seq_generic, point_seq_arena], repeats
    )
    t_point_batch, t_point_batch_pre, t_point_batch_arena = _best_group(
        [
            lambda: tree.get_many(batch),
            lambda: tree.get_many(batch, presorted=True),
            lambda: tree_arena.get_many(batch),
        ],
        repeats,
    )
    # Sanity: the engines must agree before their timings mean anything.
    assert tree.get_many(batch) == [tree.get(k) for k in batch]
    assert tree.get_many(batch) == tree_generic.get_many(batch)
    assert tree.get_many(batch) == tree_arena.get_many(batch)

    # -- range queries: iterative kernel vs seed generator engine --------
    root = tree.root
    spec = tree.specialization

    def run_range(engine: Callable) -> int:
        total = 0
        for lo, hi in boxes:
            for _ in engine(root, lo, hi):
                total += 1
        return total

    def run_range_spec() -> int:
        total = 0
        for lo, hi in boxes:
            for _ in range_iter(root, lo, hi, spec):
                total += 1
        return total

    def run_range_arena() -> int:
        total = 0
        for lo, hi in boxes:
            for _ in tree_arena.query(lo, hi):
                total += 1
        return total

    returned = run_range(range_iter)
    assert returned == run_range(generator_range_iter)
    assert returned == run_range_arena()
    # Bit-identical output (entries AND order) from the specialized twin.
    for lo, hi in boxes[: min(8, len(boxes))]:
        assert list(range_iter(root, lo, hi, spec)) == list(
            range_iter(root, lo, hi)
        )
    (
        t_range_kernel,
        t_range_spec,
        t_range_generator,
        t_query_many,
        t_range_arena,
    ) = _best_group(
        [
            lambda: run_range(range_iter),
            run_range_spec,
            lambda: run_range(generator_range_iter),
            lambda: tree.query_many(boxes),
            run_range_arena,
        ],
        repeats,
    )

    # -- freeze: per-node object walk vs straight-from-slab copy ---------
    from repro.core.frozen import freeze
    from repro.core.serialize import U64ValueCodec as _U64

    assert freeze(tree, _U64) == freeze(tree_arena, _U64)
    t_freeze_object, t_freeze_arena = _best_group(
        [lambda: freeze(tree, _U64), lambda: freeze(tree_arena, _U64)],
        repeats,
    )

    # -- kNN -------------------------------------------------------------
    def run_knn() -> None:
        knn = tree.knn
        for query in knn_queries:
            knn(query, 10)

    t_knn = _best(run_knn, repeats)

    # -- frozen reads: exact descent vs the learned z-address model ------
    # One learned freeze serves both sides: the exact baseline attaches
    # the same blob with the trailer ignored, so the byte streams (and
    # cache behaviour) are identical and only the lookup path differs.
    from repro.core.frozen import FrozenPHTree

    t_fit_start = time.perf_counter()
    blob_learned = freeze(tree_arena, _U64, learned=True)
    t_learned_fit = time.perf_counter() - t_fit_start
    frozen_exact = FrozenPHTree(blob_learned, _U64, learned=False)
    frozen_learned = FrozenPHTree(blob_learned, _U64)
    model = frozen_learned.learned_index
    assert model is not None, "learned trailer failed to attach"

    # Parity first: both frozen paths must agree with the live tree.
    assert [frozen_exact.get(k) for k in batch] == [
        tree.get(k) for k in batch
    ]
    assert [frozen_learned.get(k) for k in batch] == [
        frozen_exact.get(k) for k in batch
    ]

    def frozen_point() -> None:
        get = frozen_exact.get
        for key in batch:
            get(key)

    def learned_point() -> None:
        get = frozen_learned.get
        for key in batch:
            get(key)

    t_frozen_point, t_learned_point = _best_group(
        [frozen_point, learned_point], repeats
    )

    def run_window(frozen: FrozenPHTree) -> int:
        total = 0
        for lo, hi in boxes:
            for _ in frozen.query(lo, hi):
                total += 1
        return total

    assert run_window(frozen_exact) == returned
    assert run_window(frozen_learned) == returned
    t_frozen_window, t_learned_window = _best_group(
        [
            lambda: run_window(frozen_exact),
            lambda: run_window(frozen_learned),
        ],
        repeats,
    )

    # Seek workload: narrow windows anchored at data keys (1/256 of the
    # domain per dimension, >= 1 hit each).  These are the queries the
    # model's predicted scan start accelerates; the fat Figure-9 boxes
    # above mostly exceed the scan cap and fall back to the exact walk,
    # so they gate no-regression rather than the seek win.
    seek_extent = 1 << (WIDTH - 8)
    seek_top = (1 << WIDTH) - 1
    seek_boxes = [
        (key, tuple(min(v + seek_extent, seek_top) for v in key))
        for key in batch[: min(300, len(batch))]
    ]
    for lo, hi in seek_boxes[: min(32, len(seek_boxes))]:
        assert list(frozen_learned.query(lo, hi)) == list(
            frozen_exact.query(lo, hi)
        )

    def run_seek(frozen: FrozenPHTree) -> None:
        query = frozen.query
        for lo, hi in seek_boxes:
            for _ in query(lo, hi):
                pass

    t_frozen_seek, t_learned_seek = _best_group(
        [
            lambda: run_seek(frozen_exact),
            lambda: run_seek(frozen_learned),
        ],
        repeats,
    )

    for query in knn_queries[: min(8, len(knn_queries))]:
        assert frozen_learned.knn(query, 10) == frozen_exact.knn(
            query, 10
        )

    def run_frozen_knn(frozen: FrozenPHTree) -> None:
        knn = frozen.knn
        for query in knn_queries:
            knn(query, 10)

    t_frozen_knn, t_learned_knn = _best_group(
        [
            lambda: run_frozen_knn(frozen_exact),
            lambda: run_frozen_knn(frozen_learned),
        ],
        repeats,
    )
    model_stats = model.stats()

    # -- router balance: fixed z-prefix cuts vs the learned CDF ----------
    # CLUSTER data squeezed into the lowest quarter of every dimension:
    # all coordinates share their top two bits, so every key lands in
    # prefix shard 0 while the learned equi-mass cuts stay balanced.
    from repro.datasets.cluster import generate_cluster
    from repro.learned.router import LearnedZRouter
    from repro.parallel.router import ZShardRouter

    n_shards = 8
    scale_f = (1 << WIDTH) / 4.0
    skew_seen = set()
    skew_zs: List[int] = []
    z_of = (lambda key: _z_interleave(key, WIDTH)) if spec is None \
        else spec.interleave
    for point in generate_cluster(
        n // 2, DIMS, offset=0.25, seed=seed + 3
    ):
        key = tuple(
            min(max(int(v * scale_f), 0), (1 << WIDTH) - 1)
            for v in point
        )
        if key not in skew_seen:
            skew_seen.add(key)
            skew_zs.append(z_of(key))
    skew_zs.sort()
    prefix_router = ZShardRouter(DIMS, WIDTH, n_shards)
    learned_router = LearnedZRouter.from_sorted_zcodes(
        skew_zs, DIMS, WIDTH, n_shards
    )
    ideal = len(skew_zs) / n_shards

    def imbalance(router: Any) -> float:
        counts = [0] * n_shards
        for z in skew_zs:
            counts[router.shard_of_z(z)] += 1
        return max(counts) / ideal

    prefix_imbalance = imbalance(prefix_router)
    learned_imbalance = imbalance(learned_router)

    # -- sharded fan-out: snapshot engine, 1 vs 4 workers ----------------
    from repro.core.serialize import U64ValueCodec
    from repro.parallel import ShardedPHTree

    workers_hi = 4
    expected_many = tree.query_many(boxes)
    with ShardedPHTree.build(
        list(zip(keys, values)),
        dims=DIMS,
        width=WIDTH,
        shards=8,
        workers=1,
        value_codec=U64ValueCodec,
    ) as sharded:
        assert sharded.query_many(boxes) == expected_many
        t_shard_1 = _best(lambda: sharded.query_many(boxes), repeats)
        sharded.set_workers(workers_hi)
        assert sharded.query_many(boxes) == expected_many
        t_shard_hi = _best(lambda: sharded.query_many(boxes), repeats)

    # -- durable store: WAL append throughput + crash recovery -----------
    import shutil
    import tempfile

    from repro.store.engine import DurablePHTree

    store_root = tempfile.mkdtemp(prefix="repro-bench-store-")
    wal_keys = keys[: min(1000, len(keys))]
    try:
        with DurablePHTree.open(
            os.path.join(store_root, "wal"),
            dims=DIMS,
            width=WIDTH,
            shards=8,
            value_codec=U64ValueCodec,
        ) as wal_store:

            def wal_appends() -> None:
                put = wal_store.put
                for i, key in enumerate(wal_keys):
                    put(key, i)

            # Per-op appends: one frame + one fsync each (the durable
            # put path); group commit frames the whole batch into one
            # write + one fsync.
            t_wal_append = _best(wal_appends, repeats)
            all_entries = list(zip(keys, values))
            t_wal_group = _best(
                lambda: wal_store.put_all(all_entries), repeats
            )

        recover_dir = os.path.join(store_root, "recover")
        half = len(keys) // 2
        with DurablePHTree.open(
            recover_dir,
            dims=DIMS,
            width=WIDTH,
            shards=8,
            value_codec=U64ValueCodec,
        ) as seed_store:
            seed_store.put_all(list(zip(keys[:half], values[:half])))
            seed_store.flush()
            seed_store.put_all(list(zip(keys[half:], values[half:])))

        def recover() -> None:
            # Half the entries come back from mmap'd segments, half
            # are replayed from the WAL tail -- the worst-case open.
            DurablePHTree.open(
                recover_dir, value_codec=U64ValueCodec
            ).close()

        t_recover = _best(recover, repeats)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    n_keys = len(keys)
    n_returned = max(returned, 1)
    metrics = {
        "insert_us_per_op": t_insert * 1e6 / n_keys,
        "insert_generic_us_per_op": t_insert_generic * 1e6 / n_keys,
        "delete_us_per_op": t_delete * 1e6 / n_keys,
        "bulk_load_us_per_op": t_bulk * 1e6 / n_keys,
        "point_seq_us_per_op": t_point_seq * 1e6 / n_keys,
        "point_seq_generic_us_per_op": (
            t_point_seq_generic * 1e6 / n_keys
        ),
        "point_batch_us_per_op": t_point_batch * 1e6 / n_keys,
        "point_batch_presorted_us_per_op": (
            t_point_batch_pre * 1e6 / n_keys
        ),
        "range_kernel_us_per_entry": t_range_kernel * 1e6 / n_returned,
        "range_spec_us_per_entry": t_range_spec * 1e6 / n_returned,
        "range_generator_us_per_entry": (
            t_range_generator * 1e6 / n_returned
        ),
        "query_many_us_per_entry": t_query_many * 1e6 / n_returned,
        "knn_us_per_query": t_knn * 1e6 / max(len(knn_queries), 1),
        # Frozen reads: the exact bit-stream descent vs the learned
        # model-seeded bisect over the SAME bytes (one blob, attached
        # twice).  Windows and kNN use the model for the scan start /
        # search seed and fall back to the exact walk past the bound.
        "frozen_point_us_per_op": t_frozen_point * 1e6 / n_keys,
        "learned_frozen_point_us_per_op": (
            t_learned_point * 1e6 / n_keys
        ),
        "frozen_window_us_per_entry": (
            t_frozen_window * 1e6 / n_returned
        ),
        "learned_window_us_per_entry": (
            t_learned_window * 1e6 / n_returned
        ),
        "frozen_knn_us_per_query": (
            t_frozen_knn * 1e6 / max(len(knn_queries), 1)
        ),
        "learned_frozen_knn_us_per_query": (
            t_learned_knn * 1e6 / max(len(knn_queries), 1)
        ),
        "frozen_window_seek_us_per_query": (
            t_frozen_seek * 1e6 / max(len(seek_boxes), 1)
        ),
        "learned_window_seek_us_per_query": (
            t_learned_seek * 1e6 / max(len(seek_boxes), 1)
        ),
        "learned_fit_ms": t_learned_fit * 1e3,
        "speedup_learned_frozen_point": t_frozen_point / t_learned_point,
        "speedup_learned_window_seek": t_frozen_seek / t_learned_seek,
        "speedup_learned_window": t_frozen_window / t_learned_window,
        "speedup_learned_frozen_knn": t_frozen_knn / t_learned_knn,
        # Shard routing balance on prefix-skewed CLUSTER data (keys in
        # the lowest quarter of every dimension): 1.0 is perfect, the
        # shard count is the worst case (everything in one shard).
        "router_prefix_imbalance": prefix_imbalance,
        "router_learned_imbalance": learned_imbalance,
        "speedup_get_many": t_point_seq / t_point_batch,
        "speedup_get_many_presorted": t_point_seq / t_point_batch_pre,
        "speedup_range_iter": t_range_generator / t_range_kernel,
        "speedup_query_many": t_range_kernel / t_query_many,
        # Specialized kernels vs the generic engines they replace
        # (same tree contents, results asserted identical above).
        "speedup_spec_insert": t_insert_generic / t_insert,
        "speedup_spec_point": t_point_seq_generic / t_point_seq,
        "speedup_spec_window": t_range_kernel / t_range_spec,
        "speedup_bulk_load_vs_insert": t_insert / t_bulk,
        "sharded_query_1w_us_per_entry": t_shard_1 * 1e6 / n_returned,
        "sharded_query_4w_us_per_entry": t_shard_hi * 1e6 / n_returned,
        "speedup_sharded_4w": t_shard_1 / t_shard_hi,
        # Arena engine (layout="arena") on the same workloads; the
        # speedup_arena_* records are object-time / arena-time, so 1.0
        # means parity and the acceptance floor is 0.9.
        "insert_arena_us_per_op": t_insert_arena * 1e6 / n_keys,
        "delete_arena_us_per_op": t_delete_arena * 1e6 / n_keys,
        "point_seq_arena_us_per_op": t_point_seq_arena * 1e6 / n_keys,
        "point_batch_arena_us_per_op": (
            t_point_batch_arena * 1e6 / n_keys
        ),
        "range_arena_us_per_entry": t_range_arena * 1e6 / n_returned,
        "freeze_object_ms": t_freeze_object * 1e3,
        "freeze_arena_ms": t_freeze_arena * 1e3,
        "speedup_arena_insert": t_insert / t_insert_arena,
        "speedup_arena_delete": t_delete / t_delete_arena,
        "speedup_arena_point": t_point_seq / t_point_seq_arena,
        "speedup_arena_point_batch": (
            t_point_batch / t_point_batch_arena
        ),
        "speedup_arena_window": t_range_kernel / t_range_arena,
        "speedup_arena_freeze": t_freeze_object / t_freeze_arena,
        # Durable store: the WAL fsync-per-put path vs the group
        # commit, and the cost of crash recovery (mmap segments +
        # replay the WAL tail) per stored entry.
        "store_wal_append_us_per_op": (
            t_wal_append * 1e6 / max(len(wal_keys), 1)
        ),
        "store_wal_group_us_per_op": t_wal_group * 1e6 / n_keys,
        "store_recovery_ms": t_recover * 1e3,
        "store_recovery_us_per_entry": t_recover * 1e6 / n_keys,
        "speedup_store_group_commit": (
            (t_wal_append / max(len(wal_keys), 1))
            / (t_wal_group / n_keys)
        ),
    }

    # -- space: real bytes-per-entry, object vs arena vs packed floor ----
    from repro.memory.report import arena_space_report

    space = {
        name: round(value, 2)
        for name, value in arena_space_report(
            entries, DIMS, WIDTH
        ).items()
    }
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "generated_unix": int(time.time()),
        "scale": scale,
        "config": {
            "dims": DIMS,
            "width": WIDTH,
            "n_keys": n_keys,
            "n_boxes": len(boxes),
            "n_range_entries": returned,
            "n_knn_queries": len(knn_queries),
            "repeats": repeats,
            "seed": seed,
        },
        "environment": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "specialization": {
            "selected": spec is not None,
            "kernel": repr(spec) if spec is not None else "generic",
            "registry_size": _registry_size(),
            "registry_cap": _registry_cap(),
            "note": (
                "per-(k, width) unrolled kernels from "
                "repro.core.specialize; the *_generic and range_kernel "
                "records time the pre-specialization engines on the "
                "same data"
            ),
        },
        "sharded_query": {
            "shards": 8,
            "workers_low": 1,
            "workers_high": workers_hi,
            "cpu_count": os.cpu_count(),
            "t_workers_1_s": round(t_shard_1, 6),
            "t_workers_4_s": round(t_shard_hi, 6),
            "speedup": round(t_shard_1 / t_shard_hi, 4),
            "note": (
                "process-pool fan-out over frozen shard snapshots in "
                "shared memory; the speedup tracks cpu_count -- on a "
                "single-core host it is ~1.0 by construction"
            ),
        },
        "learned_index": dict(
            model_stats,
            fit_ms=round(t_learned_fit * 1e3, 3),
            note=(
                "PHL1 trailer fit at freeze() time over the z-sorted "
                "entry stream (shrinking-cone PLA, per-segment measured "
                "errors); lookups bisect a +-err window around the "
                "model's predicted rank and fall back to the exact "
                "descent when a segment's measured error exceeds "
                "window_cap"
            ),
        ),
        "router_balance": {
            "distribution": "cluster-skew (offset 0.25, scaled to the "
            "lowest quarter of each dimension)",
            "n_keys": len(skew_zs),
            "shards": n_shards,
            "prefix_imbalance": round(prefix_imbalance, 4),
            "learned_imbalance": round(learned_imbalance, 4),
            "learned_cuts": len(learned_router.cuts),
            "note": (
                "max shard population over the ideal n/shards; the "
                "fixed z-prefix router sends every key whose top bits "
                "agree to one shard, the learned CDF router places its "
                "cuts at equi-mass order statistics of the z-stream"
            ),
        },
        "store": {
            "wal_sync_ops": len(wal_keys),
            "group_entries": n_keys,
            "recovery_entries": n_keys,
            "recovery_split": "half flushed segments, half WAL tail",
            "t_recover_s": round(t_recover, 6),
            "note": (
                "DurablePHTree over repro.store: per-put WAL appends "
                "pay one frame write + one fsync; put_all group-"
                "commits the batch in a single write + fsync; "
                "recovery mmap-attaches the committed segments and "
                "replays the WAL tail through per-shard sorted bulk "
                "loads"
            ),
        },
        "space": dict(
            space,
            note=(
                "bytes per entry at dims=3/width=20: the object "
                "engine's deep CPython footprint vs the arena slabs "
                "(capacity includes growth slack, live counts records "
                "only) vs the paper's Section 3.4 bit-stream layout "
                "as the packed floor"
            ),
        ),
        "metrics": {k: round(v, 4) for k, v in metrics.items()},
    }
    if instrument:
        report["instrumentation"] = _instrument_pass(
            tree,
            build,
            batch,
            boxes,
            knn_queries,
            frozen_learned=frozen_learned,
            seek_boxes=seek_boxes,
        )
    return report


def write_report(
    report: Dict[str, Any], path: "str | Path"
) -> Path:
    """Write a trajectory report as pretty-printed JSON."""
    path = Path(path)
    if path.parent != Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-metric-per-line rendering of a report."""
    lines = [
        f"perf trajectory @ scale={report['scale']} "
        f"(n={report['config']['n_keys']})"
    ]
    for name, value in sorted(report["metrics"].items()):
        lines.append(f"  {name:36s} {value:10.3f}")
    space = report.get("space")
    if space:
        lines.append("space (bytes/entry):")
        for name, value in sorted(space.items()):
            if name != "note":
                lines.append(f"  {name:36s} {value:10.2f}")
    instrumentation = report.get("instrumentation")
    if instrumentation:
        lines.append("instrumentation (counts per benchmarked op):")
        for op, counts in sorted(instrumentation.items()):
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(counts.items())
            )
            lines.append(f"  {op:14s} {detail}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run the trajectory and write the JSON report."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.trajectory",
        description="Run the hot-path micro-benchmarks and record the "
        "perf trajectory.",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_core.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "-s",
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="benchmark scale (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="dataset seed"
    )
    parser.add_argument(
        "--instrument",
        action="store_true",
        help="after the timings, re-run each op with repro.obs enabled "
        "and record nodes-visited/slots-scanned per op in the report",
    )
    args = parser.parse_args(argv)
    report = run_trajectory(
        scale=args.scale, seed=args.seed, instrument=args.instrument
    )
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
