"""Correctness tooling: invariant validation, fuzzing, fault injection.

Three pillars (DESIGN.md §10):

- :mod:`repro.check.validate` -- a structural invariant validator that
  walks any tree engine and asserts every paper-level invariant,
- :mod:`repro.check.fuzz` -- a deterministic model-based differential
  fuzzer driving randomized operation sequences against every engine in
  lockstep with a sorted-dict reference model, shrinking failures to a
  minimal paste-able repro,
- :mod:`repro.check.faults` -- fault injection for the parallel stack
  (worker death, publish failures, shared-memory detach errors, slow
  readers) proving reads degrade gracefully and telemetry counts every
  injected fault.

Operable via ``python -m repro.tool check`` (see ``--validate``,
``--fuzz`` and ``--faults``).
"""

from repro.check.fuzz import FuzzConfig, FuzzFailure, replay, run_fuzz
from repro.check.validate import (
    InvariantViolation,
    ValidationReport,
    validate_tree,
)

__all__ = [
    "FuzzConfig",
    "FuzzFailure",
    "InvariantViolation",
    "ValidationReport",
    "replay",
    "run_fuzz",
    "validate_tree",
]
