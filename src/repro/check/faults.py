"""Fault injection for the parallel stack.

Each injector is a context manager planting one infrastructure fault at
a real seam of :mod:`repro.parallel`:

- :func:`publish_failures` -- shared-memory *allocation* fails while a
  shard snapshot is being published (arena exhausted, permission
  denied),
- :func:`unlink_failures` -- *discarding* a superseded segment fails
  (raced unlink, platform reclaim),
- :func:`kill_one_worker` -- a pool worker dies mid-flight (OOM kill),
- :func:`slow_reader` -- a reader camps on a shard's lock, exercising
  writer timeouts (:class:`~repro.core.concurrent.LockTimeout`) and the
  bounded-batching fairness path.

The contract under every fault: reads keep returning *correct* results
(degrading to the live in-process engine) or raise a clean typed error,
and the matching :mod:`repro.obs.probes` counter moves.
:func:`run_fault_drill` drives all four scenarios end-to-end (the
``repro.tool check --faults`` verb) and reports the observed
result/counter for each.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.concurrent import LockTimeout
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt

__all__ = [
    "FaultOutcome",
    "kill_one_worker",
    "publish_failures",
    "run_fault_drill",
    "slow_reader",
    "unlink_failures",
]


# ---------------------------------------------------------------------------
# Injectors
# ---------------------------------------------------------------------------


@contextmanager
def publish_failures(count: int = 1) -> Iterator[Dict[str, int]]:
    """Make the next ``count`` snapshot *publications* fail.

    Patches the ``shared_memory`` module binding inside
    :mod:`repro.parallel.executor` with a proxy whose
    ``SharedMemory(create=True, ...)`` raises :class:`OSError`;
    attach-side calls (no ``create``) pass through untouched.  Worker
    processes import the real module and are unaffected -- exactly the
    parent-side allocation seam.

    Yields a state dict; ``state["remaining"]`` counts down as failures
    are consumed.
    """
    from repro.parallel import executor as executor_mod

    real = executor_mod.shared_memory
    state = {"remaining": count}

    def _shared_memory(*args: Any, **kwargs: Any) -> Any:
        if kwargs.get("create") and state["remaining"] > 0:
            state["remaining"] -= 1
            _recorder.record(
                "fault_injected", fault="publish_failure"
            )
            raise OSError(28, "injected: no space left on device")
        return real.SharedMemory(*args, **kwargs)

    executor_mod.shared_memory = SimpleNamespace(
        SharedMemory=_shared_memory
    )
    try:
        yield state
    finally:
        executor_mod.shared_memory = real


@contextmanager
def unlink_failures(
    pool: Any, count: int = 1
) -> Iterator[Dict[str, Any]]:
    """Make the next ``count`` snapshot-segment *unlinks* fail.

    Wraps ``segment.unlink`` on every currently published snapshot of
    ``pool`` (a :class:`~repro.parallel.executor.SnapshotPool`) so the
    discard path hits its error handler.  On exit the wrappers are
    removed and any segment whose unlink was suppressed is really
    unlinked, so no shared memory leaks out of the test.
    """
    snapshots = [s for s in pool._snapshots if s is not None]
    state: Dict[str, Any] = {"remaining": count, "suppressed": []}
    patched: List[Tuple[Any, Any]] = []
    for snapshot in snapshots:
        segment = snapshot.segment
        original = segment.unlink

        def _unlink(original: Any = original) -> None:
            if state["remaining"] > 0:
                state["remaining"] -= 1
                state["suppressed"].append(original)
                _recorder.record(
                    "fault_injected", fault="unlink_failure"
                )
                raise OSError(13, "injected: unlink denied")
            original()

        segment.unlink = _unlink
        patched.append((segment, original))
    try:
        yield state
    finally:
        for segment, _original in patched:
            segment.__dict__.pop("unlink", None)
        for original in state["suppressed"]:
            try:
                original()
            except FileNotFoundError:
                pass


def kill_one_worker(pool: Any, timeout_s: float = 10.0) -> int:
    """SIGKILL one live worker process of ``pool``'s executor; returns
    the dead pid.  The next fan-out observes a broken pool -- the
    executor layer must convert that into
    :class:`~repro.parallel.errors.SnapshotReadError` and recycle the
    pool.
    """
    executor = pool._pool()  # starts the pool if not yet running
    processes = list(executor._processes.values())
    if not processes:
        # Workers spawn lazily on first submit; force one.
        executor.submit(int).result()
        processes = list(executor._processes.values())
    if not processes:  # pragma: no cover - defensive
        raise RuntimeError("no worker processes to kill")
    victim = processes[0]
    os.kill(victim.pid, signal.SIGKILL)
    _recorder.record(
        "fault_injected", fault="worker_killed", pid=victim.pid
    )
    deadline = time.monotonic() + timeout_s
    while victim.is_alive():
        if time.monotonic() > deadline:  # pragma: no cover
            raise RuntimeError(f"worker {victim.pid} did not die")
        time.sleep(0.01)
    return victim.pid


@contextmanager
def slow_reader(
    sharded: Any, shard: int = 0
) -> Iterator[threading.Event]:
    """Hold shard ``shard``'s read lock from a background thread until
    the context exits (or the yielded event is set).

    While active, writers to that shard block; a writer using a
    ``timeout`` gets a clean :class:`~repro.core.concurrent.LockTimeout`
    instead of hanging.
    """
    lock = sharded._shards[shard].lock
    release = threading.Event()
    acquired = threading.Event()

    def _camp() -> None:
        with lock.read():
            acquired.set()
            release.wait()

    camper = threading.Thread(target=_camp, daemon=True)
    camper.start()
    if not acquired.wait(timeout=10.0):  # pragma: no cover
        raise RuntimeError("slow reader never acquired the lock")
    _recorder.record(
        "fault_injected", fault="slow_reader", shard=shard
    )
    try:
        yield release
    finally:
        release.set()
        camper.join(timeout=10.0)


# ---------------------------------------------------------------------------
# The drill (CLI-facing)
# ---------------------------------------------------------------------------


@dataclass
class FaultOutcome:
    """One drill scenario's verdict."""

    fault: str
    passed: bool
    detail: str
    #: Flight-recorder tail captured right after the scenario ran --
    #: the black box a failing drill gets dumped with.
    events: List[Any] = field(default_factory=list)


def _counter_value(counter: Any) -> float:
    return counter.value


def run_fault_drill(
    dims: int = 2, width: int = 16, entries: int = 256
) -> List[FaultOutcome]:
    """Run every fault class against a live sharded tree with a worker
    pool; returns one :class:`FaultOutcome` per scenario.

    Observability is enabled for the duration (restored afterwards) so
    the per-fault counters can be asserted to move.
    """
    import random

    from repro.parallel.sharded import ShardedPHTree

    rng = random.Random(20140623)
    limit = 1 << width
    data = [
        tuple(rng.randrange(limit) for _ in range(dims))
        for _ in range(entries)
    ]
    box_lo = (0,) * dims
    box_hi = (limit - 1,) * dims
    outcomes: List[FaultOutcome] = []
    obs_before = _rt.enabled
    _rt.enable()
    tree = ShardedPHTree(dims=dims, width=width, shards=4, workers=2)
    try:
        for key in data:
            tree.put(key, None)
        expected = tree._query_live(
            range(tree.n_shards), box_lo, box_hi
        )

        # 1. Publish failure: allocation dies; the read degrades to the
        #    live engine with identical results.
        before = _counter_value(_probes.snapshot_publish_failures)
        with publish_failures(count=1):
            result = tree.query(box_lo, box_hi)
        moved = _counter_value(_probes.snapshot_publish_failures) - before
        outcomes.append(
            FaultOutcome(
                "publish-failure",
                result == expected and moved >= 1,
                f"live fallback correct={result == expected}, "
                f"snapshot_publish_failures +{moved:g}",
                events=_recorder.dump(last=32),
            )
        )

        # 2. Worker death: a broken pool is detected, typed, counted,
        #    recycled -- and the answer is still exactly right.
        tree.query(box_lo, box_hi)  # publish snapshots, start the pool
        pool = tree._snapshot_pool()
        before = _counter_value(_probes.fanout_failures.labels("query"))
        pid = kill_one_worker(pool)
        result = tree.query(box_lo, box_hi)
        moved = (
            _counter_value(_probes.fanout_failures.labels("query"))
            - before
        )
        recovered = tree.query(box_lo, box_hi)  # fresh pool fan-out
        outcomes.append(
            FaultOutcome(
                "worker-death",
                result == expected
                and recovered == expected
                and moved >= 1,
                f"killed pid {pid}; fallback correct="
                f"{result == expected}, recovered pool correct="
                f"{recovered == expected}, fanout_failures +{moved:g}",
                events=_recorder.dump(last=32),
            )
        )

        # 3. Unlink failure: discarding a superseded snapshot fails; the
        #    refresh survives, the error is counted.
        tree.put(data[0], None)  # bump a generation: stale snapshot
        expected = tree._query_live(
            range(tree.n_shards), box_lo, box_hi
        )
        before = _counter_value(_probes.snapshot_discard_errors)
        with unlink_failures(tree._snapshot_pool(), count=1):
            tree.refresh_snapshots()
        moved = _counter_value(_probes.snapshot_discard_errors) - before
        result = tree.query(box_lo, box_hi)
        outcomes.append(
            FaultOutcome(
                "unlink-failure",
                result == expected and moved >= 1,
                f"refresh survived, results correct="
                f"{result == expected}, "
                f"snapshot_discard_errors +{moved:g}",
                events=_recorder.dump(last=32),
            )
        )

        # 4. Slow reader: a camped read lock; a bounded writer times out
        #    cleanly (and is counted) instead of hanging.
        before = _counter_value(_probes.lock_timeouts.labels("write"))
        timed_out = False
        with slow_reader(tree, shard=0):
            try:
                with tree._shards[0].lock.write(timeout=0.05):
                    pass  # pragma: no cover - reader holds the lock
            except LockTimeout:
                timed_out = True
        moved = (
            _counter_value(_probes.lock_timeouts.labels("write"))
            - before
        )
        # After the reader leaves, the same write must succeed.
        with tree._shards[0].lock.write(timeout=1.0):
            pass
        outcomes.append(
            FaultOutcome(
                "lock-timeout",
                timed_out and moved >= 1,
                f"writer timed out cleanly={timed_out}, "
                f"lock_timeouts +{moved:g}, lock usable afterwards",
                events=_recorder.dump(last=32),
            )
        )
        return outcomes
    finally:
        tree.close()
        if obs_before:
            _rt.enable()
        else:
            _rt.disable()
