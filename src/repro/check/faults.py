"""Fault injection for the parallel stack.

Each injector is a context manager planting one infrastructure fault at
a real seam of :mod:`repro.parallel`:

- :func:`publish_failures` -- shared-memory *allocation* fails while a
  shard snapshot is being published (arena exhausted, permission
  denied),
- :func:`unlink_failures` -- *discarding* a superseded segment fails
  (raced unlink, platform reclaim),
- :func:`kill_one_worker` -- a pool worker dies mid-flight (OOM kill),
- :func:`slow_reader` -- a reader camps on a shard's lock, exercising
  writer timeouts (:class:`~repro.core.concurrent.LockTimeout`) and the
  bounded-batching fairness path.

The durable store adds the disk fault class (``disk-*`` kinds):

- ``disk-flush-kill`` / ``disk-compact-kill`` -- a driver subprocess
  running a deterministic workload is SIGKILLed at a seeded byte offset
  *inside* the flush / compaction I/O (armed through
  :mod:`repro.store.io`'s ``REPRO_STORE_CRASH``); reopening the
  directory must recover a validator-green store whose contents equal
  the workload oracle exactly,
- ``disk-torn-wal`` -- the WAL tail is truncated at a seeded offset and
  a byte is flipped; recovery must land on a clean op-stream prefix.

The contract under every fault: reads keep returning *correct* results
(degrading to the live in-process engine) or raise a clean typed error,
and the matching :mod:`repro.obs.probes` counter moves; after a disk
fault, recovery restores exactly the durable contents.
:func:`run_fault_drill` drives every scenario end-to-end (the
``repro.tool check --faults`` verb) and reports the observed
result/counter for each; ``kinds`` selects a subset.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.concurrent import LockTimeout
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt

__all__ = [
    "DISK_FAULTS",
    "FaultOutcome",
    "PARALLEL_FAULTS",
    "kill_one_worker",
    "publish_failures",
    "run_fault_drill",
    "slow_reader",
    "unlink_failures",
]

#: Drill scenarios against the live parallel stack.
PARALLEL_FAULTS = (
    "publish-failure",
    "worker-death",
    "unlink-failure",
    "lock-timeout",
)

#: Drill scenarios against the durable store's crash contract.
DISK_FAULTS = (
    "disk-flush-kill",
    "disk-compact-kill",
    "disk-torn-wal",
)


# ---------------------------------------------------------------------------
# Injectors
# ---------------------------------------------------------------------------


@contextmanager
def publish_failures(count: int = 1) -> Iterator[Dict[str, int]]:
    """Make the next ``count`` snapshot *publications* fail.

    Patches the ``shared_memory`` module binding inside
    :mod:`repro.parallel.executor` with a proxy whose
    ``SharedMemory(create=True, ...)`` raises :class:`OSError`;
    attach-side calls (no ``create``) pass through untouched.  Worker
    processes import the real module and are unaffected -- exactly the
    parent-side allocation seam.

    Yields a state dict; ``state["remaining"]`` counts down as failures
    are consumed.
    """
    from repro.parallel import executor as executor_mod

    real = executor_mod.shared_memory
    state = {"remaining": count}

    def _shared_memory(*args: Any, **kwargs: Any) -> Any:
        if kwargs.get("create") and state["remaining"] > 0:
            state["remaining"] -= 1
            _recorder.record(
                "fault_injected", fault="publish_failure"
            )
            raise OSError(28, "injected: no space left on device")
        return real.SharedMemory(*args, **kwargs)

    executor_mod.shared_memory = SimpleNamespace(
        SharedMemory=_shared_memory
    )
    try:
        yield state
    finally:
        executor_mod.shared_memory = real


@contextmanager
def unlink_failures(
    pool: Any, count: int = 1
) -> Iterator[Dict[str, Any]]:
    """Make the next ``count`` snapshot-segment *unlinks* fail.

    Wraps ``segment.unlink`` on every currently published snapshot of
    ``pool`` (a :class:`~repro.parallel.executor.SnapshotPool`) so the
    discard path hits its error handler.  On exit the wrappers are
    removed and any segment whose unlink was suppressed is really
    unlinked, so no shared memory leaks out of the test.
    """
    snapshots = [s for s in pool._snapshots if s is not None]
    state: Dict[str, Any] = {"remaining": count, "suppressed": []}
    patched: List[Tuple[Any, Any]] = []
    for snapshot in snapshots:
        segment = snapshot.segment
        original = segment.unlink

        def _unlink(original: Any = original) -> None:
            if state["remaining"] > 0:
                state["remaining"] -= 1
                state["suppressed"].append(original)
                _recorder.record(
                    "fault_injected", fault="unlink_failure"
                )
                raise OSError(13, "injected: unlink denied")
            original()

        segment.unlink = _unlink
        patched.append((segment, original))
    try:
        yield state
    finally:
        for segment, _original in patched:
            segment.__dict__.pop("unlink", None)
        for original in state["suppressed"]:
            try:
                original()
            except FileNotFoundError:
                pass


def kill_one_worker(pool: Any, timeout_s: float = 10.0) -> int:
    """SIGKILL one live worker process of ``pool``'s executor; returns
    the dead pid.  The next fan-out observes a broken pool -- the
    executor layer must convert that into
    :class:`~repro.parallel.errors.SnapshotReadError` and recycle the
    pool.
    """
    executor = pool._pool()  # starts the pool if not yet running
    processes = list(executor._processes.values())
    if not processes:
        # Workers spawn lazily on first submit; force one.
        executor.submit(int).result()
        processes = list(executor._processes.values())
    if not processes:  # pragma: no cover - defensive
        raise RuntimeError("no worker processes to kill")
    victim = processes[0]
    os.kill(victim.pid, signal.SIGKILL)
    _recorder.record(
        "fault_injected", fault="worker_killed", pid=victim.pid
    )
    deadline = time.monotonic() + timeout_s
    while victim.is_alive():
        if time.monotonic() > deadline:  # pragma: no cover
            raise RuntimeError(f"worker {victim.pid} did not die")
        time.sleep(0.01)
    return victim.pid


@contextmanager
def slow_reader(
    sharded: Any, shard: int = 0
) -> Iterator[threading.Event]:
    """Hold shard ``shard``'s read lock from a background thread until
    the context exits (or the yielded event is set).

    While active, writers to that shard block; a writer using a
    ``timeout`` gets a clean :class:`~repro.core.concurrent.LockTimeout`
    instead of hanging.
    """
    lock = sharded._shards[shard].lock
    release = threading.Event()
    acquired = threading.Event()

    def _camp() -> None:
        with lock.read():
            acquired.set()
            release.wait()

    camper = threading.Thread(target=_camp, daemon=True)
    camper.start()
    if not acquired.wait(timeout=10.0):  # pragma: no cover
        raise RuntimeError("slow reader never acquired the lock")
    _recorder.record(
        "fault_injected", fault="slow_reader", shard=shard
    )
    try:
        yield release
    finally:
        release.set()
        camper.join(timeout=10.0)


# ---------------------------------------------------------------------------
# The drill (CLI-facing)
# ---------------------------------------------------------------------------


@dataclass
class FaultOutcome:
    """One drill scenario's verdict."""

    fault: str
    passed: bool
    detail: str
    #: Flight-recorder tail captured right after the scenario ran --
    #: the black box a failing drill gets dumped with.
    events: List[Any] = field(default_factory=list)


def _counter_value(counter: Any) -> float:
    return counter.value


def run_fault_drill(
    dims: int = 2,
    width: int = 16,
    entries: int = 256,
    kinds: "List[str] | None" = None,
    seed: int = 20140623,
) -> List[FaultOutcome]:
    """Run the selected fault scenarios; returns one
    :class:`FaultOutcome` per scenario, in canonical order
    (``PARALLEL_FAULTS`` then ``DISK_FAULTS``; all of them when
    ``kinds`` is None).

    Observability is enabled for the duration (restored afterwards) so
    the per-fault counters can be asserted to move.
    """
    selected = (
        list(PARALLEL_FAULTS + DISK_FAULTS)
        if kinds is None
        else list(kinds)
    )
    unknown = set(selected) - set(PARALLEL_FAULTS + DISK_FAULTS)
    if unknown:
        raise ValueError(
            f"unknown fault kind(s) {sorted(unknown)}; choose from "
            f"{PARALLEL_FAULTS + DISK_FAULTS}"
        )
    outcomes: List[FaultOutcome] = []
    wanted = set(selected)
    if wanted.intersection(PARALLEL_FAULTS):
        outcomes.extend(
            _run_parallel_drills(dims, width, entries, wanted)
        )
    if "disk-flush-kill" in wanted:
        outcomes.append(
            _disk_kill_drill("flush", dims, width, entries, seed)
        )
    if "disk-compact-kill" in wanted:
        outcomes.append(
            _disk_kill_drill("compact", dims, width, entries, seed)
        )
    if "disk-torn-wal" in wanted:
        outcomes.append(_torn_wal_drill(dims, width, entries, seed))
    return outcomes


def _run_parallel_drills(
    dims: int, width: int, entries: int, wanted: Any
) -> List[FaultOutcome]:
    """The four parallel-stack scenarios (shared live tree + pool)."""
    import random

    from repro.parallel.sharded import ShardedPHTree

    rng = random.Random(20140623)
    limit = 1 << width
    data = [
        tuple(rng.randrange(limit) for _ in range(dims))
        for _ in range(entries)
    ]
    box_lo = (0,) * dims
    box_hi = (limit - 1,) * dims
    outcomes: List[FaultOutcome] = []
    obs_before = _rt.enabled
    _rt.enable()
    tree = ShardedPHTree(dims=dims, width=width, shards=4, workers=2)
    try:
        for key in data:
            tree.put(key, None)
        expected = tree._query_live(
            range(tree.n_shards), box_lo, box_hi
        )

        # 1. Publish failure: allocation dies; the read degrades to the
        #    live engine with identical results.
        if "publish-failure" in wanted:
            before = _counter_value(_probes.snapshot_publish_failures)
            with publish_failures(count=1):
                result = tree.query(box_lo, box_hi)
            moved = (
                _counter_value(_probes.snapshot_publish_failures) - before
            )
            outcomes.append(
                FaultOutcome(
                    "publish-failure",
                    result == expected and moved >= 1,
                    f"live fallback correct={result == expected}, "
                    f"snapshot_publish_failures +{moved:g}",
                    events=_recorder.dump(last=32),
                )
            )

        # 2. Worker death: a broken pool is detected, typed, counted,
        #    recycled -- and the answer is still exactly right.
        if "worker-death" in wanted:
            tree.query(box_lo, box_hi)  # publish snapshots, start pool
            pool = tree._snapshot_pool()
            before = _counter_value(
                _probes.fanout_failures.labels("query")
            )
            pid = kill_one_worker(pool)
            result = tree.query(box_lo, box_hi)
            moved = (
                _counter_value(_probes.fanout_failures.labels("query"))
                - before
            )
            recovered = tree.query(box_lo, box_hi)  # fresh pool fan-out
            outcomes.append(
                FaultOutcome(
                    "worker-death",
                    result == expected
                    and recovered == expected
                    and moved >= 1,
                    f"killed pid {pid}; fallback correct="
                    f"{result == expected}, recovered pool correct="
                    f"{recovered == expected}, fanout_failures +{moved:g}",
                    events=_recorder.dump(last=32),
                )
            )

        # 3. Unlink failure: discarding a superseded snapshot fails; the
        #    refresh survives, the error is counted.
        if "unlink-failure" in wanted:
            tree.put(data[0], None)  # bump a generation: stale snapshot
            expected = tree._query_live(
                range(tree.n_shards), box_lo, box_hi
            )
            before = _counter_value(_probes.snapshot_discard_errors)
            with unlink_failures(tree._snapshot_pool(), count=1):
                tree.refresh_snapshots()
            moved = (
                _counter_value(_probes.snapshot_discard_errors) - before
            )
            result = tree.query(box_lo, box_hi)
            outcomes.append(
                FaultOutcome(
                    "unlink-failure",
                    result == expected and moved >= 1,
                    f"refresh survived, results correct="
                    f"{result == expected}, "
                    f"snapshot_discard_errors +{moved:g}",
                    events=_recorder.dump(last=32),
                )
            )

        # 4. Slow reader: a camped read lock; a bounded writer times out
        #    cleanly (and is counted) instead of hanging.
        if "lock-timeout" in wanted:
            before = _counter_value(_probes.lock_timeouts.labels("write"))
            timed_out = False
            with slow_reader(tree, shard=0):
                try:
                    with tree._shards[0].lock.write(timeout=0.05):
                        pass  # pragma: no cover - reader holds the lock
                except LockTimeout:
                    timed_out = True
            moved = (
                _counter_value(_probes.lock_timeouts.labels("write"))
                - before
            )
            # After the reader leaves, the same write must succeed.
            with tree._shards[0].lock.write(timeout=1.0):
                pass
            outcomes.append(
                FaultOutcome(
                    "lock-timeout",
                    timed_out and moved >= 1,
                    f"writer timed out cleanly={timed_out}, "
                    f"lock_timeouts +{moved:g}, lock usable afterwards",
                    events=_recorder.dump(last=32),
                )
            )
        return outcomes
    finally:
        tree.close()
        if obs_before:
            _rt.enable()
        else:
            _rt.disable()


# ---------------------------------------------------------------------------
# Disk drills (durable store crash contract)
# ---------------------------------------------------------------------------


def _learned_segments_ok(store: Any) -> bool:
    """Every non-empty frozen segment of a learned store must carry an
    attached PHL1 model after recovery."""
    for seg in store.segments:
        if seg.frozen is not None and len(seg.frozen):
            if seg.frozen.learned_index is None:
                return False
    return True


def _disk_kill_drill(
    scenario: str, dims: int, width: int, entries: int, seed: int
) -> FaultOutcome:
    """SIGKILL a driver subprocess at a seeded byte offset inside the
    ``scenario`` phase ("flush" or "compact"), then reopen and check
    recovery against the workload oracle.

    The offset is drawn uniformly over the phase's *real* charged I/O
    volume, measured by replaying the identical deterministic workload
    in-process first -- so every byte of the phase is a reachable crash
    point across seeds.
    """
    import random
    import subprocess
    import sys
    import tempfile

    import repro
    from repro.check.validate import validate_tree
    from repro.core.serialize import U64ValueCodec
    from repro.store import io as store_io
    from repro.store.drill import (
        build_ops,
        expected_state,
        run_scenario,
    )
    from repro.store.engine import DurablePHTree

    fault = f"disk-{scenario}-kill"
    with tempfile.TemporaryDirectory(
        prefix="repro-fault-disk-"
    ) as tmp:
        # 1. Measure the phase's charged I/O volume on the identical
        #    workload (no crash armed).
        with store_io.measure() as totals:
            probe = DurablePHTree.open(
                os.path.join(tmp, "measure"),
                dims=dims,
                width=width,
                shards=4,
                value_codec=U64ValueCodec,
                learned=True,
            )
            run_scenario(
                probe, scenario, build_ops(dims, width, entries, seed)
            )
        volume = totals.get(scenario, 0)
        offset = random.Random(f"{fault}:{seed}").randrange(
            max(1, volume)
        )

        # 2. Re-run in a subprocess armed to SIGKILL itself at that
        #    offset inside the target phase.
        child_db = os.path.join(tmp, "db")
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        env[store_io.CRASH_ENV] = f"{scenario}:{offset}:kill"
        extra = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + extra if extra else src_root
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.store.drill",
                child_db,
                "--scenario",
                scenario,
                "--dims",
                str(dims),
                "--width",
                str(width),
                "--entries",
                str(entries),
                "--seed",
                str(seed),
                "--learned",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        killed = proc.returncode == -signal.SIGKILL
        _recorder.record(
            "fault_injected",
            fault=fault.replace("-", "_"),
            offset=offset,
            volume=volume,
            returncode=proc.returncode,
        )

        # 3. Recovery: reopen must yield a validator-green store whose
        #    contents equal the oracle exactly (every op in these
        #    scenarios was WAL-durable before the final phase began).
        valid = True
        problem = ""
        state_ok = False
        learned_ok = False
        replayed = -1
        try:
            recovered = DurablePHTree.open(
                child_db, value_codec=U64ValueCodec
            )
        except Exception as exc:  # noqa: BLE001 - drill verdict
            valid = False
            problem = f"reopen failed: {exc!r}"
        else:
            try:
                try:
                    validate_tree(recovered)
                except Exception as exc:  # noqa: BLE001
                    valid = False
                    problem = f"validator red: {exc!r}"
                oracle = expected_state(dims, width, entries, seed)
                state_ok = dict(recovered.items()) == oracle
                learned_ok = _learned_segments_ok(recovered)
                replayed = recovered.recovery_info.get("replayed", -1)
            finally:
                recovered.close()
        passed = killed and valid and state_ok and learned_ok
        detail = (
            f"SIGKILL at offset {offset}/{volume} in {scenario!r}: "
            f"child killed={killed}, validator green={valid}, "
            f"contents==oracle={state_ok}, learned attached="
            f"{learned_ok}, wal replayed={replayed}"
        )
        if problem:
            detail += f"; {problem}"
        return FaultOutcome(
            fault, passed, detail, events=_recorder.dump(last=32)
        )


def _torn_wal_drill(
    dims: int, width: int, entries: int, seed: int
) -> FaultOutcome:
    """Corrupt the WAL tail -- truncate at a seeded offset, then (in a
    second identically built store) flip a bit inside a CRC-covered
    region -- and require recovery to land on a clean op-stream prefix
    at or past the flushed half, validator green both times.
    """
    import random
    import tempfile

    from repro.check.validate import validate_tree
    from repro.core.serialize import U64ValueCodec
    from repro.store.drill import build_ops, prefix_states
    from repro.store.engine import DurablePHTree
    from repro.store.manifest import load_manifest

    ops = build_ops(dims, width, entries, seed)
    half = len(ops) // 2
    states = prefix_states(dims, width, entries, seed)
    rng = random.Random(f"disk-torn-wal:{seed}")

    def _build(path: str) -> str:
        """First half flushed into segments, second half WAL-only;
        returns the live WAL path."""
        store = DurablePHTree.open(
            path,
            dims=dims,
            width=width,
            shards=4,
            value_codec=U64ValueCodec,
            learned=True,
        )
        for i, (op, key, value) in enumerate(ops):
            if op == "put":
                store.put(key, value)
            else:
                store.remove(key, None)
            if i == half - 1:
                store.flush()
        store.close()
        manifest = load_manifest(path)
        assert manifest is not None
        return os.path.join(path, manifest.wal)

    def _check(path: str) -> Tuple[bool, str]:
        recovered = DurablePHTree.open(
            path, value_codec=U64ValueCodec
        )
        try:
            try:
                validate_tree(recovered)
            except Exception as exc:  # noqa: BLE001 - drill verdict
                return False, f"validator red: {exc!r}"
            if not _learned_segments_ok(recovered):
                return False, "learned trailer missing"
            contents = dict(recovered.items())
            torn = recovered.recovery_info.get("torn_bytes", 0)
            for i in range(half, len(states)):
                if contents == states[i]:
                    return True, (
                        f"prefix {i}/{len(ops)} ops, "
                        f"torn_bytes={torn}"
                    )
            return False, (
                f"contents match no op prefix >= {half} "
                f"(torn_bytes={torn})"
            )
        finally:
            recovered.close()

    results: List[str] = []
    passed = True
    with tempfile.TemporaryDirectory(
        prefix="repro-fault-torn-"
    ) as tmp:
        # Case A: truncate the WAL mid-stream (torn final write).
        db = os.path.join(tmp, "truncate")
        wal_path = _build(db)
        size = os.path.getsize(wal_path)
        cut = rng.randrange(1, max(2, size))
        with open(wal_path, "r+b") as fh:
            fh.truncate(cut)
        _recorder.record(
            "fault_injected",
            fault="torn_wal_truncate",
            offset=cut,
            size=size,
        )
        ok, note = _check(db)
        passed = passed and ok
        results.append(f"truncate@{cut}/{size}: {note}")

        # Case B: flip one bit inside a CRC-covered byte (silent
        # corruption); recovery must stop at the damaged record.
        db = os.path.join(tmp, "bitflip")
        wal_path = _build(db)
        blob = bytearray(open(wal_path, "rb").read())
        pos = rng.randrange(len(blob))
        blob[pos] ^= 0x40
        with open(wal_path, "wb") as fh:
            fh.write(bytes(blob))
        _recorder.record(
            "fault_injected",
            fault="torn_wal_bitflip",
            offset=pos,
            size=len(blob),
        )
        ok, note = _check(db)
        passed = passed and ok
        results.append(f"bitflip@{pos}/{len(blob)}: {note}")

    return FaultOutcome(
        "disk-torn-wal",
        passed,
        "; ".join(results),
        events=_recorder.dump(last=32),
    )
