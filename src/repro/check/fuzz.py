"""Deterministic model-based differential fuzzer for every tree engine.

One :func:`run_fuzz` call drives a single randomized operation sequence
(put / get / contains / remove / update_key / query / query_approx /
get_many / knn / query_many / contains_many / knn_burst / bulk_load)
simultaneously against

- a generic :class:`~repro.core.phtree.PHTree` (``specialize=False``),
- a specialized :class:`~repro.core.phtree.PHTree` (the per-(k, width)
  generated kernels),
- an arena :class:`~repro.core.arena_tree.ArenaPHTree`
  (``layout="arena"``: the packed flat-buffer engine, running the same
  ops in lockstep against the object engines),
- a :class:`~repro.parallel.sharded.ShardedPHTree` (live, lock-per-shard
  engine), and with ``FuzzConfig.learned`` a second sharded tree routed
  by learned equi-mass z-cuts
  (:class:`~repro.learned.router.LearnedZRouter`) instead of fixed
  z-prefix splits,

and a :class:`~repro.check.model.ReferenceModel` (a plain dict + brute
force).  Every op's result -- value, result *order*, or raised exception
type -- is diffed against the model; every ``validate_every`` ops each
tree additionally passes the full structural validator of
:mod:`repro.check.validate` (frozen byte-stream round-trip included).
The sequence alternates the :mod:`repro.obs.runtime` enabled flag so
both engine dispatches (specialized fast paths and instrumented generic
twins) are exercised in the same run.

Everything is derived from ``FuzzConfig.seed``: the op sequence is
generated *upfront* as concrete tuples, so a failing run shrinks (greedy
delta debugging) to a minimal sequence and prints a paste-able repro
that replays it via :func:`replay`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.model import ReferenceModel
from repro.check.validate import InvariantViolation, validate_tree
from repro.core.bulk import bulk_load
from repro.core.phtree import PHTree
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt
from repro.parallel.sharded import ShardedPHTree

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzReport", "replay", "run_fuzz"]

Key = Tuple[int, ...]
Op = Tuple[Any, ...]

#: Flip the observability flag every this many ops in "alternate" mode
#: (odd on purpose, so the flips drift across the op-kind pattern).
_OBS_FLIP_PERIOD = 97


@dataclass
class FuzzConfig:
    """One fuzz run's shape.  Everything is deterministic in ``seed``."""

    dims: int = 2
    width: int = 16
    ops: int = 2000
    seed: int = 0
    #: Key distribution: "cube" (uniform), "cluster" (Gaussian blobs
    #: around seed-derived centres -- the paper's CLUSTER dataset
    #: shape), or "adversarial" (duplicate-heavy z-streams: most keys
    #: collapse onto one tight blob plus a full-range diagonal, the
    #: worst case for learned z-rank models -- dense packs of nearly
    #: identical z-codes next to huge gaps).
    distribution: str = "cube"
    shards: int = 4
    #: Run the full structural validator every N ops (and at the end).
    validate_every: int = 1000
    #: "alternate" flips obs.runtime every _OBS_FLIP_PERIOD ops;
    #: "on"/"off" pin it.
    obs_mode: str = "alternate"
    #: Soft cap on live model size; beyond it the generator biases
    #: towards removals so the brute-force oracle stays fast.
    max_keys: int = 1000
    shrink: bool = True
    #: Run the learned engines in lockstep too: adds a
    #: ``router="learned"`` sharded subject (equi-mass z-cuts instead
    #: of fixed z-prefix splits; must stay op-for-op identical), on top
    #: of the learned-frozen lockstep every deep validation already
    #: performs.
    learned: bool = False
    #: Add a :class:`~repro.store.engine.DurablePHTree` subject backed
    #: by a temporary directory, and interleave random ``flush()`` /
    #: ``compact()`` / close-and-reopen cycles into the op stream; each
    #: reopen immediately diffs the recovered contents against the
    #: reference model.  With ``learned`` the store also persists
    #: ``PHL1`` trailers in its segment files.
    durable: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.dims <= 16:
            raise ValueError(f"dims must be in [1, 16], got {self.dims}")
        if not 8 <= self.width <= 64:
            raise ValueError(
                f"width must be in [8, 64], got {self.width}"
            )
        if self.distribution not in ("cube", "cluster", "adversarial"):
            raise ValueError(
                f"distribution must be 'cube', 'cluster' or "
                f"'adversarial', got {self.distribution!r}"
            )
        if self.obs_mode not in ("alternate", "on", "off"):
            raise ValueError(
                f"obs_mode must be 'alternate', 'on' or 'off', "
                f"got {self.obs_mode!r}"
            )
        if self.ops < 1:
            raise ValueError(f"ops must be >= 1, got {self.ops}")
        if self.validate_every < 1:
            raise ValueError(
                f"validate_every must be >= 1, got {self.validate_every}"
            )


@dataclass
class FuzzReport:
    """Statistics from one clean fuzz run."""

    config: FuzzConfig
    ops_run: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)
    validations: int = 0
    final_size: int = 0


class FuzzFailure(AssertionError):
    """A divergence between an engine and the reference model (or an
    invariant violation), carrying the shrunk repro sequence."""

    def __init__(
        self,
        config: FuzzConfig,
        ops: List[Op],
        index: int,
        subject: str,
        message: str,
        events: Optional[List[Any]] = None,
    ) -> None:
        self.config = config
        self.ops = ops
        self.index = index
        self.subject = subject
        self.reason = message
        #: Flight-recorder tail captured at the moment of divergence.
        self.events = list(events or [])
        tail = (
            f"\n\n{_recorder.render_events(self.events)}"
            if self.events
            else ""
        )
        super().__init__(
            f"[{subject}] op {index} {ops[index] if ops else '?'}: "
            f"{message}\n\nminimal repro "
            f"({len(ops)} op(s)):\n\n{self.repro()}{tail}"
        )

    def repro(self) -> str:
        """A paste-able script replaying the (shrunk) failure."""
        ops_literal = "[\n" + "".join(
            f"    {op!r},\n" for op in self.ops
        ) + "]"
        return (
            "from repro.check.fuzz import FuzzConfig, replay\n"
            f"ops = {ops_literal}\n"
            f"replay(ops, FuzzConfig(dims={self.config.dims}, "
            f"width={self.config.width}, seed={self.config.seed}, "
            f"shards={self.config.shards}, "
            f"distribution={self.config.distribution!r}, "
            f"learned={self.config.learned}, "
            f"durable={self.config.durable}, "
            f"obs_mode={self.config.obs_mode!r}))\n"
        )


class _Divergence(Exception):
    """Internal: one executed sequence failed at ``index``."""

    def __init__(self, index: int, subject: str, message: str) -> None:
        self.index = index
        self.subject = subject
        self.message = message
        #: Black-box tail: what the process was doing just before.
        self.events = _recorder.dump(last=24)
        super().__init__(message)


# ---------------------------------------------------------------------------
# Sequence generation
# ---------------------------------------------------------------------------


def generate_ops(config: FuzzConfig) -> List[Op]:
    """The fully concrete op sequence for ``config`` (pure in seed)."""
    rng = random.Random(config.seed)
    limit = 1 << config.width
    dims = config.dims

    if config.distribution == "cluster":
        centres = [
            tuple(rng.randrange(limit) for _ in range(dims))
            for _ in range(8)
        ]
        spread = max(2, limit >> 6)

        def random_key() -> Key:
            centre = centres[rng.randrange(len(centres))]
            return tuple(
                min(limit - 1, max(0, c + rng.randint(-spread, spread)))
                for c in centre
            )

    elif config.distribution == "adversarial":
        # Duplicate-heavy z-stream: 70% of draws collapse onto one
        # tight blob (long shared z-prefixes, ranks packed solid), 15%
        # sit on the main diagonal (z-codes spanning the full range
        # with huge gaps), the rest are uniform noise.  The blob keeps
        # re-drawing the *same* keys, so the op stream is also heavy
        # with duplicate puts/removes over identical z-codes.
        blob = tuple(rng.randrange(limit) for _ in range(dims))

        def random_key() -> Key:
            draw = rng.random()
            if draw < 0.7:
                return tuple(
                    min(limit - 1, max(0, c + rng.randint(-2, 2)))
                    for c in blob
                )
            if draw < 0.85:
                v = rng.randrange(limit)
                return (v,) * dims
            return tuple(rng.randrange(limit) for _ in range(dims))

    else:

        def random_key() -> Key:
            return tuple(rng.randrange(limit) for _ in range(dims))

    # Scratch model tracking which keys exist at each point of the
    # sequence, so the generator can aim ops at live keys.
    scratch = ReferenceModel(dims, config.width)

    def some_key(bias_present: float) -> Key:
        if scratch.data and rng.random() < bias_present:
            key = scratch.random_present_key(rng)
            assert key is not None
            return key
        return random_key()

    def random_box() -> Tuple[Key, Key]:
        if scratch.data and rng.random() < 0.6:
            # A window around a live key: guaranteed-nonempty-ish.
            anchor = scratch.random_present_key(rng)
            assert anchor is not None
            radius = max(1, limit >> rng.randrange(1, config.width))
            lo = tuple(max(0, a - radius) for a in anchor)
            hi = tuple(min(limit - 1, a + radius) for a in anchor)
            return lo, hi
        a, b = random_key(), random_key()
        if rng.random() < 0.05:
            return a, b  # possibly inverted: the empty-box contract
        return (
            tuple(min(x, y) for x, y in zip(a, b)),
            tuple(max(x, y) for x, y in zip(a, b)),
        )

    kinds = (
        ["put"] * 30
        + ["get"] * 10
        + ["contains"] * 5
        + ["remove"] * 12
        + ["update_key"] * 8
        + ["query"] * 8
        + ["query_approx"] * 4
        + ["get_many"] * 5
        + ["knn"] * 5
        + ["query_many"] * 4
        + ["contains_many"] * 3
        + ["knn_burst"] * 2
        + ["bulk_load"] * 1
    )
    if config.durable:
        # Persistence lifecycle ops: flushes dominate (the common
        # background event), reopens force full recovery mid-stream,
        # compactions exercise the merge path.
        kinds = kinds + ["d_flush"] * 3 + ["d_reopen"] * 2 + ["d_compact"]
    ops: List[Op] = []
    value_counter = 0
    for _ in range(config.ops):
        if len(scratch.data) >= config.max_keys:
            kind = "remove"
        else:
            kind = kinds[rng.randrange(len(kinds))]
        if kind == "put":
            key = some_key(0.15)  # some updates, mostly inserts
            ops.append(("put", key, value_counter))
            scratch.put(key, value_counter)
            value_counter += 1
        elif kind == "get":
            ops.append(("get", some_key(0.6)))
        elif kind == "contains":
            ops.append(("contains", some_key(0.5)))
        elif kind == "remove":
            key = some_key(0.85)  # mostly hits, some KeyError probes
            ops.append(("remove", key))
            scratch.data.pop(key, None)
        elif kind == "update_key":
            old = some_key(0.85)
            new = some_key(0.1)  # occasionally an occupied target
            ops.append(("update_key", old, new))
            try:
                scratch.update_key(old, new)
            except (KeyError, ValueError):
                pass
        elif kind == "query":
            lo, hi = random_box()
            ops.append(("query", lo, hi))
        elif kind == "query_approx":
            lo, hi = random_box()
            ops.append(
                ("query_approx", lo, hi,
                 rng.randrange(0, max(1, config.width // 2)))
            )
        elif kind == "get_many":
            batch = [some_key(0.5) for _ in range(rng.randrange(2, 17))]
            ops.append(("get_many", tuple(batch)))
        elif kind == "knn":
            ops.append(("knn", some_key(0.3), rng.randrange(1, 9)))
        elif kind == "query_many":
            boxes = tuple(random_box() for _ in range(rng.randrange(2, 9)))
            ops.append(("query_many", boxes))
        elif kind == "contains_many":
            batch = [some_key(0.5) for _ in range(rng.randrange(2, 17))]
            ops.append(("contains_many", tuple(batch)))
        elif kind == "knn_burst":
            burst = tuple(
                (some_key(0.3), rng.randrange(1, 9))
                for _ in range(rng.randrange(2, 6))
            )
            ops.append(("knn_burst", burst))
        elif kind in ("d_flush", "d_compact", "d_reopen"):
            ops.append((kind,))
        else:  # bulk_load: rebuild every engine from scratch + a batch
            batch = tuple(
                (random_key(), value_counter + i)
                for i in range(rng.randrange(1, 33))
            )
            value_counter += len(batch)
            ops.append(("bulk_load", batch))
            for key, value in batch:
                scratch.put(key, value)
    return ops


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

_RAISED = "raised"
_OK = "ok"


def _outcome(callable_, *args: Any) -> Tuple[str, Any]:
    """Run one op; normalise to (kind, payload) for diffing."""
    try:
        return _OK, callable_(*args)
    except (KeyError, ValueError) as exc:
        return _RAISED, type(exc).__name__


class _DurableEnv:
    """The fuzzer's durable subject: a :class:`DurablePHTree` over a
    temporary directory, with ``bulk_load`` modelled as wipe-and-reload
    into a fresh store and ``reopen()`` as full crash-free recovery.

    Reads and mutations delegate to the current store, so
    :func:`_apply` drives it exactly like every other engine.  Opened
    with ``sync=False``: the fuzzer checks logical parity, not fsync
    discipline (the crash drills in :mod:`repro.check.faults` and
    ``tests/store`` cover that), and skipping the per-op fsync keeps
    lockstep runs fast.
    """

    def __init__(self, config: FuzzConfig) -> None:
        import tempfile

        self._tmp = tempfile.TemporaryDirectory(
            prefix="repro-fuzz-durable-"
        )
        self._config = config
        self._era = 0
        self.store: Any = None
        self.rebuild([])

    def _open(self, path: str) -> Any:
        from repro.core.serialize import U64ValueCodec
        from repro.store.engine import DurablePHTree

        return DurablePHTree.open(
            path,
            dims=self._config.dims,
            width=self._config.width,
            shards=self._config.shards,
            value_codec=U64ValueCodec,
            learned=self._config.learned,
            sync=False,
        )

    def rebuild(self, items: Sequence[Tuple[Key, Any]]) -> None:
        """A fresh store (new directory era) group-loaded with
        ``items`` -- the durable analogue of a bulk build."""
        import os

        if self.store is not None:
            self.store.close()
        self._era += 1
        path = os.path.join(self._tmp.name, f"db-{self._era}")
        self.store = self._open(path)
        if items:
            self.store.put_all(list(items))

    def reopen(self) -> None:
        """Close and recover from disk -- the clean-shutdown drill."""
        path = self.store.path
        self.store.close()
        self.store = self._open(path)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.store, name)

    def __len__(self) -> int:
        return len(self.store)

    def cleanup(self) -> None:
        if self.store is not None and not self.store.closed:
            self.store.close()
        self._tmp.cleanup()


def _build_subjects(
    config: FuzzConfig,
    items: Sequence[Tuple[Key, Any]],
    durable_env: Optional[_DurableEnv] = None,
) -> List[Tuple[str, Any]]:
    """Fresh engines pre-loaded with ``items``.

    The generic tree is grown by incremental puts while the specialized
    tree, the arena tree and the sharded tree go through their bulk
    builders -- layout is a pure function of the key set, so all four
    must then behave identically (that equivalence is part of what the
    run checks).
    """
    generic = PHTree(
        dims=config.dims, width=config.width, specialize=False
    )
    for key, value in items:
        generic.put(key, value)
    spec = bulk_load(list(items), config.dims, config.width)
    arena = bulk_load(
        list(items), config.dims, config.width, layout="arena"
    )
    sharded = ShardedPHTree.build(
        list(items),
        dims=config.dims,
        width=config.width,
        shards=config.shards,
        workers=0,
    )
    subjects = [
        ("generic", generic),
        ("spec", spec),
        ("arena", arena),
        ("sharded", sharded),
    ]
    if config.learned:
        subjects.append(
            (
                "sharded-learned",
                ShardedPHTree.build(
                    list(items),
                    dims=config.dims,
                    width=config.width,
                    shards=config.shards,
                    workers=0,
                    router="learned",
                ),
            )
        )
    if durable_env is not None:
        durable_env.rebuild(items)
        subjects.append(("durable", durable_env))
    return subjects


def _apply(tree: Any, name: str, op: Op) -> Tuple[str, Any]:
    """Execute ``op`` against one engine, normalised for diffing."""
    kind = op[0]
    if kind == "put":
        return _outcome(tree.put, op[1], op[2])
    if kind == "get":
        return _outcome(tree.get, op[1])
    if kind == "contains":
        return _outcome(tree.contains, op[1])
    if kind == "remove":
        return _outcome(tree.remove, op[1])
    if kind == "update_key":
        return _outcome(tree.update_key, op[1], op[2])
    if kind == "query":
        status, result = _outcome(tree.query, op[1], op[2])
        if status == _OK:
            result = list(result)
        return status, result
    if kind == "get_many":
        return _outcome(tree.get_many, list(op[1]))
    if kind == "knn":
        return _outcome(tree.knn, op[1], op[2])
    if kind == "query_many":
        status, result = _outcome(tree.query_many, list(op[1]))
        if status == _OK:
            result = [list(per_box) for per_box in result]
        return status, result
    if kind == "contains_many":
        contains_many = getattr(tree, "contains_many", None)
        if contains_many is not None:
            return _outcome(contains_many, list(op[1]))
        # ShardedPHTree has no batch membership API; the per-key loop
        # must agree with the batch kernels on every other engine.
        return _outcome(
            lambda keys: [tree.contains(key) for key in keys], list(op[1])
        )
    if kind == "knn_burst":
        return _outcome(
            lambda burst: [tree.knn(key, n) for key, n in burst], op[1]
        )
    raise AssertionError(f"unknown op kind for {name}: {kind}")


def _check_query_approx(
    model: ReferenceModel, tree: Any, name: str, op: Op, index: int
) -> None:
    """query_approx contract: a superset of the exact result whose extra
    points lie within ``2**slack - 1`` of the box, values per model."""
    _, lo, hi, slack = op
    approx = list(tree.query_approx(lo, hi, slack))
    exact = model.query(lo, hi)
    approx_keys = {key for key, _ in approx}
    if len(approx_keys) != len(approx):
        raise _Divergence(index, name, "query_approx yielded duplicates")
    missing = [key for key, _ in exact if key not in approx_keys]
    if missing:
        raise _Divergence(
            index,
            name,
            f"query_approx dropped exact hits, e.g. {missing[0]}",
        )
    pad = (1 << slack) - 1
    for key, value in approx:
        if model.get(key, _MISSING) != value:
            raise _Divergence(
                index,
                name,
                f"query_approx value for {key} disagrees with model",
            )
        if any(
            v < max(0, l - pad) or v > h + pad
            for v, l, h in zip(key, lo, hi)
        ):
            raise _Divergence(
                index,
                name,
                f"query_approx point {key} outside the slack box "
                f"(slack={slack})",
            )


_MISSING = object()


def _run_model_op(model: ReferenceModel, op: Op) -> Tuple[str, Any]:
    kind = op[0]
    if kind == "put":
        return _outcome(model.put, op[1], op[2])
    if kind == "get":
        return _outcome(model.get, op[1])
    if kind == "contains":
        return _outcome(model.contains, op[1])
    if kind == "remove":
        return _outcome(model.remove, op[1])
    if kind == "update_key":
        return _outcome(model.update_key, op[1], op[2])
    if kind == "query":
        return _outcome(model.query, op[1], op[2])
    if kind == "get_many":
        return _outcome(model.get_many, list(op[1]))
    if kind == "knn":
        return _outcome(model.knn, op[1], op[2])
    if kind == "query_many":
        return _outcome(model.query_many, list(op[1]))
    if kind == "contains_many":
        return _outcome(
            lambda keys: [model.contains(key) for key in keys], list(op[1])
        )
    if kind == "knn_burst":
        return _outcome(
            lambda burst: [model.knn(key, n) for key, n in burst], op[1]
        )
    raise AssertionError(f"unknown op kind: {kind}")


def _execute(ops: List[Op], config: FuzzConfig) -> FuzzReport:
    """Run ``ops`` against model + all engines; raise _Divergence on the
    first mismatch or invariant violation."""
    model = ReferenceModel(config.dims, config.width)
    durable_env = _DurableEnv(config) if config.durable else None
    subjects = _build_subjects(config, [], durable_env)
    report = FuzzReport(config=config)
    obs_before = _rt.enabled
    if config.obs_mode == "on":
        _rt.enable()
    elif config.obs_mode == "off":
        _rt.disable()
    try:
        for index, op in enumerate(ops):
            if (
                config.obs_mode == "alternate"
                and index % _OBS_FLIP_PERIOD == 0
            ):
                if _rt.enabled:
                    _rt.disable()
                else:
                    _rt.enable()
            kind = op[0]
            report.op_counts[kind] = report.op_counts.get(kind, 0) + 1
            _recorder.record("fuzz_op", index=index, op=kind)
            if kind == "bulk_load":
                for key, value in op[1]:
                    model.put(key, value)
                subjects = _build_subjects(
                    config, model.items(), durable_env
                )
            elif kind in ("d_flush", "d_compact", "d_reopen"):
                assert durable_env is not None
                if kind == "d_flush":
                    durable_env.store.flush()
                elif kind == "d_compact":
                    durable_env.store.compact()
                else:
                    durable_env.reopen()
                    got = dict(durable_env.store.items())
                    want = dict(model.items())
                    if got != want:
                        raise _Divergence(
                            index,
                            "durable",
                            f"reopen parity broke: recovered "
                            f"{len(got)} entries, model holds "
                            f"{len(want)}",
                        )
            elif kind == "query_approx":
                for name, tree in subjects:
                    if name.startswith(("sharded", "durable")):
                        continue  # no approx engine on these subjects
                    _check_query_approx(model, tree, name, op, index)
            else:
                expected = _run_model_op(model, op)
                for name, tree in subjects:
                    actual = _apply(tree, name, op)
                    if actual != expected:
                        raise _Divergence(
                            index,
                            name,
                            f"expected {_render(expected)}, "
                            f"got {_render(actual)}",
                        )
            for name, tree in subjects:
                if len(tree) != len(model):
                    raise _Divergence(
                        index,
                        name,
                        f"size {len(tree)} != model size {len(model)}",
                    )
            report.ops_run += 1
            if (index + 1) % config.validate_every == 0:
                _validate_all(subjects, model, index)
                report.validations += 1
        _validate_all(subjects, model, len(ops) - 1)
        report.validations += 1
        report.final_size = len(model)
        return report
    finally:
        if durable_env is not None:
            durable_env.cleanup()
        if obs_before:
            _rt.enable()
        else:
            _rt.disable()


def _validate_all(
    subjects: List[Tuple[str, Any]], model: ReferenceModel, index: int
) -> None:
    expected_items = model.items()
    for name, tree in subjects:
        try:
            validate_tree(
                tree.store if isinstance(tree, _DurableEnv) else tree
            )
        except InvariantViolation as exc:
            raise _Divergence(
                index, name, f"invariant violation: {exc}"
            ) from exc
        if list(tree.items()) != expected_items:
            raise _Divergence(
                index, name, "items() disagrees with the model"
            )


def _render(outcome: Tuple[str, Any]) -> str:
    status, payload = outcome
    text = repr(payload)
    if len(text) > 200:
        text = text[:200] + "..."
    return f"{status}:{text}"


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _fails(ops: List[Op], config: FuzzConfig) -> Optional[_Divergence]:
    try:
        _execute(ops, config)
        return None
    except _Divergence as div:
        return div


def _shrink(
    ops: List[Op], config: FuzzConfig, budget: int = 256
) -> Tuple[List[Op], _Divergence]:
    """Greedy delta debugging: drop chunks, then single ops, as long as
    *some* divergence persists.  ``budget`` caps re-executions."""
    divergence = _fails(ops, config)
    assert divergence is not None
    current = ops[: divergence.index + 1]
    divergence = _fails(current, config) or divergence
    chunk = max(1, len(current) // 4)
    while chunk >= 1 and budget > 0:
        start = 0
        shrunk = False
        while start < len(current) and budget > 0:
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                break
            budget -= 1
            result = _fails(candidate, config)
            if result is not None:
                current = candidate[: result.index + 1]
                divergence = result
                shrunk = True
            else:
                start += chunk
        if not shrunk or chunk == 1:
            if chunk == 1:
                break
        chunk = max(1, chunk // 2)
    return current, divergence


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run one seeded fuzz campaign; raises :class:`FuzzFailure` (with a
    shrunk, paste-able repro) on any divergence."""
    ops = generate_ops(config)
    try:
        return _execute(ops, config)
    except _Divergence as div:
        if config.shrink:
            ops, div = _shrink(ops, config)
        else:
            ops = ops[: div.index + 1]
        raise FuzzFailure(
            config, ops, div.index, div.subject, div.message,
            events=div.events,
        ) from None


def replay(ops: List[Op], config: FuzzConfig) -> FuzzReport:
    """Re-execute a concrete op sequence (e.g. a printed repro)."""
    try:
        return _execute(list(ops), config)
    except _Divergence as div:
        raise FuzzFailure(
            config, list(ops[: div.index + 1]), div.index, div.subject,
            div.message, events=div.events,
        ) from None
