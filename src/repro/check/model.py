"""The fuzzer's reference model: a plain dict plus brute force.

The model is deliberately dumb -- a ``dict`` keyed by the integer key
tuples, with every query answered by an exhaustive scan sorted by Morton
code.  Its only job is to be *obviously* correct, so any divergence from
a tree engine indicts the engine, not the oracle.

Expected orderings mirror the tree's documented semantics:

- iteration and window queries ascend in Morton code (z-order),
- kNN ascends by ``(squared distance, Morton code)`` -- the tree's
  documented tie order -- truncated to ``n``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.encoding.interleave import interleave

__all__ = ["ReferenceModel"]

Key = Tuple[int, ...]


class ReferenceModel:
    """Sorted-dict semantics for a ``dims``-dimensional ``width``-bit
    integer key space."""

    __slots__ = ("dims", "width", "data")

    def __init__(self, dims: int, width: int) -> None:
        self.dims = dims
        self.width = width
        self.data: Dict[Key, Any] = {}

    def __len__(self) -> int:
        return len(self.data)

    def _zkey(self, key: Key) -> int:
        return interleave(key, self.width)

    # -- mutations (mirroring the tree API contracts) ----------------------

    def put(self, key: Key, value: Any) -> Any:
        previous = self.data.get(key)
        self.data[key] = value
        return previous

    def remove(self, key: Key) -> Any:
        """Returns the removed value; raises KeyError like the tree."""
        return self.data.pop(key)

    def update_key(self, old_key: Key, new_key: Key) -> None:
        """Same contract as ``PHTree.update_key``: ValueError when the
        target exists (no-op when it *is* the source), KeyError when the
        source is absent."""
        if new_key in self.data:
            if old_key == new_key:
                return
            raise ValueError(f"target key already present: {new_key}")
        value = self.data.pop(old_key)
        self.data[new_key] = value

    def clear(self) -> None:
        self.data.clear()

    # -- reads -------------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        return self.data.get(key, default)

    def contains(self, key: Key) -> bool:
        return key in self.data

    def get_many(self, keys: List[Key], default: Any = None) -> List[Any]:
        return [self.data.get(key, default) for key in keys]

    def items(self) -> List[Tuple[Key, Any]]:
        """All entries in z-order."""
        return sorted(self.data.items(), key=lambda kv: self._zkey(kv[0]))

    def keys(self) -> List[Key]:
        return [key for key, _ in self.items()]

    def query(self, box_min: Key, box_max: Key) -> List[Tuple[Key, Any]]:
        """Window query in z-order (empty for an inverted box)."""
        if any(lo > hi for lo, hi in zip(box_min, box_max)):
            return []
        hits = [
            (key, value)
            for key, value in self.data.items()
            if all(
                lo <= v <= hi
                for v, lo, hi in zip(key, box_min, box_max)
            )
        ]
        hits.sort(key=lambda kv: self._zkey(kv[0]))
        return hits

    def query_many(
        self, boxes: List[Tuple[Key, Key]]
    ) -> List[List[Tuple[Key, Any]]]:
        return [self.query(lo, hi) for lo, hi in boxes]

    def count(self, box_min: Key, box_max: Key) -> int:
        return len(self.query(box_min, box_max))

    def knn(self, key: Key, n: int) -> List[Tuple[Key, Any]]:
        """``n`` nearest by ``(squared distance, Morton code)``."""
        if n <= 0:
            return []
        ranked = sorted(
            self.data.items(),
            key=lambda kv: (
                self._point_dist(key, kv[0]),
                self._zkey(kv[0]),
            ),
        )
        return ranked[:n]

    @staticmethod
    def _point_dist(query: Key, candidate: Key) -> int:
        total = 0
        for q, v in zip(query, candidate):
            d = q - v
            total += d * d
        return total

    # -- fuzzer support ----------------------------------------------------

    def random_present_key(self, rng: Any) -> Optional[Key]:
        """A uniformly chosen stored key, or None when empty.

        Iteration order of a dict is insertion order, which is
        deterministic given a deterministic op sequence -- so this keeps
        the fuzzer reproducible.
        """
        if not self.data:
            return None
        index = rng.randrange(len(self.data))
        for position, key in enumerate(self.data):
            if position == index:
                return key
        raise AssertionError("unreachable")
