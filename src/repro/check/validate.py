"""Structural invariant validator for every tree engine.

:func:`validate_tree` walks a tree -- live :class:`~repro.core.phtree.PHTree`,
float facade, sharded, synchronized, or frozen byte stream -- and asserts
every paper-level structural invariant:

- the root sits at ``post_len == width - 1`` with an empty infix
  (Section 3.1),
- ``infix_len == parent.post_len - 1 - post_len`` on every edge and
  ``post_len`` strictly shrinks downwards (postlen monotonicity),
- node prefixes have no dirty bits below ``post_len + 1`` and every
  child prefix extends the parent's prefix plus the parent-level
  hypercube address bits (infix consistency),
- every slot address fits the node's ``2**k`` hypercube and the slot
  table is strictly ascending in address (the z-order of LHC slots),
- the container representation matches the Section 3.2 size formulas:
  with ``hc_mode='auto'`` and no hysteresis a node is HC iff
  :func:`~repro.core.hypercube.hc_bits` ``<=``
  :func:`~repro.core.hypercube.lhc_bits`; forced modes and the
  hysteresis band are honoured,
- container bookkeeping (HC occupancy set and count, cached
  ``(n_sub, n_post)`` split) agrees with the slots actually stored,
- every non-root node holds at least two slots (delete-merge leaves no
  single-child chains), entries sit at the address their key interleaves
  to and inside the node's region, coordinates fit the declared widths,
- global iteration is strictly ascending in Morton code and the entry
  count matches ``len(tree)``,
- the tree round-trips through the :mod:`repro.core.frozen` byte stream
  bit-exactly (same items, same order) whenever its values are
  encodable, and a learned-trailer freeze passes the model's structural
  invariants (ranks replay the stream's z-order, stored per-segment
  errors are the measured maxima) plus learned-vs-exact lockstep on
  point, window and kNN reads.

Violations raise :class:`InvariantViolation` (an ``AssertionError``
subclass) carrying the node path from the root; a clean walk returns a
:class:`ValidationReport` with shape counts.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.hypercube import max_hc_dimensions, prefer_hc
from repro.core.node import Entry, Node
from repro.core.phtree import PHTree
from repro.encoding.interleave import interleave

__all__ = ["InvariantViolation", "ValidationReport", "validate_tree"]


class InvariantViolation(AssertionError):
    """A structural invariant does not hold.

    ``path`` is the slot-address path from the root to the offending
    node (empty for tree-level violations).
    """

    def __init__(self, message: str, path: Tuple[int, ...] = ()) -> None:
        self.path = path
        if path:
            message = f"{message} (node path {'/'.join(map(str, path))})"
        super().__init__(message)


class ValidationReport:
    """Shape counts from one clean :func:`validate_tree` walk."""

    __slots__ = (
        "engine",
        "nodes",
        "entries",
        "hc_nodes",
        "lhc_nodes",
        "max_depth",
        "frozen_checked",
        "sub_reports",
    )

    def __init__(self, engine: str) -> None:
        self.engine = engine
        self.nodes = 0
        self.entries = 0
        self.hc_nodes = 0
        self.lhc_nodes = 0
        self.max_depth = 0
        self.frozen_checked = False
        self.sub_reports: List["ValidationReport"] = []

    def __repr__(self) -> str:
        return (
            f"ValidationReport(engine={self.engine!r}, "
            f"nodes={self.nodes}, entries={self.entries}, "
            f"hc={self.hc_nodes}, lhc={self.lhc_nodes}, "
            f"max_depth={self.max_depth}, "
            f"frozen_checked={self.frozen_checked})"
        )


def validate_tree(
    tree: Any, frozen_roundtrip: bool = True
) -> ValidationReport:
    """Validate every structural invariant of ``tree``.

    Accepts a :class:`~repro.core.phtree.PHTree`,
    :class:`~repro.core.phtree_float.PHTreeF`,
    :class:`~repro.core.concurrent.SynchronizedPHTree`,
    :class:`~repro.parallel.sharded.ShardedPHTree` or
    :class:`~repro.core.frozen.FrozenPHTree`.  Raises
    :class:`InvariantViolation` on the first violation; returns a
    :class:`ValidationReport` on success.

    ``frozen_roundtrip=False`` skips the freeze/attach round-trip (used
    by the fuzzer's cheap per-op validations; the full check runs on its
    periodic deep validations).
    """
    # Late imports: the check package must not make the core packages
    # import the parallel/float layers (or vice versa) at module load.
    from repro.core.frozen import FrozenPHTree
    from repro.core.phtree_float import PHTreeF

    if isinstance(tree, PHTree):
        return _validate_phtree(tree, frozen_roundtrip)
    if isinstance(tree, PHTreeF):
        report = _validate_phtree(tree.int_tree, frozen_roundtrip)
        report.engine = "PHTreeF"
        return report
    if isinstance(tree, FrozenPHTree):
        return _validate_frozen(tree)
    try:
        from repro.parallel.sharded import ShardedPHTree
    except Exception:  # pragma: no cover - parallel layer always ships
        ShardedPHTree = None
    if ShardedPHTree is not None and isinstance(tree, ShardedPHTree):
        return _validate_sharded(tree, frozen_roundtrip)
    try:
        from repro.store.engine import DurablePHTree
    except Exception:  # pragma: no cover - store layer always ships
        DurablePHTree = None
    if DurablePHTree is not None and isinstance(tree, DurablePHTree):
        return _validate_durable(tree, frozen_roundtrip)
    from repro.core.concurrent import SynchronizedPHTree

    if isinstance(tree, SynchronizedPHTree):
        with tree.lock.read():
            report = validate_tree(tree.unsafe_tree, frozen_roundtrip)
        report.engine = f"Synchronized[{report.engine}]"
        return report
    raise TypeError(
        f"validate_tree does not understand {type(tree).__name__}"
    )


# ---------------------------------------------------------------------------
# Live PHTree
# ---------------------------------------------------------------------------


def _validate_phtree(
    tree: PHTree, frozen_roundtrip: bool
) -> ValidationReport:
    report = ValidationReport("PHTree")
    if tree.layout == "arena":
        # Native slab checks run FIRST: materialising the shadow object
        # graph (tree.root below) assumes sane headers, so corruption
        # must be rejected before anything walks it.
        _validate_arena(tree, report)
        report.engine = "ArenaPHTree"
    root = tree.root
    if root is None:
        if len(tree) != 0:
            raise InvariantViolation(
                f"empty root but len(tree) == {len(tree)}"
            )
        return report
    if root.post_len != tree.width - 1:
        raise InvariantViolation(
            f"root post_len {root.post_len} != width - 1 "
            f"= {tree.width - 1}"
        )
    if root.infix_len != 0:
        raise InvariantViolation(
            f"root infix_len {root.infix_len} != 0"
        )
    total = _validate_node(tree, root, None, (), 1, report)
    if total != len(tree):
        raise InvariantViolation(
            f"size bookkeeping off: walked {total} entries, "
            f"len(tree) == {len(tree)}"
        )
    _check_zorder(tree.items(), tree.width, "PHTree.items()")
    if frozen_roundtrip:
        _check_frozen_roundtrip(tree, report)
    return report


def _validate_arena(tree: PHTree, report: ValidationReport) -> None:
    """Slab-level invariants of the arena engine, beyond the (shadow)
    object-graph walk: header decode against table occupancy, free-list
    marker integrity and disjointness from the reachable record sets,
    and live-footprint accounting."""
    from repro.core.arena import FREE_BIT

    arena = tree._arena
    try:
        # The engine's own native walk re-checks the structural
        # invariants straight off the words (header counts vs tables,
        # sorted LHC addresses, prefix path consistency) and that no
        # freed node offset is reachable.  Corrupt headers can also
        # send the walk out of bounds or into reference cycles --
        # both are corruption verdicts, not validator crashes.
        tree.check_invariants()
        free_nodes = arena.free_block_offsets()
    except (AssertionError, IndexError, RecursionError) as exc:
        raise InvariantViolation(f"arena: {exc}") from exc
    words = arena.words
    k = arena.k
    reachable_nodes = list(arena.iter_nodes(tree._root_off))
    reachable_entries = set()
    for off in reachable_nodes:
        h = words[off]
        if h & FREE_BIT:
            raise InvariantViolation(
                f"arena: reachable node at offset {off} carries the "
                "free marker"
            )
        base = off + 2 + k
        if h & (1 << 12):
            refs = (words[i] for i in range(base, base + (1 << k)))
        else:
            c = words[off + 1]
            n = (c & 2097151) + ((c >> 21) & 2097151)
            rbase = base + (1 << ((h >> 13) & 63))
            refs = (words[i] for i in range(rbase, rbase + n))
        for ref in refs:
            if ref and not (ref & 1):
                reachable_entries.add(ref >> 1)
    overlap = reachable_entries.intersection(arena.free_entry_offsets())
    if overlap:
        raise InvariantViolation(
            f"arena: freed entry offsets still reachable: "
            f"{sorted(overlap)[:5]}"
        )
    if arena.live_entries != len(reachable_entries):
        raise InvariantViolation(
            f"arena: live_entries {arena.live_entries} != "
            f"{len(reachable_entries)} reachable entry records"
        )
    if arena.n_nodes != len(reachable_nodes):
        raise InvariantViolation(
            f"arena: n_nodes {arena.n_nodes} != "
            f"{len(reachable_nodes)} reachable node blocks"
        )
    walked_words = sum(arena.block_len(off) for off in reachable_nodes)
    if arena.live_node_words != walked_words:
        raise InvariantViolation(
            f"arena: live_node_words {arena.live_node_words} != "
            f"{walked_words} words across reachable blocks"
        )
    del free_nodes  # marker integrity already checked above


def _validate_node(
    tree: PHTree,
    node: Node,
    parent: Optional[Node],
    path: Tuple[int, ...],
    depth: int,
    report: ValidationReport,
) -> int:
    k = tree.dims
    report.nodes += 1
    report.max_depth = max(report.max_depth, depth)
    if node.container.is_hc:
        report.hc_nodes += 1
    else:
        report.lhc_nodes += 1

    if parent is not None:
        if node.num_slots() < 2:
            raise InvariantViolation(
                f"non-root node holds {node.num_slots()} slot(s); "
                "delete-merge must leave no single-child chains",
                path,
            )
        if not (0 <= node.post_len < parent.post_len):
            raise InvariantViolation(
                f"post_len must shrink downwards: child {node.post_len} "
                f"under parent {parent.post_len}",
                path,
            )
        expected_infix = parent.post_len - 1 - node.post_len
        if node.infix_len != expected_infix:
            raise InvariantViolation(
                f"infix_len {node.infix_len} != parent.post_len - 1 - "
                f"post_len = {expected_infix}",
                path,
            )

    shift = node.post_len + 1
    low_mask = (1 << shift) - 1
    for dim, value in enumerate(node.prefix):
        if value < 0 or (value >> tree.widths[dim]):
            raise InvariantViolation(
                f"prefix coordinate {dim} = {value} outside "
                f"[0, 2**{tree.widths[dim]})",
                path,
            )
        if value & low_mask:
            raise InvariantViolation(
                f"prefix coordinate {dim} has dirty bits below "
                f"position {shift}",
                path,
            )

    _check_container(node, k, tree._hc_mode, tree._hysteresis, path)

    total = 0
    previous_address = -1
    n_sub = n_post = 0
    for address, slot in node.items():
        if not (0 <= address < (1 << k)):
            raise InvariantViolation(
                f"slot address {address} outside the 2**{k} hypercube",
                path,
            )
        if address <= previous_address:
            raise InvariantViolation(
                f"slot addresses not strictly ascending: {address} "
                f"after {previous_address}",
                path,
            )
        previous_address = address
        if isinstance(slot, Node):
            n_sub += 1
            if not _child_prefix_consistent(node, slot, address):
                raise InvariantViolation(
                    f"child prefix at address {address} disagrees with "
                    "parent prefix + address bits",
                    path,
                )
            total += _validate_node(
                tree, slot, node, path + (address,), depth + 1, report
            )
        elif isinstance(slot, Entry):
            n_post += 1
            report.entries += 1
            total += 1
            key = slot.key
            if len(key) != k:
                raise InvariantViolation(
                    f"entry key {key} has {len(key)} dimensions", path
                )
            for dim, value in enumerate(key):
                if value < 0 or (value >> tree.widths[dim]):
                    raise InvariantViolation(
                        f"entry coordinate {dim} = {value} outside "
                        f"[0, 2**{tree.widths[dim]})",
                        path,
                    )
            if node.address_of(key) != address:
                raise InvariantViolation(
                    f"entry {key} stored at address {address}, "
                    f"interleaves to {node.address_of(key)}",
                    path,
                )
            if not node.matches_prefix(key):
                raise InvariantViolation(
                    f"entry {key} outside the node region", path
                )
        else:
            raise InvariantViolation(
                f"slot at address {address} is a "
                f"{type(slot).__name__}, expected Entry or Node",
                path,
            )
    cached_sub, cached_post = node.slot_counts()
    if (cached_sub, cached_post) != (n_sub, n_post):
        raise InvariantViolation(
            f"cached slot split ({cached_sub} sub, {cached_post} post) "
            f"!= walked ({n_sub} sub, {n_post} post)",
            path,
        )
    return total


def _check_container(
    node: Node,
    k: int,
    hc_mode: str,
    hysteresis: float,
    path: Tuple[int, ...],
) -> None:
    """Representation choice per the Section 3.2 size formulas, plus
    container-internal bookkeeping."""
    container = node.container
    if container.is_hc:
        if k > max_hc_dimensions():
            raise InvariantViolation(
                f"HC array materialised at k={k} > limit "
                f"{max_hc_dimensions()}",
                path,
            )
        if container.n_slots != (1 << k):
            raise InvariantViolation(
                f"HC array has {container.n_slots} slots, "
                f"expected 2**{k}",
                path,
            )
        occupied = {
            address
            for address, slot in enumerate(container._slots)
            if slot is not None
        }
        if occupied != container._occupied:
            raise InvariantViolation(
                "HC occupied-address set out of sync with the slot "
                "array",
                path,
            )
        if len(occupied) != len(container):
            raise InvariantViolation(
                f"HC count {len(container)} != {len(occupied)} "
                "occupied slots",
                path,
            )

    n_sub, n_post = node.slot_counts()
    postfix_bits = node.postfix_payload_bits(k)
    if hc_mode == "lhc":
        if container.is_hc:
            raise InvariantViolation(
                "hc_mode='lhc' but node is in the HC representation",
                path,
            )
        return
    if hc_mode == "hc":
        want_hc = k <= max_hc_dimensions()
        if container.is_hc != want_hc:
            raise InvariantViolation(
                f"hc_mode='hc' but node is_hc={container.is_hc} "
                f"(k={k})",
                path,
            )
        return
    if hysteresis > 0.0:
        # Inside the relaxed band either representation is legal; only
        # a choice *outside* its own band is a violation.
        allowed_hc = prefer_hc(
            k, n_sub, n_post, postfix_bits, hysteresis, currently_hc=True
        )
        allowed_lhc = not prefer_hc(
            k, n_sub, n_post, postfix_bits, hysteresis, currently_hc=False
        )
        if container.is_hc and not allowed_hc:
            raise InvariantViolation(
                "HC representation outside the hysteresis band", path
            )
        if not container.is_hc and not allowed_lhc:
            raise InvariantViolation(
                "LHC representation outside the hysteresis band", path
            )
        return
    want_hc = prefer_hc(k, n_sub, n_post, postfix_bits)
    if container.is_hc != want_hc:
        raise InvariantViolation(
            f"representation disagrees with the size formulas: "
            f"is_hc={container.is_hc}, hc_bits<=lhc_bits is {want_hc} "
            f"(n_sub={n_sub}, n_post={n_post}, "
            f"postfix_bits={postfix_bits})",
            path,
        )


def _child_prefix_consistent(
    parent: Node, child: Node, address: int
) -> bool:
    k = len(parent.prefix)
    shift = parent.post_len + 1
    for dim in range(k):
        if (child.prefix[dim] >> shift) != (parent.prefix[dim] >> shift):
            return False
        address_bit = (address >> (k - 1 - dim)) & 1
        if (child.prefix[dim] >> parent.post_len) & 1 != address_bit:
            return False
    return True


def _check_zorder(items: Any, width: int, label: str) -> None:
    previous = -1
    previous_key = None
    for key, _value in items:
        code = interleave(key, width)
        if code <= previous:
            raise InvariantViolation(
                f"{label} not strictly ascending in Morton code: "
                f"{key} after {previous_key}"
            )
        previous = code
        previous_key = key


# ---------------------------------------------------------------------------
# Frozen round-trip
# ---------------------------------------------------------------------------


def _pick_codec(tree: PHTree) -> Optional[Any]:
    """A value codec able to freeze this tree's values, or None."""
    from repro.core.serialize import NoneValueCodec, U64ValueCodec

    all_none = True
    all_u64 = True
    for _key, value in tree.items():
        if value is not None:
            all_none = False
        if not (isinstance(value, int) and 0 <= value < (1 << 64)):
            all_u64 = False
        if not all_none and not all_u64:
            return None
    if all_none:
        return NoneValueCodec
    return U64ValueCodec


def _check_frozen_roundtrip(
    tree: PHTree, report: ValidationReport
) -> None:
    """Freeze the tree and require the byte stream to replay the exact
    item sequence (and answer point queries) of the live tree."""
    from repro.core.frozen import FrozenPHTree, freeze

    if tree.width > 256:  # pragma: no cover - widths are <= 64 here
        return
    codec = _pick_codec(tree)
    if codec is None:
        return  # Unencodable values: round-trip not applicable.
    frozen = FrozenPHTree(freeze(tree, codec), codec)
    if len(frozen) != len(tree):
        raise InvariantViolation(
            f"frozen stream reports {len(frozen)} entries, live tree "
            f"{len(tree)}"
        )
    live = list(tree.items())
    thawed = list(frozen.items())
    if live != thawed:
        raise InvariantViolation(
            "frozen byte stream does not replay the live item "
            f"sequence (first divergence at index "
            f"{_first_divergence(live, thawed)})"
        )
    for key, value in live[:: max(1, len(live) // 16)]:
        if frozen.get(key, _MISSING) != value:
            raise InvariantViolation(
                f"frozen point query disagrees at {key}"
            )
    report.frozen_checked = True
    _check_learned_frozen(tree, codec, live)


def _check_learned_frozen(
    tree: PHTree, codec: Any, live: List[Any]
) -> None:
    """Freeze with a learned trailer (small eps: multi-segment models
    on any realistic key set) and hold the model to its contract:
    trailer invariants, then learned-vs-exact lockstep on point,
    window and kNN reads."""
    from repro.core.frozen import FrozenPHTree, freeze

    if not live:
        return
    learned = FrozenPHTree(
        freeze(tree, codec, learned=True, eps=4), codec
    )
    model = learned.learned_index
    if model is None:
        raise InvariantViolation(
            "learned freeze produced no attachable trailer"
        )
    _check_learned_trailer(learned, model)
    step = max(1, len(live) // 16)
    for key, value in live[::step]:
        if learned.get(key, _MISSING) != value:
            raise InvariantViolation(
                f"learned frozen point query disagrees at {key}"
            )
        if not learned.contains(key):
            raise InvariantViolation(
                f"learned frozen contains() misses stored key {key}"
            )
    keys = [key for key, _ in live]
    lo = tuple(min(k[d] for k in keys) for d in range(tree.dims))
    hi = tuple(max(k[d] for k in keys) for d in range(tree.dims))
    for box in ((lo, hi), (lo, lo), (hi, hi)):
        if list(learned.query(*box)) != list(tree.query(*box)):
            raise InvariantViolation(
                f"learned frozen window query diverges on box {box}"
            )
    probe = live[len(live) // 2][0]
    n = min(5, len(live))
    if learned.knn(probe, n) != tree.knn(probe, n):
        raise InvariantViolation(
            f"learned frozen knn diverges at {probe}"
        )


def _check_learned_trailer(frozen: Any, model: Any) -> None:
    """Structural invariants of an attached learned trailer: the rank
    array replays the stream's z-order exactly, segment starts
    partition it, stored per-segment errors are the *measured* ones,
    and every stored z-code resolves through ``find``."""
    from repro.encoding.interleave import interleave
    from repro.learned.index import FALLBACK, FOUND
    from repro.learned.pla import measure_errors

    if model.n != len(frozen):
        raise InvariantViolation(
            f"learned trailer holds {model.n} entries, stream "
            f"{len(frozen)}"
        )
    zs = [model.z_at(i) for i in range(model.n)]
    for i in range(1, model.n):
        if zs[i] <= zs[i - 1]:
            raise InvariantViolation(
                f"learned trailer z-codes not strictly ascending at "
                f"rank {i}"
            )
        if model.value_pos(i) <= model.value_pos(i - 1):
            raise InvariantViolation(
                f"learned trailer value positions not ascending at "
                f"rank {i}"
            )
    expected = [
        interleave(key, frozen.width) for key, _ in frozen.items()
    ]
    if zs != expected:
        raise InvariantViolation(
            "learned trailer z-codes disagree with the frozen "
            "stream's z-order"
        )
    starts = list(model._starts)
    if starts[0] != 0:
        raise InvariantViolation(
            f"first learned segment starts at {starts[0]}, expected 0"
        )
    for j in range(1, len(starts)):
        if starts[j] <= starts[j - 1] or starts[j] >= model.n:
            raise InvariantViolation(
                f"learned segment starts not ascending within the "
                f"stream at segment {j}"
            )
    for j in range(len(starts)):
        if model._segz[j] != zs[starts[j]]:
            raise InvariantViolation(
                f"segment {j} first-z {model._segz[j]} != z-code at "
                f"its start rank"
            )
    measured = measure_errors(
        zs, list(zip(starts, model._slopes))
    )
    if measured != list(model._errs):
        raise InvariantViolation(
            "stored per-segment errors are not the measured maxima"
        )
    step = max(1, model.n // 16)
    for i in range(0, model.n, step):
        status, rank, _err = model.find(zs[i])
        if status == FALLBACK:
            continue  # dead segment: the contract is the fallback
        if status != FOUND or rank != i:
            raise InvariantViolation(
                f"learned find() resolves stored z at rank {i} to "
                f"({status}, {rank})"
            )


_MISSING = object()


def _first_divergence(a: List[Any], b: List[Any]) -> int:
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return index
    return min(len(a), len(b))


# ---------------------------------------------------------------------------
# Sharded trees
# ---------------------------------------------------------------------------


def _validate_sharded(
    tree: Any, frozen_roundtrip: bool
) -> ValidationReport:
    report = ValidationReport("ShardedPHTree")
    total = 0
    for index, locked in enumerate(tree._shards):
        with locked.lock.read():
            shard_tree = locked.unsafe_tree
            sub = _validate_phtree(shard_tree, frozen_roundtrip)
            sub.engine = f"shard[{index}]"
            report.sub_reports.append(sub)
            report.nodes += sub.nodes
            report.entries += sub.entries
            report.hc_nodes += sub.hc_nodes
            report.lhc_nodes += sub.lhc_nodes
            report.max_depth = max(report.max_depth, sub.max_depth)
            report.frozen_checked |= sub.frozen_checked
            total += len(shard_tree)
            for key in shard_tree.keys():
                owner = tree._router.shard_of(key)
                if owner != index:
                    raise InvariantViolation(
                        f"key {key} stored in shard {index} but routed "
                        f"to shard {owner}"
                    )
    if total != len(tree):
        raise InvariantViolation(
            f"shard sizes sum to {total}, len(tree) == {len(tree)}"
        )
    # Shard regions are z-contiguous, so concatenated iteration must be
    # exactly the unsharded global z-order.
    _check_zorder(tree.items(), tree.width, "ShardedPHTree.items()")
    return report


# ---------------------------------------------------------------------------
# Durable stores
# ---------------------------------------------------------------------------


def _validate_durable(
    store: Any, frozen_roundtrip: bool
) -> ValidationReport:
    """The durable contract on top of the live sharded invariants:
    every mmap-attached segment is a valid frozen tree, and the
    segment chain folded with the pending (unflushed) delta equals
    the live tree's contents exactly."""
    report = ValidationReport("DurablePHTree")
    live = _validate_sharded(store.live, frozen_roundtrip)
    live.engine = "live"
    report.sub_reports.append(live)
    report.nodes = live.nodes
    report.entries = live.entries
    report.hc_nodes = live.hc_nodes
    report.lhc_nodes = live.lhc_nodes
    report.max_depth = live.max_depth
    report.frozen_checked = live.frozen_checked

    manifest = store.manifest
    if manifest is None:
        raise InvariantViolation("open durable store carries no manifest")
    if manifest.wal_seq > store._next_seq - 1:
        raise InvariantViolation(
            f"manifest wal_seq {manifest.wal_seq} ahead of the engine's "
            f"last sequence {store._next_seq - 1}"
        )
    overlap = set(store._pending_puts).intersection(store._pending_dels)
    if overlap:
        raise InvariantViolation(
            f"pending puts and deletes overlap on {sorted(overlap)[:5]}"
        )

    import os as _os

    state: dict = {}
    for seg in store.segments:
        if seg.record.tombstones is not None:
            for key in seg.tombstones:
                state.pop(key, None)
            continue
        if seg.record.file is None or seg.frozen is None:
            raise InvariantViolation(
                "segment chain record carries neither a frozen stream "
                "nor tombstones"
            )
        if not _os.path.exists(
            _os.path.join(store.path, seg.record.file)
        ):
            raise InvariantViolation(
                f"manifest references missing file {seg.record.file!r}"
            )
        sub = _validate_frozen(seg.frozen)
        sub.engine = f"segment[{seg.record.file}]"
        report.sub_reports.append(sub)
        if len(seg.frozen) != seg.record.entries:
            raise InvariantViolation(
                f"segment {seg.record.file} holds {len(seg.frozen)} "
                f"entries, manifest says {seg.record.entries}"
            )
        if manifest.learned and len(seg.frozen) > 0:
            if seg.frozen.learned_index is None:
                raise InvariantViolation(
                    f"learned store segment {seg.record.file} carries "
                    "no attachable PHL1 trailer"
                )
        for key, value in seg.frozen.items():
            state[key] = value

    for key in store._pending_dels:
        state.pop(key, None)
    state.update(store._pending_puts)
    live_items = dict(store.live.items())
    if state != live_items:
        missing = sorted(set(live_items) - set(state))[:5]
        extra = sorted(set(state) - set(live_items))[:5]
        raise InvariantViolation(
            "durable view (segments + pending delta) diverges from the "
            f"live tree: {len(live_items)} live vs {len(state)} "
            f"durable entries (live-only {missing}, durable-only "
            f"{extra})"
        )
    return report


# ---------------------------------------------------------------------------
# Frozen trees (standalone)
# ---------------------------------------------------------------------------


def _validate_frozen(tree: Any) -> ValidationReport:
    report = ValidationReport("FrozenPHTree")
    count = 0
    for key, _value in tree.items():
        count += 1
        if len(key) != tree.dims:
            raise InvariantViolation(
                f"frozen entry {key} has {len(key)} dimensions"
            )
        for dim, value in enumerate(key):
            if value < 0 or (value >> tree.width):
                raise InvariantViolation(
                    f"frozen entry coordinate {dim} = {value} outside "
                    f"[0, 2**{tree.width})"
                )
        if not tree.contains(key):
            raise InvariantViolation(
                f"frozen stream iterates {key} but the point query "
                "misses it"
            )
    if count != len(tree):
        raise InvariantViolation(
            f"frozen stream iterates {count} entries, header says "
            f"{len(tree)}"
        )
    report.entries = count
    _check_zorder(tree.items(), tree.width, "FrozenPHTree.items()")
    model = getattr(tree, "learned_index", None)
    if model is not None:
        _check_learned_trailer(tree, model)
    return report
