"""The PH-tree core: the paper's primary contribution.

Public entry points:

- :class:`repro.core.phtree.PHTree` -- the integer-keyed k-dimensional
  PATRICIA-hypercube-tree (Sections 3.1-3.2 of the paper).
- :class:`repro.core.phtree_float.PHTreeF` -- the floating-point facade that
  applies the IEEE-754 sortable conversion of Section 3.3.
- :mod:`repro.core.stats` -- tree statistics (node counts, HC/LHC usage,
  prefix sharing) backing the paper's space analysis.
- :mod:`repro.core.serialize` -- per-node bit-stream serialisation.
"""

from repro.core.arena_tree import ArenaPHTree
from repro.core.bulk import bulk_load, bulk_load_sorted
from repro.core.concurrent import SynchronizedPHTree
from repro.core.multimap import PHTreeMultiMap
from repro.core.frozen import FrozenPHTree, freeze
from repro.core.phtree import PHTree
from repro.core.phtree_float import PHTreeF
from repro.core.solid import PHTreeSolidF
from repro.core.stats import TreeStats, collect_stats

__all__ = [
    "ArenaPHTree",
    "FrozenPHTree",
    "PHTree",
    "PHTreeF",
    "PHTreeMultiMap",
    "PHTreeSolidF",
    "SynchronizedPHTree",
    "TreeStats",
    "bulk_load",
    "bulk_load_sorted",
    "collect_stats",
    "freeze",
]
