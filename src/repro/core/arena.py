"""Slab/arena storage for PH-tree nodes (the packed mutable layout).

The object engine spends one Python ``Node`` plus a list/dict container
per tree node and one ``Entry`` plus a key tuple per stored point --
hundreds of bytes of interpreter overhead against the paper's
"tightly packed" HC/LHC nodes (Section 3.4, Table 3).  This module
stores the same structure as fixed-layout records inside two growable
``array('Q')`` pools, addressed by integer offsets instead of object
references:

Node record (``words`` pool)::

    [header: 1 word] [counts: 1 word] [prefix: k words] [slot table]

    header bits  0..5   post_len            (width <= 64)
           bits  6..11  infix_len
           bit   12     HC flag
           bits 13..18  cap_log (LHC table capacity = 2**cap_log)
           bit   63     free flag (only on recycled blocks)

    counts bits  0..20  n_sub   (sub-node slot count, 21 bits)
           bits 21..41  n_post  (postfix slot count, 21 bits)

    The header word deliberately stays below 2**19 so every hot-path
    header op is single-digit CPython long arithmetic; the slot counts
    live in their own word, read only on mutation and stats walks.

    LHC table: ``2**cap_log`` address words followed by ``2**cap_log``
    ref words; the first ``n_sub + n_post`` addresses are sorted (paper
    Section 3.2's sorted linear representation) and the remaining
    address slots hold the sentinel ``2**k``, so a C ``bisect_left``
    over the full capacity finds a slot without decoding the counts.
    HC table:  ``2**k`` direct-indexed ref words.

Slot *ref* words are tagged offsets: ``0`` is an empty slot,
``(node_offset << 1) | 1`` a sub-node, ``entry_offset << 1`` a postfix.

Entry record (``entries`` pool)::

    [key: k words] [value ref: 1 word]   -- value ref 0 encodes None,
                                            else 1 + index into `values`

Deleted node blocks go onto per-block-length free lists threaded through
the slab itself (``words[off]`` keeps the free flag + block length,
``words[off + 1]`` the next free offset); deleted entry records thread
their next pointer through their first key word.  Growth is amortised
appending at the frontier (``array`` realloc doubling); a block that
outgrows its size class is reallocated at the next power of two and its
old block recycled, so delete-heavy churn reuses slab space instead of
leaking it (asserted by the churn regression test).

Offset 0 of both pools is reserved as a null sentinel, which is what
lets ``0`` double as "empty slot" / "no node" / "end of free list".
"""

from __future__ import annotations

import weakref
from array import array
from typing import Any, Dict, Iterator, List, Tuple

__all__ = [
    "CAP_SHIFT",
    "COUNT_MASK",
    "FREE_BIT",
    "HC_BIT",
    "INFIX_SHIFT",
    "NPOST_SHIFT",
    "NSUB_SHIFT",
    "NodeArena",
    "POST_MASK",
    "entry_ref",
    "hc_block_len",
    "lhc_block_len",
    "make_counts",
    "make_header",
    "node_ref",
]

# Header field layout (see module docstring).  Hot loops inline these as
# numeric literals; keep the two in sync.
POST_MASK = 0x3F
INFIX_SHIFT = 6
INFIX_MASK = 0x3F
HC_BIT = 1 << 12
CAP_SHIFT = 13
CAP_MASK = 0x3F
FREE_BIT = 1 << 63
# Counts word (at offset + 1).
NSUB_SHIFT = 0
NPOST_SHIFT = 21
COUNT_MASK = (1 << 21) - 1
_WORD = 8  # bytes per slab word


def make_header(
    post_len: int,
    infix_len: int,
    is_hc: bool,
    cap_log: int,
) -> int:
    """Pack one node header word (counts live in the next word)."""
    h = post_len | (infix_len << INFIX_SHIFT) | (cap_log << CAP_SHIFT)
    if is_hc:
        h |= HC_BIT
    return h


def make_counts(n_sub: int, n_post: int) -> int:
    """Pack one node counts word."""
    return n_sub | (n_post << NPOST_SHIFT)


def node_ref(offset: int) -> int:
    """Tagged slot ref pointing at a sub-node record."""
    return (offset << 1) | 1


def entry_ref(offset: int) -> int:
    """Tagged slot ref pointing at an entry record."""
    return offset << 1


def lhc_block_len(k: int, cap: int) -> int:
    """Words of an LHC node block with table capacity ``cap``."""
    return 2 + k + 2 * cap


def hc_block_len(k: int) -> int:
    """Words of an HC node block (``2**k`` direct slots)."""
    return 2 + k + (1 << k)


#: Every live arena, tracked weakly so the health collector below can
#: aggregate slab/free-list gauges without pinning trees in memory.
_LIVE_ARENAS: "weakref.WeakSet[NodeArena]" = weakref.WeakSet()


class NodeArena:
    """The two slabs plus the Python-object value pool of one tree."""

    __slots__ = (
        "k",
        "sentinel",
        "words",
        "entries",
        "values",
        "node_free",
        "entry_free",
        "value_free",
        "live_node_words",
        "live_entries",
        "n_nodes",
        "_sent_arrays",
        "__weakref__",
    )

    def __init__(self, k: int) -> None:
        self.k = k
        _LIVE_ARENAS.add(self)
        # Fills unused LHC address slots; sorts after every real address
        # (addresses are k-bit), so bisect over the full capacity works.
        self.sentinel = 1 << k
        self._sent_arrays: Dict[int, array] = {}
        # Word 0 / record 0 reserved: offset 0 means "null" everywhere.
        self.words = array("Q", (0,))
        self.entries = array("Q", bytes(_WORD * (k + 1)))
        # Slot 0 reserved for None so readers can do ``values[vref]``
        # unconditionally (vref 0 = "no value").
        self.values: List[Any] = [None]
        # block length -> head offset of the free list (0 = empty).
        self.node_free: Dict[int, int] = {}
        self.entry_free = 0
        self.value_free: List[int] = []
        # Live-footprint accounting for the space report / leak checks.
        self.live_node_words = 0
        self.live_entries = 0
        self.n_nodes = 0

    # -- node blocks -------------------------------------------------------

    def alloc_block(self, length: int) -> int:
        """A zeroed block of ``length`` words; recycles freed blocks."""
        head = self.node_free.get(length, 0)
        words = self.words
        if head:
            self.node_free[length] = words[head + 1]
            # Recycled blocks carry stale words; HC tables in particular
            # must start empty.
            words[head : head + length] = array("Q", bytes(_WORD * length))
            off = head
        else:
            off = len(words)
            words.frombytes(bytes(_WORD * length))
        self.live_node_words += length
        self.n_nodes += 1
        return off

    def free_block(self, off: int, length: int) -> None:
        """Recycle a node block onto its size-class free list."""
        words = self.words
        words[off] = FREE_BIT | length
        words[off + 1] = self.node_free.get(length, 0)
        self.node_free[length] = off
        self.live_node_words -= length
        self.n_nodes -= 1

    def block_len(self, off: int) -> int:
        """Length in words of the (live) block starting at ``off``."""
        h = self.words[off]
        if h & HC_BIT:
            return hc_block_len(self.k)
        return lhc_block_len(self.k, 1 << ((h >> 13) & 63))

    def sentinel_run(self, count: int) -> array:
        """A cached ``count``-long array of the address sentinel, for
        slice-filling freshly allocated LHC address regions."""
        run = self._sent_arrays.get(count)
        if run is None:
            run = array("Q", [self.sentinel]) * count
            self._sent_arrays[count] = run
        return run

    # -- entry records -----------------------------------------------------

    def new_entry(self, key: Tuple[int, ...], vref: int) -> int:
        """Store ``key`` + value ref as one record; returns its offset."""
        entries = self.entries
        off = self.entry_free
        if off:
            self.entry_free = entries[off]
            i = off
            for v in key:
                entries[i] = v
                i += 1
            entries[i] = vref
        else:
            off = len(entries)
            entries.extend(key)
            entries.append(vref)
        self.live_entries += 1
        return off

    def new_entry_val(self, key: Tuple[int, ...], value: Any) -> int:
        """``new_entry`` + ``store_value`` fused (the insert hot path)."""
        if value is None:
            vref = 0
        else:
            free = self.value_free
            if free:
                vref = free.pop()
                self.values[vref] = value
            else:
                vref = len(self.values)
                self.values.append(value)
        entries = self.entries
        off = self.entry_free
        if off:
            self.entry_free = entries[off]
            i = off
            for v in key:
                entries[i] = v
                i += 1
            entries[i] = vref
        else:
            off = len(entries)
            entries.extend(key)
            entries.append(vref)
        self.live_entries += 1
        return off

    def free_entry(self, off: int) -> None:
        """Recycle one entry record."""
        self.entries[off] = self.entry_free
        self.entry_free = off
        self.live_entries -= 1

    def entry_key(self, off: int) -> Tuple[int, ...]:
        """Decode one entry's key tuple."""
        entries = self.entries
        return tuple(entries[off : off + self.k])

    # -- values ------------------------------------------------------------

    def store_value(self, value: Any) -> int:
        """Intern ``value``; None is encoded as ref 0 (the reserved
        ``values[0]`` slot, so reads are a bare ``values[vref]``)."""
        if value is None:
            return 0
        free = self.value_free
        if free:
            i = free.pop()
            self.values[i] = value
        else:
            i = len(self.values)
            self.values.append(value)
        return i

    def load_value(self, vref: int) -> Any:
        """Resolve a value ref (0 decodes as None via the reserved slot)."""
        return self.values[vref]

    def drop_value(self, vref: int) -> None:
        """Release a value pool slot (no-op for the None encoding)."""
        if vref:
            self.values[vref] = None
            self.value_free.append(vref)

    # -- accounting and validation helpers ---------------------------------

    def capacity_bytes(self) -> int:
        """Raw slab capacity (what the process actually holds)."""
        return _WORD * (len(self.words) + len(self.entries))

    def live_bytes(self) -> int:
        """Bytes inside currently live node blocks and entry records."""
        return _WORD * (
            self.live_node_words + self.live_entries * (self.k + 1)
        )

    def free_block_offsets(self) -> Dict[int, List[int]]:
        """Walk every node free list; returns {block_len: [offsets]}.

        Used by the arena validator (free-list disjointness, marker
        checks) and the churn regression test.
        """
        out: Dict[int, List[int]] = {}
        words = self.words
        for length, head in self.node_free.items():
            seen: List[int] = []
            off = head
            while off:
                if words[off] != FREE_BIT | length:
                    raise AssertionError(
                        f"free block at {off} lost its marker "
                        f"(word {words[off]:#x}, expected length {length})"
                    )
                seen.append(off)
                off = words[off + 1]
            if seen:
                out[length] = seen
        return out

    def free_entry_offsets(self) -> List[int]:
        """All offsets on the entry free list."""
        out: List[int] = []
        entries = self.entries
        off = self.entry_free
        while off:
            out.append(off)
            off = entries[off]
        return out

    def iter_nodes(self, root: int) -> Iterator[int]:
        """Pre-order offsets of every node reachable from ``root``."""
        if not root:
            return
        k = self.k
        words = self.words
        stack = [root]
        while stack:
            off = stack.pop()
            yield off
            h = words[off]
            base = off + 2 + k
            if h & HC_BIT:
                for i in range(base, base + (1 << k)):
                    ref = words[i]
                    if ref & 1:
                        stack.append(ref >> 1)
            else:
                c = words[off + 1]
                n = (c & COUNT_MASK) + ((c >> NPOST_SHIFT) & COUNT_MASK)
                cap = 1 << ((h >> 13) & 63)
                for i in range(base + cap, base + cap + n):
                    ref = words[i]
                    if ref & 1:
                        stack.append(ref >> 1)


# ---------------------------------------------------------------------------
# Arena health gauges (registry collector)
# ---------------------------------------------------------------------------
#
# Fragmentation used to require running ``memory/report.py``; these
# gauges surface the same accounting through the metrics registry so
# ``repro.tool metrics`` shows it on a live process.  The collector
# only runs at exposition time (render/dump), so steady-state cost is
# zero; the free-list walks are O(free blocks).


def _collect_arena_health() -> None:
    from repro.obs.metrics import get_registry

    registry = get_registry()
    instances = registry.gauge(
        "repro_arena_instances",
        "Live NodeArena objects in this process.",
    )
    slab_bytes = registry.gauge(
        "repro_arena_slab_bytes",
        "Aggregate slab footprint across live arenas "
        "(capacity = allocated, live = inside live blocks/records).",
        labelnames=("kind",),
    )
    nodes = registry.gauge(
        "repro_arena_nodes",
        "Live node blocks across live arenas.",
    )
    entries_g = registry.gauge(
        "repro_arena_entries",
        "Entry records across live arenas, by state.",
        labelnames=("state",),
    )
    free_blocks = registry.gauge(
        "repro_arena_free_blocks",
        "Node free-list length per block size class (words).",
        labelnames=("block_len",),
    )
    free_values = registry.gauge(
        "repro_arena_free_values",
        "Recyclable slots in the value pools of live arenas.",
    )

    arenas = list(_LIVE_ARENAS)
    capacity = live = n_nodes = live_entries = 0
    free_entries = n_free_values = 0
    per_len: Dict[int, int] = {}
    for arena in arenas:
        try:
            capacity += arena.capacity_bytes()
            live += arena.live_bytes()
            n_nodes += arena.n_nodes
            live_entries += arena.live_entries
            free_entries += len(arena.free_entry_offsets())
            n_free_values += len(arena.value_free)
            for length, offs in arena.free_block_offsets().items():
                per_len[length] = per_len.get(length, 0) + len(offs)
        except Exception:
            # An arena mutating on another thread can present a torn
            # free list; skip it rather than fail the exposition.
            continue

    instances.set(len(arenas))
    slab_bytes.labels("capacity").set(capacity)
    slab_bytes.labels("live").set(live)
    nodes.set(n_nodes)
    entries_g.labels("live").set(live_entries)
    entries_g.labels("free").set(free_entries)
    free_values.set(n_free_values)
    # Zero stale size classes (children persist across resets), then
    # publish the current census.
    for _, child in free_blocks.children():
        child.set(0)
    for length, count in sorted(per_len.items()):
        free_blocks.labels(str(length)).set(count)


def _register_arena_collector() -> None:
    from repro.obs.metrics import get_registry

    get_registry().add_collector("arena_health", _collect_arena_health)


_register_arena_collector()
