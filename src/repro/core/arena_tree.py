"""The arena-backed mutable PH-tree engine (``layout="arena"``).

:class:`ArenaPHTree` implements the full :class:`~repro.core.phtree.PHTree`
API on top of the packed slab layout of :mod:`repro.core.arena`: nodes are
fixed-layout records inside one ``array('Q')`` pool, addressed by integer
offsets, with HC and LHC slot tables inline in the slab.  The logical
structure -- which nodes exist, their post_len/infix/prefix, their HC or
LHC representation under the paper's Section 3.2 size model -- is
bit-identical to the object engine's (the PR-5 fuzzer runs both in
lockstep and the validator cross-checks a materialised shadow), only the
storage changes:

- a descent reads header/prefix/slot words by index instead of chasing
  ``Node``/``Entry`` objects and list containers,
- node growth and HC<->LHC switches *reallocate the record* (blocks are
  immutable in size), so every mutation helper patches the one parent ref
  word -- the tree's at-most-two-nodes-touched update property is what
  makes this cheap,
- merged/deleted nodes recycle through per-size free lists instead of
  waiting for the garbage collector.

``freeze()`` detects this engine and serialises straight from the slabs
(no per-node object walk), which is what makes snapshot republish in the
parallel layer near-free; the ``root`` property materialises a shadow
object tree on demand for the read-only consumers that want one
(stats, the validator, the memory model).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core import batch as batch_mod
from repro.core import knn as knn_mod
from repro.core.arena import (
    CAP_SHIFT,
    HC_BIT,
    NodeArena,
    hc_block_len,
    lhc_block_len,
    make_counts,
    make_header,
)
from repro.core.hypercube import (
    HCContainer,
    LHCContainer,
    max_hc_dimensions,
    prefer_hc,
)
from repro.core.node import Entry, Node
from repro.core.phtree import PHTree
from repro.core.specialize import ARENA_REMOVE_MISS
from repro.obs import heat as _heat
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt
from time import perf_counter as _perf_counter

__all__ = ["ArenaPHTree"]

_MISSING = object()


class ArenaPHTree(PHTree):
    """A :class:`PHTree` whose nodes live in a packed slab arena.

    Constructed through ``PHTree(..., layout="arena")``; behaves
    identically to the object engine for every operation (same results,
    same iteration order, same tree shape under the HC/LHC size model).
    Coordinates must fit one slab word, so ``width`` is capped at 64.
    """

    __slots__ = (
        "_arena",
        "_root_off",
        "_hc_want",
        "_split_want",
        "_mut_epoch",
        "_plan_cache",
        "_plan_epoch",
    )

    def __init__(
        self,
        dims: int,
        width: "int | Sequence[int]" = 64,
        hc_mode: str = "auto",
        hc_hysteresis: float = 0.0,
        specialize: bool = True,
        layout: Optional[str] = None,
    ) -> None:
        super().__init__(
            dims,
            width,
            hc_mode=hc_mode,
            hc_hysteresis=hc_hysteresis,
            specialize=specialize,
            layout="arena" if layout is None else layout,
        )
        if self._width > 64:
            raise ValueError(
                f"layout='arena' packs coordinates into 64-bit slab "
                f"words; width {self._width} > 64 needs layout='object'"
            )
        if dims > 63:
            raise ValueError(
                f"layout='arena' stores k-bit hypercube addresses plus "
                f"the 2**k sentinel in 64-bit slab words; dims {dims} > "
                f"63 needs layout='object'"
            )
        self._arena = NodeArena(dims)
        self._root_off = 0
        # Memoised HC-vs-LHC decisions: the representation choice is a
        # pure function of (n_sub, n_post, post_len, currently_hc) for a
        # fixed tree (k, mode, hysteresis), and the mutation path asks
        # it on every insert.
        self._hc_want: dict = {}
        self._split_want: dict = {}
        # Node-plan cache for the specialized read kernels: maps node
        # offset -> decoded probe/scan plan (see specialize.py).  Any
        # mutation bumps ``_mut_epoch``; readers clear the cache lazily
        # when their recorded ``_plan_epoch`` falls behind, so repeated
        # scans over a quiescent tree skip the per-node header decode
        # and slot-table hoist entirely.
        self._mut_epoch = 0
        self._plan_cache: dict = {}
        self._plan_epoch = -1

    # -- layout / shadow-object surface ------------------------------------

    @property
    def layout(self) -> str:
        return "arena"

    @property
    def root(self) -> Optional[Node]:
        """A materialised shadow of the root (read-only use).

        Rebuilt from the slabs on every access: object identity is not
        stable across calls, and mutating the shadow does not touch the
        tree.  Exists for the object-graph consumers (stats, validator,
        memory model); hot paths never call it.
        """
        off = self._root_off
        if not off:
            return None
        return self._materialize(off)

    def _materialize(self, off: int) -> Node:
        arena = self._arena
        words = arena.words
        k = self._dims
        h = words[off]
        c = words[off + 1]
        node = Node(
            h & 63, (h >> 6) & 63, tuple(words[off + 2 : off + 2 + k])
        )
        node._n_sub = c & 2097151
        node._n_post = (c >> 21) & 2097151
        base = off + 2 + k
        if h & 4096:
            cont: Any = HCContainer(k)
            slots = cont._slots
            occupied = cont._occupied
            count = 0
            for a in range(1 << k):
                ref = words[base + a]
                if ref:
                    slots[a] = (
                        self._materialize(ref >> 1)
                        if ref & 1
                        else self._mat_entry(ref >> 1)
                    )
                    occupied.add(a)
                    count += 1
            cont._count = count
        else:
            cont = LHCContainer()
            addresses = cont._addresses
            slots = cont._slots
            n = node._n_sub + node._n_post
            cap = 1 << ((h >> 13) & 63)
            for i in range(n):
                addresses.append(words[base + i])
                ref = words[base + cap + i]
                slots.append(
                    self._materialize(ref >> 1)
                    if ref & 1
                    else self._mat_entry(ref >> 1)
                )
        node.container = cont
        return node

    def _mat_entry(self, e: int) -> Entry:
        arena = self._arena
        return Entry(
            arena.entry_key(e),
            arena.load_value(arena.entries[e + self._dims]),
        )

    def nodes(self) -> Iterator[Node]:
        """Iterate a materialised shadow's nodes (pre-order)."""
        root = self.root
        if root is None:
            return
        stack = [root]
        while stack:
            node = stack.pop()
            yield node
            for _, slot in node.items():
                if isinstance(slot, Node):
                    stack.append(slot)

    def _adopt_root(self, root: Optional[Node], size: int) -> None:
        """Replace this tree's content with an object-engine subtree.

        Used by the consumers that construct ``Node`` graphs directly
        (deserialisation honouring stored HC/LHC flags) and then hand
        them to whatever engine the tree runs: the graph is re-recorded
        into a fresh arena, representation flags preserved exactly.
        """
        self._arena = NodeArena(self._dims)
        self._root_off = 0 if root is None else self._adopt_node(root)
        self._size = size

    def _adopt_node(self, node: Node) -> int:
        arena = self._arena
        k = self._dims
        pairs: List[Tuple[int, int]] = []
        n_sub = 0
        n_post = 0
        for a, slot in node.items():
            if isinstance(slot, Node):
                pairs.append((a, (self._adopt_node(slot) << 1) | 1))
                n_sub += 1
            else:
                pairs.append(
                    (
                        a,
                        arena.new_entry(
                            slot.key, arena.store_value(slot.value)
                        )
                        << 1,
                    )
                )
                n_post += 1
        n = len(pairs)
        if node.container.is_hc:
            off = arena.alloc_block(hc_block_len(k))
            words = arena.words
            words[off] = make_header(
                node.post_len, node.infix_len, True, 0
            )
            i = off + 2
            for v in node.prefix:
                words[i] = v
                i += 1
            base = off + 2 + k
            for a, ref in pairs:
                words[base + a] = ref
        else:
            cap_log = (n - 1).bit_length() if n > 2 else 1
            cap = 1 << cap_log
            off = self._alloc_lhc(
                node.post_len, node.infix_len, node.prefix, cap_log
            )
            words = arena.words
            i = off + 2 + k
            for a, ref in pairs:
                words[i] = a
                words[i + cap] = ref
                i += 1
        words[off + 1] = make_counts(n_sub, n_post)
        return off

    # -- slab mutation helpers ---------------------------------------------
    #
    # Every helper returns/patches offsets because growth, shrink and
    # HC<->LHC switches reallocate the node's block.  ``pidx`` is the
    # absolute slab index of the parent's ref word for the node being
    # mutated (-1 for the root, whose ref is ``self._root_off``).

    def _alloc_lhc(
        self,
        post_len: int,
        infix_len: int,
        prefix: Sequence[int],
        cap_log: int,
    ) -> int:
        arena = self._arena
        k = self._dims
        cap = 1 << cap_log
        off = arena.alloc_block(lhc_block_len(k, cap))
        words = arena.words
        words[off] = make_header(post_len, infix_len, False, cap_log)
        i = off + 2
        for v in prefix:
            words[i] = v
            i += 1
        base = off + 2 + k
        words[base : base + cap] = arena.sentinel_run(cap)
        return off

    def _patch_parent(self, pidx: int, new_off: int) -> None:
        if pidx < 0:
            self._root_off = new_off
        else:
            self._arena.words[pidx] = (new_off << 1) | 1

    def _want_hc(
        self, n_sub: int, n_post: int, post: int, currently_hc: bool
    ) -> bool:
        """Memoised ``Node._maybe_switch`` decision (see ``prefer_hc``)."""
        # Flat int key: counts are 21-bit, post 6-bit, plus the side bit.
        key = (((n_sub << 21) | n_post) << 7) | (post << 1) | currently_hc
        want = self._hc_want.get(key)
        if want is None:
            mode = self._hc_mode
            if mode == "lhc":
                want = False
            elif mode == "hc":
                want = self._dims <= max_hc_dimensions()
            else:
                want = prefer_hc(
                    self._dims,
                    n_sub,
                    n_post,
                    post * self._dims,
                    hysteresis=self._hysteresis,
                    currently_hc=currently_hc,
                )
            self._hc_want[key] = want
        return want

    def _maybe_switch_off(self, off: int) -> int:
        """Re-evaluate the node's representation; returns its (possibly
        new) offset.  Mirrors ``Node._maybe_switch`` decision for
        decision, plus an LHC shrink step the object engine gets for free
        from ``list`` -- none of which changes the logical layout."""
        arena = self._arena
        words = arena.words
        k = self._dims
        h = words[off]
        c = words[off + 1]
        n_sub = c & 2097151
        n_post = (c >> 21) & 2097151
        currently_hc = bool(h & 4096)
        want_hc = self._want_hc(n_sub, n_post, h & 63, currently_hc)
        n = n_sub + n_post
        if want_hc == currently_hc:
            if not currently_hc:
                cap_log = (h >> 13) & 63
                if cap_log > 1 and n <= (1 << cap_log) >> 2:
                    return self._resize_lhc(off, h, n, cap_log - 1)
            return off
        base = off + 2 + k
        if want_hc:
            cap = 1 << ((h >> 13) & 63)
            noff = arena.alloc_block(hc_block_len(k))
            words = arena.words
            nbase = noff + 2 + k
            words[noff:nbase] = words[off:base]
            for i in range(n):
                words[nbase + words[base + i]] = words[base + cap + i]
            arena.free_block(off, lhc_block_len(k, cap))
            words[noff] = (h & ~(63 << CAP_SHIFT)) | HC_BIT
            if _rt.enabled:
                _probes.switch_to_hc.inc()
                _recorder.record("hc_lhc_switch", to="hc")
            return noff
        cap_log = (n - 1).bit_length() if n > 2 else 1
        cap = 1 << cap_log
        noff = arena.alloc_block(lhc_block_len(k, cap))
        words = arena.words
        nbase = noff + 2 + k
        words[noff:nbase] = words[off:base]
        j = 0
        for a in range(1 << k):
            ref = words[base + a]
            if ref:
                words[nbase + j] = a
                words[nbase + cap + j] = ref
                j += 1
        words[nbase + j : nbase + cap] = arena.sentinel_run(cap - j)
        arena.free_block(off, hc_block_len(k))
        words[noff] = (h & ~(HC_BIT | (63 << CAP_SHIFT))) | (
            cap_log << CAP_SHIFT
        )
        if _rt.enabled:
            _probes.switch_to_lhc.inc()
            _recorder.record("hc_lhc_switch", to="lhc")
        return noff

    def _resize_lhc(
        self, off: int, h: int, n: int, cap_log: int
    ) -> int:
        """Move an LHC node into a ``2**cap_log``-slot block."""
        arena = self._arena
        k = self._dims
        cap = 1 << cap_log
        noff = arena.alloc_block(lhc_block_len(k, cap))
        words = arena.words
        base = off + 2 + k
        nbase = noff + 2 + k
        old_cap = 1 << ((h >> 13) & 63)
        words[noff:nbase] = words[off:base]
        words[nbase : nbase + n] = words[base : base + n]
        words[nbase + n : nbase + cap] = arena.sentinel_run(cap - n)
        words[nbase + cap : nbase + cap + n] = words[
            base + old_cap : base + old_cap + n
        ]
        arena.free_block(off, lhc_block_len(k, old_cap))
        words[noff] = (words[noff] & ~(63 << CAP_SHIFT)) | (
            cap_log << CAP_SHIFT
        )
        return noff

    def _put_ref(self, off: int, pidx: int, a: int, ref: int) -> int:
        """Insert-or-replace the slot at address ``a`` and patch the
        parent's ref word when the block moves; returns the node's
        possibly new offset."""
        new_off = self._put_ref_unlinked(off, a, ref)
        if new_off != off:
            self._patch_parent(pidx, new_off)
        return new_off

    def _put_ref_unlinked(self, off: int, a: int, ref: int) -> int:
        """Insert-or-replace the slot at address ``a`` (the arena twin of
        ``Node.put_slot``); returns the node's possibly new offset.  The
        caller owns re-linking when the block moves."""
        arena = self._arena
        words = arena.words
        k = self._dims
        h = words[off]
        c = words[off + 1]
        n_sub = c & 2097151
        n_post = (c >> 21) & 2097151
        target = off
        if h & 4096:
            idx = off + 2 + k + a
            prev = words[idx]
            words[idx] = ref
        else:
            n = n_sub + n_post
            base = off + 2 + k
            cap = 1 << ((h >> 13) & 63)
            pos = bisect_left(words, a, base, base + cap)
            if pos < base + cap and words[pos] == a:
                idx = pos + cap
                prev = words[idx]
                words[idx] = ref
            else:
                prev = 0
                if n < cap:
                    # Shift the [pos, n) tail of both regions up one.
                    end = base + n
                    if pos != end:
                        words[pos + 1 : end + 1] = words[pos:end]
                        words[pos + cap + 1 : end + cap + 1] = words[
                            pos + cap : end + cap
                        ]
                    words[pos] = a
                    words[pos + cap] = ref
                else:
                    # Grow into the next size class: copy with the new
                    # pair spliced in, recycle the old block.
                    cap_log = (h >> 13) & 63
                    ncap = 2 * cap
                    noff = arena.alloc_block(lhc_block_len(k, ncap))
                    words = arena.words
                    nbase = noff + 2 + k
                    words[noff:nbase] = words[off:base]
                    i = pos - base
                    if i:
                        words[nbase : nbase + i] = words[base:pos]
                        words[nbase + ncap : nbase + ncap + i] = words[
                            base + cap : pos + cap
                        ]
                    words[nbase + i] = a
                    words[nbase + ncap + i] = ref
                    if i != n:
                        words[nbase + i + 1 : nbase + n + 1] = words[
                            pos : base + n
                        ]
                        words[
                            nbase + ncap + i + 1 : nbase + ncap + n + 1
                        ] = words[pos + cap : base + cap + n]
                    words[
                        nbase + n + 1 : nbase + ncap
                    ] = arena.sentinel_run(ncap - n - 1)
                    arena.free_block(off, lhc_block_len(k, cap))
                    words[noff] = (words[noff] & ~(63 << CAP_SHIFT)) | (
                        (cap_log + 1) << CAP_SHIFT
                    )
                    target = noff
        if prev:
            if prev & 1:
                n_sub -= 1
            else:
                n_post -= 1
        if ref & 1:
            n_sub += 1
        else:
            n_post += 1
        words[target + 1] = n_sub | (n_post << 21)
        # Inline no-switch fast path; the slow helper re-derives state.
        h = words[target]
        if h & 4096:
            if self._want_hc(n_sub, n_post, h & 63, True):
                return target
        elif not self._want_hc(n_sub, n_post, h & 63, False):
            cap_log = (h >> 13) & 63
            if cap_log <= 1 or n_sub + n_post > (1 << cap_log) >> 2:
                return target
        return self._maybe_switch_off(target)

    def _remove_ref(self, off: int, pidx: int, a: int) -> int:
        """Clear the (occupied) slot at address ``a``; returns the node's
        possibly new offset (the arena twin of ``Node.remove_slot``)."""
        arena = self._arena
        words = arena.words
        k = self._dims
        h = words[off]
        c = words[off + 1]
        n_sub = c & 2097151
        n_post = (c >> 21) & 2097151
        if h & 4096:
            idx = off + 2 + k + a
            prev = words[idx]
            words[idx] = 0
        else:
            n = n_sub + n_post
            base = off + 2 + k
            cap = 1 << ((h >> 13) & 63)
            pos = bisect_left(words, a, base, base + cap)
            end = base + n
            prev = words[pos + cap]
            if pos + 1 != end:
                words[pos : end - 1] = words[pos + 1 : end]
                words[pos + cap : end + cap - 1] = words[
                    pos + cap + 1 : end + cap
                ]
            words[end - 1] = arena.sentinel
        if prev & 1:
            n_sub -= 1
        else:
            n_post -= 1
        words[off + 1] = n_sub | (n_post << 21)
        new_off = self._maybe_switch_off(off)
        if new_off != off:
            self._patch_parent(pidx, new_off)
        return new_off

    # -- put ---------------------------------------------------------------

    def _put_root(self, key: Tuple[int, ...], value: Any) -> None:
        """First insert: create the root and store one entry."""
        arena = self._arena
        k = self._dims
        post = self._width - 1
        off = self._alloc_lhc(post, 0, (0,) * k, 1)
        self._root_off = off
        a = 0
        for v in key:
            a = (a << 1) | ((v >> post) & 1)
        self._put_ref(
            off, -1, a, arena.new_entry(key, arena.store_value(value)) << 1
        )
        self._size = 1
        return None

    def _put_new_entry(
        self,
        off: int,
        pidx: int,
        h: int,
        pos: int,
        a: int,
        key: Tuple[int, ...],
        value: Any,
    ) -> None:
        """Insert a fresh entry into node ``off`` (header ``h``) at the
        slot position the descent already located: for an HC node ``pos``
        is the ref word's index, for an LHC node the bisect insertion
        point inside the address region."""
        arena = self._arena
        words = arena.words
        # Inline ``NodeArena.new_entry_val`` (the insert hot path).
        if value is None:
            vref = 0
        else:
            vfree = arena.value_free
            if vfree:
                vref = vfree.pop()
                arena.values[vref] = value
            else:
                vref = len(arena.values)
                arena.values.append(value)
        entries = arena.entries
        eoff = arena.entry_free
        if eoff:
            arena.entry_free = entries[eoff]
            i = eoff
            for v in key:
                entries[i] = v
                i += 1
            entries[i] = vref
        else:
            eoff = len(entries)
            entries.extend(key)
            entries.append(vref)
        arena.live_entries += 1
        ref = eoff << 1
        c = words[off + 1]
        n_sub = c & 2097151
        n_post = ((c >> 21) & 2097151) + 1
        target = off
        if h & 4096:
            words[pos] = ref
        else:
            k = self._dims
            n = n_sub + n_post - 1
            base = off + 2 + k
            cap = 1 << ((h >> 13) & 63)
            if n < cap:
                end = base + n
                if pos != end:
                    if pos + 1 == end:
                        words[end] = words[pos]
                        words[end + cap] = words[pos + cap]
                    else:
                        words[pos + 1 : end + 1] = words[pos:end]
                        words[pos + cap + 1 : end + cap + 1] = words[
                            pos + cap : end + cap
                        ]
                words[pos] = a
                words[pos + cap] = ref
            else:
                # Grow into the next size class: copy with the new pair
                # spliced in, recycle the old block.
                cap_log = (h >> 13) & 63
                ncap = 2 * cap
                noff = arena.alloc_block(lhc_block_len(k, ncap))
                words = arena.words
                nbase = noff + 2 + k
                words[noff:nbase] = words[off:base]
                i = pos - base
                if i:
                    words[nbase : nbase + i] = words[base:pos]
                    words[nbase + ncap : nbase + ncap + i] = words[
                        base + cap : pos + cap
                    ]
                words[nbase + i] = a
                words[nbase + ncap + i] = ref
                if i != n:
                    words[nbase + i + 1 : nbase + n + 1] = words[
                        pos : base + n
                    ]
                    words[
                        nbase + ncap + i + 1 : nbase + ncap + n + 1
                    ] = words[pos + cap : base + cap + n]
                words[
                    nbase + n + 1 : nbase + ncap
                ] = arena.sentinel_run(ncap - n - 1)
                arena.free_block(off, lhc_block_len(k, cap))
                words[noff] = (words[noff] & ~(63 << CAP_SHIFT)) | (
                    (cap_log + 1) << CAP_SHIFT
                )
                target = noff
        words[target + 1] = n_sub | (n_post << 21)
        self._size += 1
        # Inline no-switch fast path; the slow helper re-derives state.
        if h & 4096:
            if self._want_hc(n_sub, n_post, h & 63, True):
                return None
        elif not self._want_hc(n_sub, n_post, h & 63, False):
            if n_post + n_sub > (1 << ((h >> 13) & 63)) >> 2:
                new_off = target
                if new_off != off:
                    self._patch_parent(pidx, new_off)
                return None
        new_off = self._maybe_switch_off(target)
        if new_off != off:
            self._patch_parent(pidx, new_off)
        return None

    def _replace_value(self, e: int, value: Any) -> Any:
        """Overwrite entry ``e``'s value; returns the previous value."""
        arena = self._arena
        entries = arena.entries
        i = e + self._dims
        vref = entries[i]
        if vref:
            previous = arena.values[vref]
            if value is not None:
                arena.values[vref] = value
            else:
                arena.drop_value(vref)
                entries[i] = 0
            return previous
        if value is not None:
            entries[i] = arena.store_value(value)
        return None

    def _split_entry(
        self,
        off: int,
        pidx: int,
        idx: int,
        h: int,
        old_ref: int,
        a_old: int,
        a_new: int,
        key: Tuple[int, ...],
        value: Any,
        conflict: int,
    ) -> None:
        """``_split`` specialised for a displaced *entry* whose mid-node
        addresses the caller already extracted (the specialized kernel
        holds both keys unpacked in locals, so recomputing them here
        would re-read the slab)."""
        arena = self._arena
        words = arena.words
        k = self._dims
        shift = conflict + 1
        # Inline ``NodeArena.new_entry_val`` (the insert hot path).
        if value is None:
            vref = 0
        else:
            vfree = arena.value_free
            if vfree:
                vref = vfree.pop()
                arena.values[vref] = value
            else:
                vref = len(arena.values)
                arena.values.append(value)
        entries = arena.entries
        eoff = arena.entry_free
        if eoff:
            arena.entry_free = entries[eoff]
            i = eoff
            for v in key:
                entries[i] = v
                i += 1
            entries[i] = vref
        else:
            eoff = len(entries)
            entries.extend(key)
            entries.append(vref)
        arena.live_entries += 1
        new_ref = eoff << 1
        # Replay the object engine's two put_slot decisions (displaced
        # entry first, new entry second); the second is the final shape.
        # The pair is a pure function of the conflict level.
        ww = self._split_want.get(conflict)
        if ww is None:
            w1 = self._want_hc(0, 1, conflict, False)
            ww = (w1, self._want_hc(0, 2, conflict, w1))
            self._split_want[conflict] = ww
        w1, w2 = ww
        if _rt.enabled:
            if w1:
                _probes.switch_to_hc.inc()
            if w2 != w1:
                (_probes.switch_to_hc if w2 else _probes.switch_to_lhc).inc()
            _recorder.record("split", level=conflict)
        infix_bits = ((h & 63) - 1 - conflict) << 6
        if w2:
            mid = arena.alloc_block(hc_block_len(k))
            words[mid] = conflict | infix_bits | 4096
            base = mid + 2 + k
            words[base + a_old] = old_ref
            words[base + a_new] = new_ref
        else:
            # Inline alloc of the cap-2 LHC block: every one of its
            # ``2 + k + 4`` words is written below, so recycled blocks
            # need no zero-fill and ``alloc_block``'s is skipped.
            length = k + 6
            free_map = arena.node_free
            mid = free_map.get(length, 0)
            if mid:
                free_map[length] = words[mid + 1]
            else:
                mid = len(words)
                words.frombytes(bytes(8 * length))
            arena.live_node_words += length
            arena.n_nodes += 1
            words[mid] = conflict | infix_bits | 8192
            base = mid + 2 + k
            if a_old < a_new:
                words[base] = a_old
                words[base + 1] = a_new
                words[base + 2] = old_ref
                words[base + 3] = new_ref
            else:
                words[base] = a_new
                words[base + 1] = a_old
                words[base + 2] = new_ref
                words[base + 3] = old_ref
        words[mid + 1] = 2 << 21
        i = mid + 2
        for v in key:
            words[i] = (v >> shift) << shift
            i += 1
        # Replacing the entry's ref word with the mid node flips one
        # postfix slot into a sub-node slot; only then can the parent's
        # representation decision change (see ``_split``).
        words[idx] = (mid << 1) | 1
        c = words[off + 1]
        n_sub = (c & 2097151) + 1
        n_post = ((c >> 21) & 2097151) - 1
        words[off + 1] = n_sub | (n_post << 21)
        if h & 4096:
            switch = not self._want_hc(n_sub, n_post, h & 63, True)
        else:
            switch = self._want_hc(n_sub, n_post, h & 63, False)
        if switch:
            new_off = self._maybe_switch_off(off)
            if new_off != off:
                self._patch_parent(pidx, new_off)
        self._size += 1
        return None

    def _split(
        self,
        off: int,
        pidx: int,
        idx: int,
        h: int,
        old_ref: int,
        key: Tuple[int, ...],
        value: Any,
        conflict: int,
    ) -> None:
        """Splice a new node at bit position ``conflict`` between node
        ``off`` (header ``h``) and the slot at ref-word index ``idx`` (a
        sub-node whose prefix diverges, or an entry with another key)."""
        arena = self._arena
        words = arena.words
        k = self._dims
        parent_post = h & 63
        shift = conflict + 1
        a_old = 0
        a_new = 0
        if old_ref & 1:
            child = old_ref >> 1
            ch = words[child]
            # The displaced sub-node keeps its post_len; only the infix
            # between it and the new mid node shrinks.
            words[child] = (ch & ~(63 << 6)) | (
                (conflict - 1 - (ch & 63)) << 6
            )
            src = child + 2
            d = 0
            for v in key:
                a_old = (a_old << 1) | ((words[src + d] >> conflict) & 1)
                a_new = (a_new << 1) | ((v >> conflict) & 1)
                d += 1
            old_is_node = 1
        else:
            e = old_ref >> 1
            entries = arena.entries
            d = 0
            for v in key:
                a_old = (a_old << 1) | ((entries[e + d] >> conflict) & 1)
                a_new = (a_new << 1) | ((v >> conflict) & 1)
                d += 1
            old_is_node = 0
        new_ref = arena.new_entry_val(key, value) << 1
        # The object engine fills the mid node with two put_slot calls
        # (displaced slot first, new entry second), re-deciding HC/LHC
        # after each; replay those two decisions, then write the final
        # shape in a single pass.
        w1 = self._want_hc(old_is_node, 1 - old_is_node, conflict, False)
        w2 = self._want_hc(old_is_node, 2 - old_is_node, conflict, w1)
        if _rt.enabled:
            if w1:
                _probes.switch_to_hc.inc()
            if w2 != w1:
                (_probes.switch_to_hc if w2 else _probes.switch_to_lhc).inc()
            _recorder.record("split", level=conflict)
        infix_bits = (parent_post - 1 - conflict) << 6
        if w2:
            mid = arena.alloc_block(hc_block_len(k))
            words = arena.words
            words[mid] = conflict | infix_bits | 4096
            base = mid + 2 + k
            words[base + a_old] = old_ref
            words[base + a_new] = new_ref
        else:
            mid = arena.alloc_block(2 + k + 4)  # lhc_block_len(k, cap 2)
            words = arena.words
            words[mid] = conflict | infix_bits | (1 << 13)
            base = mid + 2 + k
            if a_old < a_new:
                words[base] = a_old
                words[base + 1] = a_new
                words[base + 2] = old_ref
                words[base + 3] = new_ref
            else:
                words[base] = a_new
                words[base + 1] = a_old
                words[base + 2] = new_ref
                words[base + 3] = old_ref
        words[mid + 1] = old_is_node | ((2 - old_is_node) << 21)
        i = mid + 2
        for v in key:
            words[i] = (v >> shift) << shift
            i += 1
        # Hook the mid node up by overwriting the displaced slot's ref
        # word in place -- a replace never moves the parent block.  The
        # counts only change when an entry became a sub-node, and only
        # then can the replayed ``put_slot`` decision flip the parent's
        # representation (``Node.put_slot`` re-evaluates it either way,
        # but with unchanged counts the decision is already in force).
        words[idx] = (mid << 1) | 1
        if not old_is_node:
            c = words[off + 1]
            n_sub = (c & 2097151) + 1
            n_post = ((c >> 21) & 2097151) - 1
            words[off + 1] = n_sub | (n_post << 21)
            if h & 4096:
                switch = not self._want_hc(n_sub, n_post, h & 63, True)
            else:
                switch = self._want_hc(n_sub, n_post, h & 63, False)
            if switch:
                new_off = self._maybe_switch_off(off)
                if new_off != off:
                    self._patch_parent(pidx, new_off)
        self._size += 1
        return None

    def _put_above(
        self, key: Tuple[int, ...], value: Any, conflict: int
    ) -> None:
        """Second pass of the blind PATRICIA insert: the specialized
        descent skipped the per-level infix checks and discovered -- from
        one full comparison at the bottom -- that ``key`` diverges from
        the tree at bit ``conflict``, above the node it reached.  Walk
        down again (addresses only) to the slot whose infix spans that
        bit and split there.

        ``conflict`` can never equal a path node's ``post_len`` (the
        first pass descended by the key's own address bits, so the tree
        agrees with the key at every address bit along the path), which
        is why the strict ``<`` comparison below finds exactly the slot
        the eagerly-checking descent would have split.
        """
        arena = self._arena
        words = arena.words
        k = self._dims
        off = self._root_off
        pidx = -1
        h = words[off]
        while True:
            post = h & 63
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            if h & 4096:
                idx = off + 2 + k + a
            elif h < 16384:
                base = off + 2 + k
                idx = base + 2 if words[base] == a else base + 3
            else:
                base = off + 2 + k
                end = base + (1 << ((h >> 13) & 63))
                pos = bisect_left(words, a, base, end)
                idx = pos + end - base
            ref = words[idx]
            child = ref >> 1
            ch = words[child]
            if (ch & 63) < conflict:
                return self._split(
                    off, pidx, idx, h, ref, key, value, conflict
                )
            pidx = idx
            off = child
            h = ch

    def put(self, key: Sequence[int], value: Any = None) -> Any:
        self._mut_epoch += 1
        spec = self._spec
        if spec is not None and not _rt.enabled:
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            return spec.arena_put(self, checked, value)
        key = self._check_key(key)
        obs = _rt.enabled
        if obs:
            _probes.ops_put.inc()
            _heat.record(key, self._width, "put")
        arena = self._arena
        words = arena.words
        k = self._dims
        off = self._root_off
        if not off:
            self._put_root(key, value)
            if obs:
                self._probe_write(depth=1, created=1, inserted=True)
            return None
        pidx = -1
        depth = 1
        while True:
            h = words[off]
            post = h & 63
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            if h & 4096:
                idx = off + 2 + k + a
                ref = words[idx]
                pos = idx
            else:
                base = off + 2 + k
                cap = 1 << ((h >> 13) & 63)
                pos = bisect_left(words, a, base, base + cap)
                if pos < base + cap and words[pos] == a:
                    idx = pos + cap
                    ref = words[idx]
                else:
                    ref = 0
                    idx = -1
            if not ref:
                self._put_new_entry(off, pidx, h, pos, a, key, value)
                if obs:
                    self._probe_write(depth, created=0, inserted=True)
                return None
            if ref & 1:
                child = ref >> 1
                shift = (words[child] & 63) + 1
                conflict = -1
                src = child + 2
                d = 0
                for v in key:
                    diff = (v >> shift) ^ (words[src + d] >> shift)
                    if diff:
                        pos = diff.bit_length() - 1 + shift
                        if pos > conflict:
                            conflict = pos
                    d += 1
                if conflict < 0:
                    pidx = idx
                    off = child
                    depth += 1
                    continue
                self._split(off, pidx, idx, h, ref, key, value, conflict)
                if obs:
                    self._probe_write(depth + 1, created=1, inserted=True)
                return None
            e = ref >> 1
            entries = arena.entries
            d = 0
            conflict = -1
            for v in key:
                diff = entries[e + d] ^ v
                if diff:
                    pos = diff.bit_length() - 1
                    if pos > conflict:
                        conflict = pos
                d += 1
            if conflict < 0:
                previous = self._replace_value(e, value)
                if obs:
                    self._probe_write(depth, created=0, inserted=False)
                return previous
            self._split(off, pidx, idx, h, ref, key, value, conflict)
            if obs:
                self._probe_write(depth + 1, created=1, inserted=True)
            return None

    # -- point reads -------------------------------------------------------

    def _find_entry_off(self, key: Tuple[int, ...]) -> int:
        """Entry record offset for ``key``, or -1 (generic descent).

        Blind PATRICIA descent: infix checks are skipped on the way down
        -- a mismatch just steers into a subtree that cannot contain the
        key, and the full-key comparison at the reached entry (or an
        empty slot) settles membership.  ``post_len`` strictly shrinks,
        so the walk terminates regardless.
        """
        arena = self._arena
        words = arena.words
        k = self._dims
        off = self._root_off
        if not off:
            return -1
        h = words[off]
        while True:
            post = h & 63
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            if h & 4096:
                ref = words[off + 2 + k + a]
            else:
                base = off + 2 + k
                end = base + (1 << ((h >> 13) & 63))
                pos = bisect_left(words, a, base, end)
                if pos < end and words[pos] == a:
                    ref = words[pos + end - base]
                else:
                    return -1
            if not ref:
                return -1
            if ref & 1:
                off = ref >> 1
                h = words[off]
                continue
            e = ref >> 1
            entries = arena.entries
            d = 0
            for v in key:
                if entries[e + d] != v:
                    return -1
                d += 1
            return e

    def _find_entry_counted_off(self, key: Tuple[int, ...]) -> int:
        """Instrumented twin of :meth:`_find_entry_off` (descent probes
        mirror the object engine's counted find)."""
        arena = self._arena
        words = arena.words
        k = self._dims
        off = self._root_off
        nodes = 0
        found = -1
        while off:
            nodes += 1
            h = words[off]
            post = h & 63
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            if h & 4096:
                ref = words[off + 2 + k + a]
            else:
                base = off + 2 + k
                end = base + (1 << ((h >> 13) & 63))
                pos = bisect_left(words, a, base, end)
                if pos < end and words[pos] == a:
                    ref = words[pos + end - base]
                else:
                    ref = 0
            if not ref:
                break
            if ref & 1:
                child = ref >> 1
                shift = (words[child] & 63) + 1
                src = child + 2
                ok = True
                d = 0
                for v in key:
                    if (v >> shift) != (words[src + d] >> shift):
                        ok = False
                        break
                    d += 1
                if not ok:
                    break
                off = child
                continue
            e = ref >> 1
            entries = arena.entries
            same = True
            d = 0
            for v in key:
                if entries[e + d] != v:
                    same = False
                    break
                d += 1
            if same:
                found = e
            break
        _probes.point_nodes_visited.inc(nodes)
        _probes.point_slots_scanned.inc(nodes)
        return found

    def get(self, key: Sequence[int], default: Any = None) -> Any:
        spec = self._spec
        arena = self._arena
        if spec is not None and not _rt.enabled:
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            e = spec.arena_find(self, checked)
            if e < 0:
                return default
            vref = arena.entries[e + self._dims]
            return arena.values[vref]
        key = self._check_key(key)
        if _rt.enabled:
            _probes.ops_get.inc()
            t0 = _perf_counter()
            e = self._find_entry_counted_off(key)
            _heat.record(
                key, self._width, "get", _perf_counter() - t0
            )
        else:
            e = self._find_entry_off(key)
        if e < 0:
            return default
        vref = arena.entries[e + self._dims]
        return arena.values[vref]

    def contains(self, key: Sequence[int]) -> bool:
        spec = self._spec
        if spec is not None and not _rt.enabled:
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            return spec.arena_find(self, checked) >= 0
        key = self._check_key(key)
        if _rt.enabled:
            _probes.ops_contains.inc()
            _heat.record(key, self._width, "contains")
            return self._find_entry_counted_off(key) >= 0
        return self._find_entry_off(key) >= 0

    # -- remove ------------------------------------------------------------

    def remove(self, key: Sequence[int], default: Any = _MISSING) -> Any:
        self._mut_epoch += 1
        spec = self._spec
        if spec is not None and not _rt.enabled:
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            value = spec.arena_remove(self, checked)
            if value is not ARENA_REMOVE_MISS:
                return value
            if default is _MISSING:
                raise KeyError(f"key not found: {checked}")
            return default
        key = self._check_key(key)
        obs = _rt.enabled
        if obs:
            _probes.ops_remove.inc()
            _heat.record(key, self._width, "remove")
        arena = self._arena
        words = arena.words
        k = self._dims
        off = self._root_off
        pidx = -1
        parent_off = 0
        parent_a = -1
        parent_pidx = -1
        depth = 1
        while off:
            h = words[off]
            post = h & 63
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            if h & 4096:
                idx = off + 2 + k + a
                ref = words[idx]
            else:
                base = off + 2 + k
                cap = 1 << ((h >> 13) & 63)
                pos = bisect_left(words, a, base, base + cap)
                if pos < base + cap and words[pos] == a:
                    idx = pos + cap
                    ref = words[idx]
                else:
                    ref = 0
                    idx = -1
            if not ref:
                break
            if ref & 1:
                child = ref >> 1
                shift = (words[child] & 63) + 1
                src = child + 2
                ok = True
                d = 0
                for v in key:
                    if (v >> shift) != (words[src + d] >> shift):
                        ok = False
                        break
                    d += 1
                if not ok:
                    break
                parent_off = off
                parent_a = a
                parent_pidx = pidx
                pidx = idx
                off = child
                depth += 1
                continue
            e = ref >> 1
            entries = arena.entries
            same = True
            d = 0
            for v in key:
                if entries[e + d] != v:
                    same = False
                    break
                d += 1
            if not same:
                break
            vref = entries[e + k]
            value = arena.load_value(vref)
            arena.drop_value(vref)
            arena.free_entry(e)
            off = self._remove_ref(off, pidx, a)
            self._size -= 1
            self._merge_if_underfull_arena(
                off, parent_off, parent_a, parent_pidx
            )
            if obs:
                _probes.write_nodes_visited.inc(depth)
                _probes.write_slots_scanned.inc(depth)
            return value
        if default is _MISSING:
            raise KeyError(f"key not found: {key}")
        return default

    def _remove_hit(
        self,
        off: int,
        pidx: int,
        eoff: int,
        idx: int,
        parent_off: int,
        parent_a: int,
        parent_pidx: int,
    ) -> Any:
        """Finish a delete whose hit the specialized blind-descent
        kernel already located: release the value and entry record,
        splice the slot out of ``off`` (in-slab LHC shift / table
        shrink), and collapse ``off`` if underfull -- all without
        materialising a single shadow object.  ``idx`` is the absolute
        ref-word index the kernel's probe landed on, so no second
        address search happens here; the common exit (node keeps >= 2
        slots, representation unchanged) is a single straight-line
        pass with the ``_want_hc`` memo probed inline."""
        arena = self._arena
        k = self._dims
        entries = arena.entries
        vref = entries[eoff + k]
        value = arena.values[vref]
        if vref:
            arena.values[vref] = None
            arena.value_free.append(vref)
        entries[eoff] = arena.entry_free
        arena.entry_free = eoff
        arena.live_entries -= 1
        words = arena.words
        h = words[off]
        c = words[off + 1]
        n_sub = c & 2097151
        n_post = (c >> 21) & 2097151
        prev = words[idx]
        hc = h & 4096
        if hc:
            words[idx] = 0
        else:
            cap = 1 << ((h >> 13) & 63)
            pos = idx - cap
            end = off + 2 + k + n_sub + n_post
            if pos + 1 != end:
                words[pos : end - 1] = words[pos + 1 : end]
                words[pos + cap : end + cap - 1] = words[
                    pos + cap + 1 : end + cap
                ]
            words[end - 1] = arena.sentinel
        if prev & 1:
            n_sub -= 1
        else:
            n_post -= 1
        words[off + 1] = n_sub | (n_post << 21)
        self._size -= 1
        post = h & 63
        wkey = (((n_sub << 21) | n_post) << 7) | (post << 1) | (
            1 if hc else 0
        )
        want = self._hc_want.get(wkey)
        if want is None:
            want = self._want_hc(n_sub, n_post, post, bool(hc))
        n = n_sub + n_post
        if want != bool(hc):
            new_off = self._maybe_switch_off(off)
            if new_off != off:
                self._patch_parent(pidx, new_off)
                off = new_off
        elif not hc:
            cap_log = (h >> 13) & 63
            if cap_log > 1 and n <= (1 << cap_log) >> 2:
                new_off = self._resize_lhc(off, h, n, cap_log - 1)
                self._patch_parent(pidx, new_off)
                off = new_off
        if parent_off and n >= 2:
            return value
        self._merge_if_underfull_arena(off, parent_off, parent_a, parent_pidx)
        return value

    def _merge_if_underfull_arena(
        self, off: int, parent_off: int, parent_a: int, parent_pidx: int
    ) -> None:
        """Collapse ``off`` when deletion left it with fewer than two
        slots (the object engine's ``_merge_if_underfull``, on slabs)."""
        arena = self._arena
        words = arena.words
        k = self._dims
        h = words[off]
        c = words[off + 1]
        n = (c & 2097151) + ((c >> 21) & 2097151)
        if not parent_off:
            if n == 0:
                arena.free_block(off, arena.block_len(off))
                self._root_off = 0
                if _rt.enabled:
                    _probes.tree_nodes_merged.inc()
                    _recorder.record("merge", root=True)
            return
        if n >= 2:
            return
        if n == 0:
            raise AssertionError("non-root node lost its last two slots")
        base = off + 2 + k
        if h & 4096:
            survivor = 0
            for i in range(base, base + (1 << k)):
                survivor = words[i]
                if survivor:
                    break
        else:
            survivor = words[base + (1 << ((h >> 13) & 63))]
        if survivor & 1:
            child = survivor >> 1
            ch = words[child]
            words[child] = (ch & ~(63 << 6)) | (
                (((ch >> 6) & 63) + ((h >> 6) & 63) + 1) << 6
            )
        if _rt.enabled:
            _probes.tree_nodes_merged.inc()
            _recorder.record("merge")
        arena.free_block(off, arena.block_len(off))
        self._put_ref(parent_off, parent_pidx, parent_a, survivor)

    # -- iteration and queries ---------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        from repro.core.kernel import iter_arena_subtree

        off = self._root_off
        if not off:
            return iter(())
        return iter_arena_subtree(self._arena, off)

    def query(
        self,
        box_min: Sequence[int],
        box_max: Sequence[int],
        use_masks: bool = True,
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        from repro.core.kernel import arena_range_scan

        box_min = self._check_key(box_min)
        box_max = self._check_key(box_max)
        if _rt.enabled:
            _probes.ops_query.inc()
            return _heat.timed_iter(
                arena_range_scan(self, box_min, box_max, 0),
                box_min,
                self._width,
                "query",
            )
        # The mask-less ablation engine is object-layout only; the arena
        # scan is mask-guided either way (results are identical).
        return arena_range_scan(self, box_min, box_max, 0)

    def query_approx(
        self,
        box_min: Sequence[int],
        box_max: Sequence[int],
        slack_bits: int,
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        from repro.core.kernel import arena_range_scan

        if slack_bits < 0:
            raise ValueError(f"slack_bits must be >= 0, got {slack_bits}")
        box_min = self._check_key(box_min)
        box_max = self._check_key(box_max)
        if _rt.enabled:
            _probes.ops_query_approx.inc()
            return _heat.timed_iter(
                arena_range_scan(self, box_min, box_max, slack_bits),
                box_min,
                self._width,
                "query",
            )
        return arena_range_scan(self, box_min, box_max, slack_bits)

    def get_many(
        self,
        keys: Sequence[Sequence[int]],
        default: Any = None,
        presorted: bool = False,
    ) -> List[Any]:
        return batch_mod.arena_get_many(self, keys, default, presorted)

    def contains_many(self, keys: Sequence[Sequence[int]]) -> List[bool]:
        return batch_mod.arena_contains_many(self, keys)

    def query_many(
        self,
        boxes: Sequence[Tuple[Sequence[int], Sequence[int]]],
        use_masks: bool = True,
    ) -> List[List[Tuple[Tuple[int, ...], Any]]]:
        return batch_mod.arena_query_many(self, boxes, use_masks)

    def knn(
        self, key: Sequence[int], n: int = 1
    ) -> List[Tuple[Tuple[int, ...], Any]]:
        spec = self._spec
        if spec is not None and not _rt.enabled:
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            return spec.arena_knn(self, checked, n)
        key = self._check_key(key)
        obs = _rt.enabled
        if obs:
            _probes.ops_knn.inc()
            t0 = _perf_counter()
        result = [
            (found_key, value)
            for _, found_key, value in knn_mod.arena_knn_iter(
                self,
                n,
                knn_mod.squared_euclidean_int(key),
                knn_mod.squared_euclidean_region_int(key),
                self._morton_key(),
            )
        ]
        if obs:
            _heat.record(
                key, self._width, "knn", _perf_counter() - t0
            )
        return result

    def nearest_iter(
        self, key: Sequence[int]
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        key = self._check_key(key)
        if _rt.enabled:
            _probes.ops_knn.inc()
            _heat.record(key, self._width, "knn")
        for _, found_key, value in knn_mod.arena_knn_iter(
            self,
            len(self),
            knn_mod.squared_euclidean_int(key),
            knn_mod.squared_euclidean_region_int(key),
            self._morton_key(),
        ):
            yield found_key, value

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        self._mut_epoch += 1
        self._arena = NodeArena(self._dims)
        self._root_off = 0
        self._size = 0

    def space_stats(self) -> dict:
        """Slab-level space accounting for the memory report."""
        arena = self._arena
        return {
            "capacity_bytes": arena.capacity_bytes(),
            "live_bytes": arena.live_bytes(),
            "n_nodes": arena.n_nodes,
            "n_entries": arena.live_entries,
            "free_node_words": sum(
                length * len(offs)
                for length, offs in arena.free_block_offsets().items()
            ),
        }

    def check_invariants(self) -> None:
        """Arena-native structural checks (same assertions as the object
        engine, read straight off the slabs), plus slab bookkeeping."""
        arena = self._arena
        words = arena.words
        off = self._root_off
        if not off:
            if self._size != 0:
                raise AssertionError("empty root but non-zero size")
            return
        h = words[off]
        if h & 63 != self._width - 1:
            raise AssertionError("root must sit at post_len == width - 1")
        if (h >> 6) & 63 != 0:
            raise AssertionError("root must have an empty infix")
        total = self._count_and_check_arena(off, -1)
        if total != self._size:
            raise AssertionError(
                f"size bookkeeping off: counted {total}, stored {self._size}"
            )
        # Free lists must be disjoint from the reachable node set.
        reachable = set(arena.iter_nodes(off))
        for offs in arena.free_block_offsets().values():
            overlap = reachable.intersection(offs)
            if overlap:
                raise AssertionError(
                    f"freed node offsets still reachable: {sorted(overlap)}"
                )

    def _count_and_check_arena(self, off: int, parent_post: int) -> int:
        arena = self._arena
        words = arena.words
        k = self._dims
        h = words[off]
        c = words[off + 1]
        post = h & 63
        infix = (h >> 6) & 63
        n_sub = c & 2097151
        n_post = (c >> 21) & 2097151
        n = n_sub + n_post
        if parent_post >= 0:
            if n < 2:
                raise AssertionError(f"non-root node with {n} slots")
            if infix != parent_post - 1 - post:
                raise AssertionError(
                    f"infix_len {infix} != expected "
                    f"{parent_post - 1 - post}"
                )
            if not post < parent_post:
                raise AssertionError("post_len must shrink downwards")
        shift = post + 1
        mask = (1 << shift) - 1
        for i in range(off + 2, off + 2 + k):
            if shift < self._width + 1 and words[i] & mask:
                raise AssertionError("prefix has dirty low bits")
        base = off + 2 + k
        pairs: List[Tuple[int, int]] = []
        if h & 4096:
            for a in range(1 << k):
                ref = words[base + a]
                if ref:
                    pairs.append((a, ref))
        else:
            cap = 1 << ((h >> 13) & 63)
            if n > cap:
                raise AssertionError(
                    f"LHC count {n} exceeds table capacity {cap}"
                )
            last = -1
            for i in range(base, base + n):
                a = words[i]
                if a <= last:
                    raise AssertionError("LHC addresses not strictly sorted")
                last = a
                pairs.append((a, words[i + cap]))
            sentinel = arena.sentinel
            for i in range(base + n, base + cap):
                if words[i] != sentinel:
                    raise AssertionError(
                        "unused LHC address slot lost its sentinel"
                    )
        seen_sub = 0
        seen_post = 0
        total = 0
        for a, ref in pairs:
            if ref & 1:
                seen_sub += 1
                child = ref >> 1
                csh = (words[child] & 63) + 1
                src = child + 2
                for d in range(k):
                    if (words[src + d] >> shift) != (
                        words[off + 2 + d] >> shift
                    ):
                        raise AssertionError(
                            "child prefix disagrees with path"
                        )
                    bit = (a >> (k - 1 - d)) & 1
                    if (words[src + d] >> post) & 1 != bit:
                        raise AssertionError(
                            "child prefix disagrees with path"
                        )
                del csh
                total += self._count_and_check_arena(child, post)
            else:
                seen_post += 1
                e = ref >> 1
                entries = arena.entries
                ea = 0
                for d in range(k):
                    v = entries[e + d]
                    ea = (ea << 1) | ((v >> post) & 1)
                    if (v >> shift) != (words[off + 2 + d] >> shift):
                        raise AssertionError("entry outside node region")
                if ea != a:
                    raise AssertionError("entry stored at wrong address")
                total += 1
        if seen_sub != n_sub or seen_post != n_post:
            raise AssertionError(
                f"header slot counts ({n_sub}, {n_post}) disagree with "
                f"table ({seen_sub}, {seen_post})"
            )
        return total
