"""Batched point and window queries (the batch engine).

The paper's evaluation (Section 4) is throughput-oriented: millions of
point and range operations against one tree.  Issuing them one call at a
time through :meth:`PHTree.get` / :meth:`PHTree.query` pays, per
operation, the full Python call overhead (argument validation, method
dispatch, a root-to-leaf descent of method calls) even though
consecutive operations overwhelmingly revisit the same top-of-tree
nodes.

This module amortises that overhead across a batch:

- :func:`get_many` validates the whole batch and computes its z-codes in
  one fused pass, sorts it by (approximate) z-order so consecutive keys
  share descent paths, and then *merge-joins* the sorted batch against
  the tree: the current root-to-leaf path lives on a single explicit
  stack, and every key first ascends to the deepest stacked node whose
  region still contains it, then descends only the levels its
  predecessor did not already resolve.  All per-level work (hypercube
  address, container lookup, prefix check) is inlined with locals
  hoisted -- no method calls, no per-key allocations.
- :func:`query_many` walks the tree once for a batch of query boxes,
  carrying the set of still-active boxes down the traversal: each node
  is classified (intersects / fully covers) once per active box, and the
  union of the per-box ``m_L``/``m_U`` masks restricts the visited
  slots.  Per-box results are produced in exactly the order the
  single-box engine (:func:`repro.core.range_query.range_iter`) yields
  them.

The z-order sort key interleaves only the top byte of every coordinate
(one table lookup per dimension): descent paths diverge on the most
significant bits, so that cheap prefix of the full Morton code already
yields almost all of the locality, and the walk stays correct under any
batch order -- the sort is purely a performance hint.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable, List, Sequence, Tuple

from repro.core.kernel import iter_subtree
from repro.core.node import Node
from repro.encoding.lut import spread_table as _spread_table
from repro.obs import probes as _probes
from repro.obs import runtime as _rt

__all__ = ["contains_many", "get_many", "query_many", "z_sort_key"]

_MISSING = object()

Key = Tuple[int, ...]


def z_sort_key(dims: int, width: int) -> Callable[[Sequence[int]], int]:
    """Build the approximate z-order sort key for ``dims``/``width`` keys.

    Interleaves the top (up to) 8 bits of every coordinate via the byte
    spread table of :mod:`repro.encoding.interleave`.  Keys equal under
    this code may sort in any relative order; callers must not rely on
    exact z-order, only on locality.
    """
    table = _spread_table(dims)
    shift = width - 8 if width > 8 else 0
    top = dims - 1

    def zkey(key: Sequence[int]) -> int:
        code = 0
        d = top
        for v in key:
            code |= table[(v >> shift) & 0xFF] << d
            d -= 1
        return code

    return zkey


def _prepare(
    tree: Any, keys: Iterable[Sequence[int]], want_codes: bool
) -> Tuple[List[Key], List[int]]:
    """Validate a batch and (optionally) compute its z-codes, one pass.

    The fast path is a bounds check per key (an OR-accumulator when all
    dimensions share one width); any violation -- including a
    non-integer coordinate, which surfaces as a TypeError from the bit
    operations -- is re-validated through ``tree._check_key`` so the
    error raised is exactly the sequential API's.
    """
    dims = tree._dims
    width = tree._width
    widths = tree._widths
    uniform = widths == (width,) * dims
    table = _spread_table(dims)
    shift = width - 8 if width > 8 else 0
    top = dims - 1
    checked: List[Key] = []
    codes: List[int] = []
    kappend = checked.append
    cappend = codes.append
    key: Any = ()
    try:
        if uniform and want_codes:
            for key in keys:
                if key.__class__ is not tuple:
                    key = tuple(key)
                if len(key) != dims:
                    tree._check_key(key)  # raises the sequential error
                acc = 0
                code = 0
                d = top
                for v in key:
                    acc |= v
                    code |= table[(v >> shift) & 0xFF] << d
                    d -= 1
                if acc < 0 or acc >> width:
                    tree._check_key(key)  # raises the sequential error
                kappend(key)
                cappend(code)
        elif uniform:
            for key in keys:
                if key.__class__ is not tuple:
                    key = tuple(key)
                if len(key) != dims:
                    tree._check_key(key)
                acc = 0
                for v in key:
                    acc |= v
                if acc < 0 or acc >> width:
                    tree._check_key(key)
                kappend(key)
        else:
            zkey = z_sort_key(dims, width) if want_codes else None
            for key in keys:
                if key.__class__ is not tuple:
                    key = tuple(key)
                if len(key) != dims:
                    tree._check_key(key)
                for v, w in zip(key, widths):
                    if v < 0 or v >> w:
                        tree._check_key(key)
                kappend(key)
                if zkey is not None:
                    cappend(zkey(key))
    except TypeError:
        tree._check_key(tuple(key))  # raises the sequential error
        raise  # pragma: no cover - _check_key accepted what we rejected
    return checked, codes


def get_many(
    tree: Any,
    keys: Iterable[Sequence[int]],
    default: Any = None,
    presorted: bool = False,
) -> List[Any]:
    """Batched :meth:`PHTree.get`: one value per key, in input order.

    Missing keys map to ``default``.  Results are identical to
    ``[tree.get(k, default) for k in keys]``; the batch is internally
    z-order-sorted so keys sharing a descent path resolve their common
    nodes once.  Pass ``presorted=True`` when the batch is already in
    (approximate) z-order to skip the internal sort -- any order stays
    correct, sorting is purely a locality hint.

    Trees carrying a per-(k, width) specialization (``tree._spec``,
    see :mod:`repro.core.specialize`) run its unrolled twin of this
    merge-join; results and probe counts are bit-identical (pinned by
    the parity tests).
    """
    spec = getattr(tree, "_spec", None)
    if _rt.enabled:
        if spec is not None:
            return spec.get_many_instrumented(tree, keys, default, presorted)
        return _get_many_instrumented(tree, keys, default, presorted)
    if spec is not None:
        return spec.get_many_plain(tree, keys, default, presorted)
    return _get_many_plain(tree, keys, default, presorted)


def _get_many_plain(
    tree: Any,
    keys: Iterable[Sequence[int]],
    default: Any = None,
    presorted: bool = False,
) -> List[Any]:
    checked, codes = _prepare(tree, keys, not presorted)
    n = len(checked)
    results = [default] * n
    root = tree._root
    if root is None or n == 0:
        return results
    if presorted:
        order: Iterable[int] = range(n)
    else:
        order = sorted(range(n), key=codes.__getitem__)

    node_cls = Node
    # The current root-to-leaf path; each frame caches the node's
    # prefix-check operands so ascents touch no attributes.
    path: List[Tuple[Node, int, Key]] = [
        (root, root.post_len + 1, root.prefix)
    ]
    push = path.append
    pop = path.pop
    node, shift, prefix = path[0]
    for i in order:
        key = checked[i]
        # Ascend to the deepest stacked node still containing the key
        # (the root contains every validated key, so this terminates).
        while True:
            matches = True
            for v, pref in zip(key, prefix):
                if (v ^ pref) >> shift:
                    matches = False
                    break
            if matches:
                break
            pop()
            node, shift, prefix = path[-1]
        # Descend the levels the previous key did not already resolve.
        while True:
            post = shift - 1
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            cont = node.container
            if cont.is_hc:
                slot = cont._slots[a]
            else:
                addrs = cont._addresses
                p = bisect_left(addrs, a)
                slot = (
                    cont._slots[p]
                    if p < len(addrs) and addrs[p] == a
                    else None
                )
            if slot is None:
                break
            if slot.__class__ is node_cls:
                cshift = slot.post_len + 1
                cprefix = slot.prefix
                matches = True
                for v, pref in zip(key, cprefix):
                    if (v ^ pref) >> cshift:
                        matches = False
                        break
                if not matches:
                    break
                node = slot
                shift = cshift
                prefix = cprefix
                push((node, shift, prefix))
                continue
            if slot.key == key:
                results[i] = slot.value
            break
    return results


def _get_many_instrumented(
    tree: Any,
    keys: Iterable[Sequence[int]],
    default: Any = None,
    presorted: bool = False,
) -> List[Any]:
    """Instrumented twin of :func:`_get_many_plain`: same merge-join
    walk, plus batch counters.  ``batch_nodes_visited`` counts *path
    pushes* (a node shared by consecutive keys counts once), so the
    ratio to ``len(batch) * depth`` measures descent sharing."""
    checked, codes = _prepare(tree, keys, not presorted)
    n = len(checked)
    _probes.ops_get_many.inc()
    _probes.batch_keys_get.inc(n)
    results = [default] * n
    root = tree._root
    if root is None or n == 0:
        return results
    if presorted:
        order: Iterable[int] = range(n)
    else:
        order = sorted(range(n), key=codes.__getitem__)

    c_nodes = 1  # the root frame
    c_slots = 0
    node_cls = Node
    path: List[Tuple[Node, int, Key]] = [
        (root, root.post_len + 1, root.prefix)
    ]
    push = path.append
    pop = path.pop
    node, shift, prefix = path[0]
    for i in order:
        key = checked[i]
        while True:
            matches = True
            for v, pref in zip(key, prefix):
                if (v ^ pref) >> shift:
                    matches = False
                    break
            if matches:
                break
            pop()
            node, shift, prefix = path[-1]
        while True:
            c_slots += 1
            post = shift - 1
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            cont = node.container
            if cont.is_hc:
                slot = cont._slots[a]
            else:
                addrs = cont._addresses
                p = bisect_left(addrs, a)
                slot = (
                    cont._slots[p]
                    if p < len(addrs) and addrs[p] == a
                    else None
                )
            if slot is None:
                break
            if slot.__class__ is node_cls:
                cshift = slot.post_len + 1
                cprefix = slot.prefix
                matches = True
                for v, pref in zip(key, cprefix):
                    if (v ^ pref) >> cshift:
                        matches = False
                        break
                if not matches:
                    break
                node = slot
                shift = cshift
                prefix = cprefix
                push((node, shift, prefix))
                c_nodes += 1
                continue
            if slot.key == key:
                results[i] = slot.value
            break
    _probes.batch_nodes_visited.inc(c_nodes)
    _probes.batch_slots_scanned.inc(c_slots)
    return results


def contains_many(
    tree: Any, keys: Iterable[Sequence[int]]
) -> List[bool]:
    """Batched :meth:`PHTree.contains`: one bool per key, in input
    order."""
    missing = _MISSING
    return [v is not missing for v in get_many(tree, keys, missing)]


#: Below this many boxes the batched shared walk loses to simply
#: running the specialized per-box window kernel back to back: the
#: walk's per-node bookkeeping (per-box mask lists, the active-set
#: narrowing) only amortises once enough boxes share paths.  Measured
#: at the bench shape (dims=3, width=20, 10k keys, 200 boxes) the
#: shared walk ran at ~0.87x the sequential kernel; the cutover keeps
#: small batches on the sequential path.  Instrumented runs always take
#: the shared walk so the query_many counters stay meaningful.
QUERY_MANY_SEQ_CUTOVER = 512


def query_many(
    tree: Any,
    boxes: Iterable[Tuple[Sequence[int], Sequence[int]]],
    use_masks: bool = True,
) -> List[List[Tuple[Key, Any]]]:
    """Batched :meth:`PHTree.query`: one result list per box, in input
    order.

    Each result list is exactly ``list(tree.query(lo, hi))`` -- same
    entries, same (z-)order.  Small batches (up to
    :data:`QUERY_MANY_SEQ_CUTOVER` boxes) run the specialized window
    kernel sequentially per box; larger batches walk the tree once for
    the whole batch, with the set of still-active boxes narrowing on
    the way down.  ``use_masks`` exists for API symmetry with
    ``query``; both batched paths always use masks (results are
    order-identical either way up to the naive engine's unordered
    output).
    """
    checked: List[Tuple[Key, Key]] = []
    for lo, hi in boxes:
        checked.append((tree._check_key(lo), tree._check_key(hi)))
    if _rt.enabled:
        _probes.ops_query_many.inc()
        _probes.batch_keys_query.inc(len(checked))
    else:
        spec = tree._spec
        if spec is not None and len(checked) <= QUERY_MANY_SEQ_CUTOVER:
            root = tree._root
            if root is None:
                return [[] for _ in checked]
            scan = spec.range_scan_plain
            out: List[List[Tuple[Key, Any]]] = []
            for lo, hi in checked:
                for lo_v, hi_v in zip(lo, hi):
                    if lo_v > hi_v:
                        out.append([])
                        break
                else:
                    out.append(list(scan(root, lo, hi)))
            return out
    results: List[List[Tuple[Key, Any]]] = [[] for _ in checked]
    root = tree._root
    if root is None:
        return results
    active: List[int] = []
    for b, (lo, hi) in enumerate(checked):
        for lo_v, hi_v in zip(lo, hi):
            if lo_v > hi_v:
                break
        else:
            active.append(b)
    if active:
        # Every non-empty box intersects the root (coordinates are
        # validated into the root's region by _check_key).
        _query_node(root, active, checked, results, (1 << tree._dims) - 1)
    return results


def _query_node(
    node: Node,
    active: List[int],
    checked: List[Tuple[Key, Key]],
    results: List[List[Tuple[Key, Any]]],
    full: int,
) -> None:
    """Visit ``node`` for every box in ``active`` (all of which intersect
    the node's region), appending matches per box in z-order.

    Recursion depth is bounded by the tree depth (<= w <= 64)."""
    post = node.post_len
    free = (1 << (post + 1)) - 1
    prefix = node.prefix
    node_cls = Node
    # Per-active-box masks, and their union as the slot iteration window.
    mls: List[int] = []
    mhs: List[int] = []
    union_ml = full
    union_mh = 0
    for b in active:
        box_lo, box_hi = checked[b]
        ml = mh = 0
        for nlo, lo, hi in zip(prefix, box_lo, box_hi):
            nhi = nlo | free
            if lo < nlo:
                lo = nlo
            if hi > nhi:
                hi = nhi
            ml = (ml << 1) | ((lo >> post) & 1)
            mh = (mh << 1) | ((hi >> post) & 1)
        mls.append(ml)
        mhs.append(mh)
        union_ml &= ml
        union_mh |= mh
    if union_ml == 0 and union_mh == full:
        items = node.container.items()
    else:
        items = node.container.items_in_mask_range(union_ml, union_mh)
    if _rt.enabled:
        items = list(items)
        _probes.qmany_nodes_visited.inc()
        _probes.qmany_slots_scanned.inc(len(items))
    for a, slot in items:
        if slot.__class__ is node_cls:
            cpost = slot.post_len
            cfree = (1 << (cpost + 1)) - 1
            cprefix = slot.prefix
            descend: List[int] = []
            flush: List[int] = []
            for idx, b in enumerate(active):
                ml = mls[idx]
                mh = mhs[idx]
                if (a | ml) != a or (a & mh) != a:
                    continue
                box_lo, box_hi = checked[b]
                inside = True
                for nlo, lo, hi in zip(cprefix, box_lo, box_hi):
                    nhi = nlo | cfree
                    if hi < nlo or lo > nhi:
                        break
                    if nlo < lo or nhi > hi:
                        inside = False
                else:
                    (flush if inside else descend).append(b)
            if descend:
                # Covered boxes ride along: every entry below passes
                # their containment check anyway, and a single descent
                # keeps all result lists in z-order.
                _query_node(
                    slot, flush + descend if flush else descend,
                    checked, results, full,
                )
            elif flush:
                # All interested boxes fully cover the child: flush the
                # subtree once, unchecked.
                for pair in iter_subtree(slot):
                    for b in flush:
                        results[b].append(pair)
        else:
            key = slot.key
            pair = None
            for idx, b in enumerate(active):
                ml = mls[idx]
                mh = mhs[idx]
                if (a | ml) != a or (a & mh) != a:
                    continue
                box_lo, box_hi = checked[b]
                for v, lo, hi in zip(key, box_lo, box_hi):
                    if v < lo or v > hi:
                        break
                else:
                    if pair is None:
                        pair = (key, slot.value)
                    results[b].append(pair)


def arena_get_many(
    tree: Any,
    keys: Iterable[Sequence[int]],
    default: Any = None,
    presorted: bool = False,
) -> List[Any]:
    """Arena twin of :func:`get_many`: the same z-sorted merge-join,
    with path frames holding ``(offset, shift)`` and prefix checks
    reading slab words in place (no per-frame prefix tuple).  Trees
    with a specialization dispatch to its plan-cached slab kernel
    (plain or instrumented twin per the observability switch)."""
    spec = tree._spec
    if spec is not None:
        if _rt.enabled:
            return spec.arena_get_many_instrumented(
                tree, keys, default, presorted
            )
        return spec.arena_get_many_plain(tree, keys, default, presorted)
    checked, codes = _prepare(tree, keys, not presorted)
    n = len(checked)
    obs = _rt.enabled
    if obs:
        _probes.ops_get_many.inc()
        _probes.batch_keys_get.inc(n)
    results = [default] * n
    root = tree._root_off
    if not root or n == 0:
        return results
    if presorted:
        order: Iterable[int] = range(n)
    else:
        order = sorted(range(n), key=codes.__getitem__)

    arena = tree._arena
    words = arena.words
    entries = arena.entries
    values = arena.values
    k = arena.k
    c_nodes = 1  # the root frame
    c_slots = 0
    path: List[Tuple[int, int]] = [(root, (words[root] & 63) + 1)]
    push = path.append
    pop = path.pop
    off, shift = path[0]
    for i in order:
        key = checked[i]
        # Ascend to the deepest stacked node still containing the key
        # (the root contains every validated key, so this terminates).
        while True:
            matches = True
            d = off + 2
            for v in key:
                if (v ^ words[d]) >> shift:
                    matches = False
                    break
                d += 1
            if matches:
                break
            pop()
            off, shift = path[-1]
        # Descend the levels the previous key did not already resolve.
        while True:
            c_slots += 1
            post = shift - 1
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post) & 1)
            h = words[off]
            if h & 4096:
                ref = words[off + 2 + k + a]
            else:
                base = off + 2 + k
                end = base + (1 << ((h >> 13) & 63))
                pos = bisect_left(words, a, base, end)
                if pos < end and words[pos] == a:
                    ref = words[pos + end - base]
                else:
                    ref = 0
            if not ref:
                break
            if ref & 1:
                child = ref >> 1
                cshift = (words[child] & 63) + 1
                matches = True
                d = child + 2
                for v in key:
                    if (v ^ words[d]) >> cshift:
                        matches = False
                        break
                    d += 1
                if not matches:
                    break
                off = child
                shift = cshift
                push((off, shift))
                c_nodes += 1
                continue
            e = ref >> 1
            same = True
            d = e
            for v in key:
                if entries[d] != v:
                    same = False
                    break
                d += 1
            if same:
                vref = entries[e + k]
                results[i] = values[vref]
            break
    if obs:
        _probes.batch_nodes_visited.inc(c_nodes)
        _probes.batch_slots_scanned.inc(c_slots)
    return results


def arena_contains_many(
    tree: Any, keys: Iterable[Sequence[int]]
) -> List[bool]:
    """Arena twin of :func:`contains_many`."""
    missing = _MISSING
    return [
        v is not missing for v in arena_get_many(tree, keys, missing)
    ]


def arena_query_many(
    tree: Any,
    boxes: Iterable[Tuple[Sequence[int], Sequence[int]]],
    use_masks: bool = True,
) -> List[List[Tuple[Key, Any]]]:
    """Arena :func:`query_many`: the same single shared walk over the
    whole batch (active boxes narrowing on the way down, covered boxes
    flushed unchecked), reading slab records instead of node objects.
    Result lists are exactly ``list(tree.query(lo, hi))`` per box, in
    input order."""
    checked: List[Tuple[Key, Key]] = []
    for lo, hi in boxes:
        checked.append((tree._check_key(lo), tree._check_key(hi)))
    if _rt.enabled:
        _probes.ops_query_many.inc()
        _probes.batch_keys_query.inc(len(checked))
    else:
        spec = tree._spec
        if spec is not None and len(checked) <= QUERY_MANY_SEQ_CUTOVER:
            if not tree._root_off:
                return [[] for _ in checked]
            scan = spec.arena_range_scan_plain
            out: List[List[Tuple[Key, Any]]] = []
            for lo, hi in checked:
                for lo_v, hi_v in zip(lo, hi):
                    if lo_v > hi_v:
                        out.append([])
                        break
                else:
                    out.append(list(scan(tree, lo, hi)))
            return out
    results: List[List[Tuple[Key, Any]]] = [[] for _ in checked]
    root = tree._root_off
    if not root:
        return results
    active: List[int] = []
    for b, (lo, hi) in enumerate(checked):
        for lo_v, hi_v in zip(lo, hi):
            if lo_v > hi_v:
                break
        else:
            active.append(b)
    if active:
        _arena_query_node(
            tree._arena, root, active, checked, results,
            (1 << tree._dims) - 1,
        )
    return results


def _arena_query_node(
    arena: Any,
    off: int,
    active: List[int],
    checked: List[Tuple[Key, Key]],
    results: List[List[Tuple[Key, Any]]],
    full: int,
) -> None:
    """Arena twin of :func:`_query_node`: visit the node record at
    ``off`` for every box in ``active`` (all intersect its region).

    Recursion depth is bounded by the tree depth (<= w <= 64)."""
    from repro.core.kernel import iter_arena_subtree

    words = arena.words
    entries = arena.entries
    k = arena.k
    h = words[off]
    post = h & 63
    free = (1 << (post + 1)) - 1
    # Per-active-box masks, and their union as the slot iteration window.
    mls: List[int] = []
    mhs: List[int] = []
    union_ml = full
    union_mh = 0
    for b in active:
        box_lo, box_hi = checked[b]
        ml = mh = 0
        d = off + 2
        for lo, hi in zip(box_lo, box_hi):
            nlo = words[d]
            d += 1
            nhi = nlo | free
            if lo < nlo:
                lo = nlo
            if hi > nhi:
                hi = nhi
            ml = (ml << 1) | ((lo >> post) & 1)
            mh = (mh << 1) | ((hi >> post) & 1)
        mls.append(ml)
        mhs.append(mh)
        union_ml &= ml
        union_mh |= mh
    base = off + 2 + k
    items: List[Tuple[int, int]] = []
    if h & 4096:
        if union_ml == 0 and union_mh == full:
            for a in range(1 << k):
                ref = words[base + a]
                if ref:
                    items.append((a, ref))
        else:
            a = union_ml
            while True:
                ref = words[base + a]
                if ref:
                    items.append((a, ref))
                if a >= union_mh:
                    break
                a = (((a | ~union_mh) + 1) & union_mh) | union_ml
    else:
        c = words[off + 1]
        n = (c & 2097151) + ((c >> 21) & 2097151)
        cap = 1 << ((h >> 13) & 63)
        if union_ml == 0 and union_mh == full:
            for i in range(base, base + n):
                items.append((words[i], words[i + cap]))
        else:
            for i in range(base, base + n):
                a = words[i]
                if (a | union_ml) == a and (a & union_mh) == a:
                    items.append((a, words[i + cap]))
    if _rt.enabled:
        _probes.qmany_nodes_visited.inc()
        _probes.qmany_slots_scanned.inc(len(items))
    for a, ref in items:
        if ref & 1:
            child = ref >> 1
            cpost = words[child] & 63
            cfree = (1 << (cpost + 1)) - 1
            descend: List[int] = []
            flush: List[int] = []
            for idx, b in enumerate(active):
                ml = mls[idx]
                mh = mhs[idx]
                if (a | ml) != a or (a & mh) != a:
                    continue
                box_lo, box_hi = checked[b]
                inside = True
                d = child + 2
                for lo, hi in zip(box_lo, box_hi):
                    nlo = words[d]
                    d += 1
                    nhi = nlo | cfree
                    if hi < nlo or lo > nhi:
                        break
                    if nlo < lo or nhi > hi:
                        inside = False
                else:
                    (flush if inside else descend).append(b)
            if descend:
                # Covered boxes ride along: every entry below passes
                # their containment check anyway, and a single descent
                # keeps all result lists in z-order.
                _arena_query_node(
                    arena, child,
                    flush + descend if flush else descend,
                    checked, results, full,
                )
            elif flush:
                # All interested boxes fully cover the child: flush the
                # subtree once, unchecked.
                for pair in iter_arena_subtree(arena, child):
                    for b in flush:
                        results[b].append(pair)
        else:
            e = ref >> 1
            pair = None
            for idx, b in enumerate(active):
                ml = mls[idx]
                mh = mhs[idx]
                if (a | ml) != a or (a & mh) != a:
                    continue
                box_lo, box_hi = checked[b]
                d = e
                for lo, hi in zip(box_lo, box_hi):
                    v = entries[d]
                    if v < lo or v > hi:
                        break
                    d += 1
                else:
                    if pair is None:
                        vref = entries[e + k]
                        pair = (
                            tuple(entries[e : e + k]),
                            arena.values[vref],
                        )
                    results[b].append(pair)
