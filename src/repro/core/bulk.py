"""Bulk loading: build a PH-tree bottom-up from a sorted key set.

Because the PH-tree's structure is determined only by its key set (paper
Section 3), a bulk build can construct every node directly instead of
splicing one insert at a time: sort the keys by their interleaved
(z-order) code, find the most significant bit layer where the set
diverges, group the keys by hypercube address at that layer -- groups are
contiguous in z-order -- and recurse per group.  Each node is allocated
exactly once with its final occupancy, so the HC/LHC representation is
chosen once per node rather than re-evaluated per insert.

The result is *identical* (bit-for-bit under serialisation) to the tree
grown by repeated ``put`` calls -- the test suite uses this as the
correctness oracle.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.core.arena import make_counts
from repro.core.node import Entry, Node, masked_prefix
from repro.core.phtree import PHTree

__all__ = ["bulk_load", "bulk_load_sorted"]

Key = Tuple[int, ...]


def bulk_load(
    entries: Iterable[Tuple[Sequence[int], Any]],
    dims: int,
    width: "int | Sequence[int]" = 64,
    hc_mode: str = "auto",
    layout: "str | None" = None,
) -> PHTree:
    """Build a PH-tree from ``(key, value)`` pairs in one pass.

    Duplicate keys keep the last value (matching repeated ``put``).

    >>> tree = bulk_load([((1, 2), "a"), ((3, 4), "b")], dims=2, width=8)
    >>> tree.get((3, 4))
    'b'
    """
    tree = PHTree(dims=dims, width=width, hc_mode=hc_mode, layout=layout)
    deduped: Dict[Key, Any] = {}
    for key, value in entries:
        deduped[tree._check_key(key)] = value
    if not deduped:
        return tree
    zcode = _z_coder(tree)
    items = sorted(deduped.items(), key=lambda kv: zcode(kv[0]))
    return _build_from_run(tree, items)


def bulk_load_sorted(
    items: "List[Tuple[Key, Any]]",
    dims: int,
    width: "int | Sequence[int]" = 64,
    hc_mode: str = "auto",
    validate: bool = True,
    layout: "str | None" = None,
) -> PHTree:
    """Build a PH-tree from an already z-sorted run of unique entries.

    ``items`` must be a list of ``(key, value)`` pairs whose keys are
    tuples, pairwise distinct, and ascending in interleaved (z-order)
    comparison -- exactly what one contiguous slice of a globally
    z-sorted batch is.  This is the entry point the sharded builder
    uses: it sorts the whole key set once, cuts it into per-shard runs
    at z-prefix boundaries, and hands each run here without re-sorting.

    With ``validate=True`` the run's keys are bounds-checked and the
    z-ordering is verified (O(n) interleavings); trusted callers pass
    ``validate=False`` to skip both.

    >>> run = [((1, 2), "a"), ((3, 4), "b")]
    >>> bulk_load_sorted(run, dims=2, width=8).get((3, 4))
    'b'
    """
    tree = PHTree(dims=dims, width=width, hc_mode=hc_mode, layout=layout)
    if validate:
        zcode = _z_coder(tree)
        previous = -1
        for key, _ in items:
            code = zcode(tree._check_key(key))
            if code <= previous:
                raise ValueError(
                    "bulk_load_sorted needs strictly ascending unique "
                    f"z-order keys; violated at {key}"
                )
            previous = code
    if not items:
        return tree
    return _build_from_run(tree, items)


def _build_from_run(
    tree: PHTree, items: "List[Tuple[Key, Any]]"
) -> PHTree:
    """Fill ``tree`` from a z-sorted, deduplicated run of entries."""
    if tree.layout == "arena":
        tree._root_off = _fill_arena_node(
            tree, items, 0, len(items), tree.width - 1, 0
        )
        tree._size = len(items)
        return tree
    root = Node(
        post_len=tree.width - 1, infix_len=0, prefix=(0,) * tree.dims
    )
    _fill_node(root, items, 0, len(items), tree.dims, tree)
    tree._root = root
    tree._size = len(items)
    return tree


def _z_code(key: Key, width: int) -> int:
    """Interleaved comparison code (dimension 0 most significant)."""
    from repro.encoding.interleave import interleave

    return interleave(key, width)


def _z_coder(tree: PHTree):
    """The tree's z-code function for already-validated keys: the
    specialized unrolled Morton kernel when the tree carries one (same
    codes, pinned by the property tests), else the generic LUT path."""
    spec = tree._spec
    if spec is not None:
        return spec.interleave
    width = tree.width
    return lambda key: _z_code(key, width)


def _divergence_pos(
    items: List[Tuple[Key, Any]], lo: int, hi: int
) -> int:
    """Most significant bit position where keys in ``items[lo:hi]``
    disagree in any dimension (-1 if all equal)."""
    first = items[lo][0]
    accumulated = [0] * len(first)
    for i in range(lo + 1, hi):
        key = items[i][0]
        for dim, value in enumerate(key):
            accumulated[dim] |= value ^ first[dim]
    conflict = -1
    for diff in accumulated:
        if diff:
            pos = diff.bit_length() - 1
            if pos > conflict:
                conflict = pos
    return conflict


def _fill_node(
    node: Node,
    items: List[Tuple[Key, Any]],
    lo: int,
    hi: int,
    k: int,
    tree: PHTree,
) -> None:
    """Populate ``node`` with the (z-sorted) entries ``items[lo:hi]``.

    Slots arrive in ascending hypercube-address order (a property of the
    z-sort), so the container is appended to directly and the HC/LHC
    representation is decided exactly once, at the node's final
    occupancy.
    """
    post_len = node.post_len
    container = node.container  # fresh LHCContainer
    addresses = container._addresses
    slots = container._slots
    spec = tree._spec
    if spec is not None:
        hc_addr = spec.hc_address
        address_of = lambda key: hc_addr(key, post_len)  # noqa: E731
    else:
        address_of = node.address_of
    n_sub = 0
    n_post = 0
    group_start = lo
    while group_start < hi:
        address = address_of(items[group_start][0])
        group_end = group_start + 1
        while (
            group_end < hi
            and address_of(items[group_end][0]) == address
        ):
            group_end += 1
        if group_end - group_start == 1:
            key, value = items[group_start]
            addresses.append(address)
            slots.append(Entry(key, value))
            n_post += 1
        else:
            conflict = _divergence_pos(items, group_start, group_end)
            child = Node(
                post_len=conflict,
                infix_len=post_len - 1 - conflict,
                prefix=masked_prefix(items[group_start][0], conflict),
            )
            _fill_node(child, items, group_start, group_end, k, tree)
            addresses.append(address)
            slots.append(child)
            n_sub += 1
        group_start = group_end
    node._n_sub = n_sub
    node._n_post = n_post
    node._maybe_switch(k, tree._hc_mode, tree._hysteresis)


def _fill_arena_node(
    tree: PHTree,
    items: List[Tuple[Key, Any]],
    lo: int,
    hi: int,
    post_len: int,
    infix_len: int,
) -> int:
    """The arena twin of :func:`_fill_node`: record ``items[lo:hi]`` as
    one slab node (recursing per address group) and return its offset.

    Pairs arrive address-sorted from the z-sort, so the node is written
    once as an exactly-sized LHC table and handed to the engine's
    representation switch at its final occupancy -- the same
    decide-once property the object builder has.
    """
    arena = tree._arena
    k = tree.dims
    spec = tree._spec
    if spec is not None:
        hc_addr = spec.hc_address
        address_of = lambda key: hc_addr(key, post_len)  # noqa: E731
    else:

        def address_of(key: Key) -> int:
            a = 0
            for v in key:
                a = (a << 1) | ((v >> post_len) & 1)
            return a

    pairs: List[Tuple[int, int]] = []
    n_sub = 0
    n_post = 0
    group_start = lo
    while group_start < hi:
        address = address_of(items[group_start][0])
        group_end = group_start + 1
        while (
            group_end < hi
            and address_of(items[group_end][0]) == address
        ):
            group_end += 1
        if group_end - group_start == 1:
            key, value = items[group_start]
            pairs.append(
                (
                    address,
                    arena.new_entry(key, arena.store_value(value)) << 1,
                )
            )
            n_post += 1
        else:
            conflict = _divergence_pos(items, group_start, group_end)
            child = _fill_arena_node(
                tree,
                items,
                group_start,
                group_end,
                conflict,
                post_len - 1 - conflict,
            )
            pairs.append((address, (child << 1) | 1))
            n_sub += 1
        group_start = group_end
    n = len(pairs)
    cap_log = (n - 1).bit_length() if n > 2 else 1
    off = tree._alloc_lhc(
        post_len, infix_len, masked_prefix(items[lo][0], post_len), cap_log
    )
    words = arena.words
    cap = 1 << cap_log
    i = off + 2 + k
    for a, ref in pairs:
        words[i] = a
        words[i + cap] = ref
        i += 1
    words[off + 1] = make_counts(n_sub, n_post)
    return tree._maybe_switch_off(off)
