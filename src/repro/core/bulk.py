"""Bulk loading: build a PH-tree bottom-up from a sorted key set.

Because the PH-tree's structure is determined only by its key set (paper
Section 3), a bulk build can construct every node directly instead of
splicing one insert at a time: sort the keys by their interleaved
(z-order) code, find the most significant bit layer where the set
diverges, group the keys by hypercube address at that layer -- groups are
contiguous in z-order -- and recurse per group.  Each node is allocated
exactly once with its final occupancy, so the HC/LHC representation is
chosen once per node rather than re-evaluated per insert.

The build is *z-code driven*: the interleaved codes computed for the
sort are kept and threaded through the recursion, so per level each key
costs one shift-and-compare (its hypercube address is bits
``[post_len*k, post_len*k + k)`` of its z-code) and each group's
divergence layer is one XOR of the run's end codes (sorted codes
diverge highest between first and last).  The old form re-derived both
from the coordinate tuples -- a ``k``-operation ``address_of`` call per
key per level and an O(group * k) scan per node -- which is what made
bulk load *lose* to sequential insert on pre-sorted input.

The result is *identical* (bit-for-bit under serialisation) to the tree
grown by repeated ``put`` calls -- the test suite uses this as the
correctness oracle.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.arena import make_counts
from repro.core.node import Entry, Node, masked_prefix
from repro.core.phtree import PHTree

__all__ = ["bulk_load", "bulk_load_sorted"]

Key = Tuple[int, ...]


def bulk_load(
    entries: Iterable[Tuple[Sequence[int], Any]],
    dims: int,
    width: "int | Sequence[int]" = 64,
    hc_mode: str = "auto",
    layout: "str | None" = None,
) -> PHTree:
    """Build a PH-tree from ``(key, value)`` pairs in one pass.

    Duplicate keys keep the last value (matching repeated ``put``).

    >>> tree = bulk_load([((1, 2), "a"), ((3, 4), "b")], dims=2, width=8)
    >>> tree.get((3, 4))
    'b'
    """
    tree = PHTree(dims=dims, width=width, hc_mode=hc_mode, layout=layout)
    deduped: Dict[Key, Any] = {}
    for key, value in entries:
        deduped[tree._check_key(key)] = value
    if not deduped:
        return tree
    zcode = _z_coder(tree)
    decorated = sorted((zcode(key), key) for key in deduped)
    items = [(key, deduped[key]) for _, key in decorated]
    zs = [z for z, _ in decorated]
    return _build_from_run(tree, items, zs)


def bulk_load_sorted(
    items: "List[Tuple[Key, Any]]",
    dims: int,
    width: "int | Sequence[int]" = 64,
    hc_mode: str = "auto",
    validate: bool = True,
    layout: "str | None" = None,
    zcodes: "Optional[Sequence[int]]" = None,
) -> PHTree:
    """Build a PH-tree from an already z-sorted run of unique entries.

    ``items`` must be a list of ``(key, value)`` pairs whose keys are
    tuples, pairwise distinct, and ascending in interleaved (z-order)
    comparison -- exactly what one contiguous slice of a globally
    z-sorted batch is.  This is the entry point the sharded builder
    uses: it sorts the whole key set once, cuts it into per-shard runs
    at z-prefix boundaries, and hands each run here without re-sorting.

    With ``validate=True`` the run's keys are bounds-checked and the
    z-ordering is verified (O(n) interleavings); trusted callers pass
    ``validate=False`` to skip both.  ``zcodes``, when given, must be
    the items' interleaved codes (ascending, aligned with ``items``);
    callers that sorted the batch themselves pass their sort keys back
    in, skipping the re-interleave entirely.

    >>> run = [((1, 2), "a"), ((3, 4), "b")]
    >>> bulk_load_sorted(run, dims=2, width=8).get((3, 4))
    'b'
    """
    tree = PHTree(dims=dims, width=width, hc_mode=hc_mode, layout=layout)
    if validate:
        zcode = _z_coder(tree)
        computed: List[int] = []
        previous = -1
        for key, _ in items:
            code = zcode(tree._check_key(key))
            if code <= previous:
                raise ValueError(
                    "bulk_load_sorted needs strictly ascending unique "
                    f"z-order keys; violated at {key}"
                )
            previous = code
            computed.append(code)
        if zcodes is not None and list(zcodes) != computed:
            raise ValueError(
                "zcodes disagree with the items' interleaved codes"
            )
        zcodes = computed
    if not items:
        return tree
    if zcodes is None:
        zcode = _z_coder(tree)
        zcodes = [zcode(key) for key, _ in items]
    return _build_from_run(tree, items, zcodes)


def _build_from_run(
    tree: PHTree,
    items: "List[Tuple[Key, Any]]",
    zs: Sequence[int],
) -> PHTree:
    """Fill ``tree`` from a z-sorted, deduplicated run of entries and
    their aligned interleaved codes."""
    if tree.layout == "arena":
        tree._root_off = _fill_arena_node(
            tree, items, zs, 0, len(items), tree.width - 1, 0
        )
        tree._size = len(items)
        return tree
    root = Node(
        post_len=tree.width - 1, infix_len=0, prefix=(0,) * tree.dims
    )
    _fill_node(root, items, zs, 0, len(items), tree.dims, tree)
    tree._root = root
    tree._size = len(items)
    return tree


def _z_code(key: Key, width: int) -> int:
    """Interleaved comparison code (dimension 0 most significant)."""
    from repro.encoding.interleave import interleave

    return interleave(key, width)


def _z_coder(tree: PHTree):
    """The tree's z-code function for already-validated keys: the
    specialized unrolled Morton kernel when the tree carries one (same
    codes, pinned by the property tests), else the generic LUT path."""
    spec = tree._spec
    if spec is not None:
        return spec.interleave
    width = tree.width
    return lambda key: _z_code(key, width)


def _fill_node(
    node: Node,
    items: List[Tuple[Key, Any]],
    zs: Sequence[int],
    lo: int,
    hi: int,
    k: int,
    tree: PHTree,
) -> None:
    """Populate ``node`` with the (z-sorted) entries ``items[lo:hi]``.

    Slots arrive in ascending hypercube-address order (a property of the
    z-sort), so the container is appended to directly and the HC/LHC
    representation is decided exactly once, at the node's final
    occupancy.  Addresses are bits ``[shift, shift + k)`` of each
    z-code; a group's divergence layer is the XOR of its end codes.
    """
    post_len = node.post_len
    container = node.container  # fresh LHCContainer
    addresses = container._addresses
    slots = container._slots
    shift = post_len * k
    mask = (1 << k) - 1
    n_sub = 0
    n_post = 0
    group_start = lo
    while group_start < hi:
        high = zs[group_start] >> shift
        group_end = group_start + 1
        while group_end < hi and (zs[group_end] >> shift) == high:
            group_end += 1
        address = high & mask
        if group_end - group_start == 1:
            key, value = items[group_start]
            addresses.append(address)
            slots.append(Entry(key, value))
            n_post += 1
        else:
            conflict = (
                zs[group_start] ^ zs[group_end - 1]
            ).bit_length() - 1
            conflict //= k
            child = Node(
                post_len=conflict,
                infix_len=post_len - 1 - conflict,
                prefix=masked_prefix(items[group_start][0], conflict),
            )
            _fill_node(child, items, zs, group_start, group_end, k, tree)
            addresses.append(address)
            slots.append(child)
            n_sub += 1
        group_start = group_end
    node._n_sub = n_sub
    node._n_post = n_post
    node._maybe_switch(k, tree._hc_mode, tree._hysteresis)


def _fill_arena_node(
    tree: PHTree,
    items: List[Tuple[Key, Any]],
    zs: Sequence[int],
    lo: int,
    hi: int,
    post_len: int,
    infix_len: int,
) -> int:
    """The arena twin of :func:`_fill_node`: record ``items[lo:hi]`` as
    one slab node (recursing per address group) and return its offset.

    Pairs arrive address-sorted from the z-sort, so the node is written
    once as an exactly-sized LHC table and handed to the engine's
    representation switch at its final occupancy -- the same
    decide-once property the object builder has.
    """
    arena = tree._arena
    k = tree.dims
    shift = post_len * k
    mask = (1 << k) - 1
    pairs: List[Tuple[int, int]] = []
    n_sub = 0
    n_post = 0
    group_start = lo
    while group_start < hi:
        high = zs[group_start] >> shift
        group_end = group_start + 1
        while group_end < hi and (zs[group_end] >> shift) == high:
            group_end += 1
        address = high & mask
        if group_end - group_start == 1:
            key, value = items[group_start]
            pairs.append(
                (
                    address,
                    arena.new_entry(key, arena.store_value(value)) << 1,
                )
            )
            n_post += 1
        else:
            conflict = (
                zs[group_start] ^ zs[group_end - 1]
            ).bit_length() - 1
            conflict //= k
            child = _fill_arena_node(
                tree,
                items,
                zs,
                group_start,
                group_end,
                conflict,
                post_len - 1 - conflict,
            )
            pairs.append((address, (child << 1) | 1))
            n_sub += 1
        group_start = group_end
    n = len(pairs)
    cap_log = (n - 1).bit_length() if n > 2 else 1
    off = tree._alloc_lhc(
        post_len, infix_len, masked_prefix(items[lo][0], post_len), cap_log
    )
    words = arena.words
    cap = 1 << cap_log
    i = off + 2 + k
    for a, ref in pairs:
        words[i] = a
        words[i + cap] = ref
        i += 1
    words[off + 1] = make_counts(n_sub, n_post)
    return tree._maybe_switch_off(off)
