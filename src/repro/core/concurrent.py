"""Thread-safe PH-tree wrapper (paper Outlook, item 3).

The paper notes that "the fact that at most two nodes are modified with
each update makes the PH-tree suitable for concurrent access and
updates".  This module provides the coarse-grained building block: a
reader/writer-locked facade over any PH-tree-like object.  Multiple
readers proceed in parallel; writers get exclusivity.  Iterating methods
(`query`, `items`, ...) are materialised under the read lock so the
caller never observes a tree mutating underneath an open iterator.

Fine-grained (per-node) locking, which the two-node update property
enables in a pointer-stable implementation, is outside the scope of this
reproduction; the interface here is what a downstream user needs for
correctness.
"""

from __future__ import annotations

import threading
from typing import Any, List, Sequence, Tuple

__all__ = ["ReadWriteLock", "SynchronizedPHTree"]


class ReadWriteLock:
    """A writer-preferring reader/writer lock.

    >>> lock = ReadWriteLock()
    >>> with lock.read():
    ...     pass
    >>> with lock.write():
    ...     pass
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        """Enter shared mode; blocks while a writer is active/waiting."""
        with self._mutex:
            while self._writer_active or self._writers_waiting:
                self._readers_done.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Leave shared mode."""
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._readers_done.notify_all()

    def acquire_write(self) -> None:
        """Enter exclusive mode; blocks until all readers leave."""
        with self._mutex:
            self._writers_waiting += 1
            while self._writer_active or self._active_readers:
                self._readers_done.wait()
            self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave exclusive mode and wake waiting readers/writers."""
        with self._mutex:
            self._writer_active = False
            self._readers_done.notify_all()

    def read(self) -> "_Guard":
        """Context manager acquiring the lock in shared mode."""
        return _Guard(self.acquire_read, self.release_read)

    def write(self) -> "_Guard":
        """Context manager acquiring the lock exclusively."""
        return _Guard(self.acquire_write, self.release_write)


class _Guard:
    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release) -> None:
        self._acquire = acquire
        self._release = release

    def __enter__(self) -> None:
        self._acquire()

    def __exit__(self, *exc_info: object) -> None:
        self._release()


class SynchronizedPHTree:
    """A PH-tree (integer or float) behind a reader/writer lock.

    Wraps any object exposing the PHTree API.  Read operations
    (``get``/``contains``/``query``/``knn``/``__len__``) run under the
    shared lock; mutations (``put``/``remove``/``update_key``/``clear``)
    run exclusively.  Query results are returned as lists.

    >>> from repro import PHTree
    >>> tree = SynchronizedPHTree(PHTree(dims=2, width=8))
    >>> tree.put((1, 2), "a")
    >>> tree.get((1, 2))
    'a'
    """

    def __init__(self, tree: Any) -> None:
        self._tree = tree
        self._lock = ReadWriteLock()

    @property
    def lock(self) -> ReadWriteLock:
        """The underlying lock, for compound atomic operations."""
        return self._lock

    @property
    def unsafe_tree(self) -> Any:
        """The wrapped tree; caller must hold the lock appropriately."""
        return self._tree

    # -- mutations (exclusive) -----------------------------------------------

    def put(self, key: Sequence, value: Any = None) -> Any:
        """Insert/update under the exclusive lock."""
        with self._lock.write():
            return self._tree.put(key, value)

    def remove(self, key: Sequence, *args: Any) -> Any:
        """Delete under the exclusive lock."""
        with self._lock.write():
            return self._tree.remove(key, *args)

    def update_key(self, old_key: Sequence, new_key: Sequence) -> None:
        """Move an entry under the exclusive lock."""
        with self._lock.write():
            self._tree.update_key(old_key, new_key)

    def clear(self) -> None:
        """Remove all entries under the exclusive lock."""
        with self._lock.write():
            self._tree.clear()

    def put_all(self, entries: Sequence[Tuple[Sequence, Any]]) -> None:
        """Bulk insert under a single lock acquisition."""
        with self._lock.write():
            for key, value in entries:
                self._tree.put(key, value)

    # -- reads (shared) --------------------------------------------------------

    def get(self, key: Sequence, default: Any = None) -> Any:
        """Lookup under the shared lock."""
        with self._lock.read():
            return self._tree.get(key, default)

    def contains(self, key: Sequence) -> bool:
        """Point query under the shared lock."""
        with self._lock.read():
            return self._tree.contains(key)

    def __contains__(self, key: Sequence) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        with self._lock.read():
            return len(self._tree)

    def query(self, box_min: Sequence, box_max: Sequence) -> List:
        """Materialised window query (safe against concurrent writers)."""
        with self._lock.read():
            return list(self._tree.query(box_min, box_max))

    def knn(self, key: Sequence, n: int = 1) -> List:
        """Nearest neighbours under the shared lock."""
        with self._lock.read():
            return self._tree.knn(key, n)

    def items(self) -> List:
        """Materialised items snapshot under the shared lock."""
        with self._lock.read():
            return list(self._tree.items())

    def keys(self) -> List:
        """Materialised keys snapshot under the shared lock."""
        with self._lock.read():
            return list(self._tree.keys())

    def check_invariants(self) -> None:
        """Structural validation under the shared lock."""
        with self._lock.read():
            self._tree.check_invariants()
