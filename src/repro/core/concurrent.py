"""Thread-safe PH-tree wrapper (paper Outlook, item 3).

The paper notes that "the fact that at most two nodes are modified with
each update makes the PH-tree suitable for concurrent access and
updates".  This module provides the coarse-grained building block: a
reader/writer-locked facade over any PH-tree-like object.  Multiple
readers proceed in parallel; writers get exclusivity.  Iterating methods
(`query`, `items`, ...) are materialised under the read lock so the
caller never observes a tree mutating underneath an open iterator.

Fine-grained (per-node) locking, which the two-node update property
enables in a pointer-stable implementation, is outside the scope of this
reproduction; the interface here is what a downstream user needs for
correctness.
"""

from __future__ import annotations

import threading
from time import monotonic
from typing import Any, List, Optional, Sequence, Tuple

from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt

__all__ = ["LockTimeout", "ReadWriteLock", "SynchronizedPHTree"]


class LockTimeout(TimeoutError):
    """A bounded lock acquisition gave up before getting the lock.

    Raised by :meth:`ReadWriteLock.acquire_read` /
    :meth:`ReadWriteLock.acquire_write` when a ``timeout`` was passed
    and expired; the lock state is left exactly as if the acquisition
    had never been attempted (waiting cohorts are re-notified so nobody
    blocks on the abandoned request).
    """


class ReadWriteLock:
    """A writer-preferring reader/writer lock with bounded writer batching
    and re-entrant read acquisition.

    Writer preference keeps updates from starving behind a stream of
    readers: once a writer waits, newly arriving reader *threads* queue
    behind it.  Plain writer preference has the dual failure mode --
    under sustained write load readers never run -- so preference is
    *bounded*: after ``max_writer_batch`` consecutive writers were
    admitted while readers waited, the waiting reader cohort gets a turn
    before the next writer.

    Read acquisition is re-entrant per thread: a thread already holding
    the lock in shared mode may re-acquire it freely (the nested
    acquisition only bumps a thread-local depth counter), so a reader
    calling back into locked read APIs cannot deadlock against a queued
    writer.  Write acquisition is *not* re-entrant, and lock-order
    violations that would self-deadlock (read -> write upgrade, write ->
    read downgrade, write -> write) raise :class:`RuntimeError` instead
    of hanging.

    >>> lock = ReadWriteLock()
    >>> with lock.read():
    ...     with lock.read():  # re-entrant: never deadlocks
    ...         pass
    >>> with lock.write():
    ...     pass
    """

    def __init__(self, max_writer_batch: int = 8) -> None:
        if max_writer_batch < 1:
            raise ValueError(
                f"max_writer_batch must be >= 1, got {max_writer_batch}"
            )
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer_active = False
        self._writer_thread: Optional[int] = None
        self._writers_waiting = 0
        self._readers_waiting = 0
        # Consecutive writers admitted while readers were waiting; when it
        # reaches the bound, the waiting reader cohort is released.
        self._writer_batch = 0
        self._max_writer_batch = max_writer_batch
        self._readers_turn = False
        self._local = threading.local()

    def _read_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def acquire_read(self, timeout: Optional[float] = None) -> None:
        """Enter shared mode; blocks while a writer is active/waiting
        (unless this thread already holds shared mode -- re-entrant).

        With ``timeout`` (seconds), gives up after the deadline and
        raises :class:`LockTimeout` instead of blocking forever.
        """
        if self._read_depth():
            self._local.depth += 1
            return
        if self._writer_thread == threading.get_ident():
            raise RuntimeError(
                "cannot acquire the read lock while holding the write "
                "lock (downgrade is not supported)"
            )
        deadline = None if timeout is None else monotonic() + timeout
        with self._mutex:
            self._readers_waiting += 1
            try:
                while self._writer_active or (
                    self._writers_waiting and not self._readers_turn
                ):
                    if deadline is None:
                        self._readers_done.wait()
                        continue
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        if _rt.enabled:
                            _probes.lock_timeouts_read.inc()
                        _recorder.record(
                            "lock_timeout", mode="read",
                            timeout_s=timeout,
                        )
                        raise LockTimeout(
                            f"read lock not acquired within "
                            f"{timeout:.3f}s"
                        )
                    self._readers_done.wait(remaining)
            except BaseException:
                # Interrupted wait: leave the cohort without wedging it.
                self._readers_waiting -= 1
                if self._readers_turn and self._readers_waiting == 0:
                    self._readers_turn = False
                    self._readers_done.notify_all()
                raise
            self._readers_waiting -= 1
            self._active_readers += 1
            self._writer_batch = 0
            if self._readers_turn and self._readers_waiting == 0:
                # The whole waiting cohort is in; writers may queue again.
                self._readers_turn = False
        self._local.depth = 1

    def release_read(self) -> None:
        """Leave shared mode (outermost release wakes writers)."""
        depth = self._read_depth()
        if depth == 0:
            raise RuntimeError("release_read without acquire_read")
        if depth > 1:
            self._local.depth = depth - 1
            return
        self._local.depth = 0
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._readers_done.notify_all()

    def acquire_write(self, timeout: Optional[float] = None) -> None:
        """Enter exclusive mode; blocks until all readers leave.

        With ``timeout`` (seconds), gives up after the deadline and
        raises :class:`LockTimeout`; waiting readers queued behind the
        abandoned writer are re-notified so they can proceed.
        """
        me = threading.get_ident()
        if self._writer_thread == me:
            raise RuntimeError("the write lock is not re-entrant")
        if self._read_depth():
            raise RuntimeError(
                "cannot acquire the write lock while holding the read "
                "lock (upgrade is not supported)"
            )
        deadline = None if timeout is None else monotonic() + timeout
        with self._mutex:
            self._writers_waiting += 1
            try:
                while (
                    self._writer_active
                    or self._active_readers
                    or self._readers_turn
                ):
                    if deadline is None:
                        self._readers_done.wait()
                        continue
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        if _rt.enabled:
                            _probes.lock_timeouts_write.inc()
                        _recorder.record(
                            "lock_timeout", mode="write",
                            timeout_s=timeout,
                        )
                        raise LockTimeout(
                            f"write lock not acquired within "
                            f"{timeout:.3f}s"
                        )
                    self._readers_done.wait(remaining)
            except BaseException:
                # Abandoned acquisition: readers may be queued behind
                # this writer (they block while _writers_waiting > 0),
                # so wake everyone to re-evaluate.
                self._writers_waiting -= 1
                self._readers_done.notify_all()
                raise
            self._writers_waiting -= 1
            self._writer_active = True
            self._writer_thread = me

    def release_write(self) -> None:
        """Leave exclusive mode and wake waiting readers/writers."""
        with self._mutex:
            self._writer_active = False
            self._writer_thread = None
            if self._readers_waiting:
                # One more writer went by with readers queued; at the
                # bound, hand the next turn to the reader cohort.
                self._writer_batch += 1
                if self._writer_batch >= self._max_writer_batch:
                    self._readers_turn = True
            else:
                self._writer_batch = 0
            self._readers_done.notify_all()

    def read(self, timeout: Optional[float] = None) -> "_Guard":
        """Context manager acquiring the lock in shared mode (raises
        :class:`LockTimeout` on entry when ``timeout`` expires)."""
        if timeout is None:
            return _Guard(self.acquire_read, self.release_read)
        return _Guard(
            lambda: self.acquire_read(timeout), self.release_read
        )

    def write(self, timeout: Optional[float] = None) -> "_Guard":
        """Context manager acquiring the lock exclusively (raises
        :class:`LockTimeout` on entry when ``timeout`` expires)."""
        if timeout is None:
            return _Guard(self.acquire_write, self.release_write)
        return _Guard(
            lambda: self.acquire_write(timeout), self.release_write
        )


class _Guard:
    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release) -> None:
        self._acquire = acquire
        self._release = release

    def __enter__(self) -> None:
        self._acquire()

    def __exit__(self, *exc_info: object) -> None:
        self._release()


class SynchronizedPHTree:
    """A PH-tree (integer or float) behind a reader/writer lock.

    Wraps any object exposing the PHTree API.  Read operations
    (``get``/``contains``/``query``/``knn``/``__len__``) run under the
    shared lock; mutations (``put``/``remove``/``update_key``/``clear``)
    run exclusively.  Query results are returned as lists.

    >>> from repro import PHTree
    >>> tree = SynchronizedPHTree(PHTree(dims=2, width=8))
    >>> tree.put((1, 2), "a")
    >>> tree.get((1, 2))
    'a'
    """

    def __init__(self, tree: Any) -> None:
        self._tree = tree
        self._lock = ReadWriteLock()

    @property
    def lock(self) -> ReadWriteLock:
        """The underlying lock, for compound atomic operations."""
        return self._lock

    @property
    def unsafe_tree(self) -> Any:
        """The wrapped tree; caller must hold the lock appropriately."""
        return self._tree

    # -- mutations (exclusive) -----------------------------------------------

    def put(self, key: Sequence, value: Any = None) -> Any:
        """Insert/update under the exclusive lock."""
        with self._lock.write():
            return self._tree.put(key, value)

    def remove(self, key: Sequence, *args: Any) -> Any:
        """Delete under the exclusive lock."""
        with self._lock.write():
            return self._tree.remove(key, *args)

    def update_key(self, old_key: Sequence, new_key: Sequence) -> None:
        """Move an entry under the exclusive lock."""
        with self._lock.write():
            self._tree.update_key(old_key, new_key)

    def clear(self) -> None:
        """Remove all entries under the exclusive lock."""
        with self._lock.write():
            self._tree.clear()

    def put_all(self, entries: Sequence[Tuple[Sequence, Any]]) -> None:
        """Bulk insert under a single lock acquisition."""
        with self._lock.write():
            for key, value in entries:
                self._tree.put(key, value)

    # -- reads (shared) --------------------------------------------------------

    def get(self, key: Sequence, default: Any = None) -> Any:
        """Lookup under the shared lock."""
        with self._lock.read():
            return self._tree.get(key, default)

    def contains(self, key: Sequence) -> bool:
        """Point query under the shared lock."""
        with self._lock.read():
            return self._tree.contains(key)

    def __contains__(self, key: Sequence) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        with self._lock.read():
            return len(self._tree)

    def query(self, box_min: Sequence, box_max: Sequence) -> List:
        """Materialised window query (safe against concurrent writers)."""
        with self._lock.read():
            return list(self._tree.query(box_min, box_max))

    def knn(self, key: Sequence, n: int = 1) -> List:
        """Nearest neighbours under the shared lock."""
        with self._lock.read():
            return self._tree.knn(key, n)

    def items(self) -> List:
        """Materialised items snapshot under the shared lock."""
        with self._lock.read():
            return list(self._tree.items())

    def keys(self) -> List:
        """Materialised keys snapshot under the shared lock."""
        with self._lock.read():
            return list(self._tree.keys())

    def check_invariants(self) -> None:
        """Structural validation under the shared lock."""
        with self._lock.read():
            self._tree.check_invariants()
