"""FrozenPHTree: queries straight from the packed byte stream.

The paper argues the PH-tree's bit-stream nodes make it "suitable to be
used not only as an extension for indexing data, but also as a primary
storage layout for databases" (Section 1).  This module takes that claim
literally: :func:`freeze` lays a PH-tree out as one immutable byte string
(nodes serialised depth-first, each sub-node slot prefixed with its bit
length so traversal can *skip* subtrees), and :class:`FrozenPHTree`
answers point and window queries by decoding bits on demand -- no node
objects, no pointers, memory use exactly ``len(data)`` bytes.

Frozen layout (after the header)::

    node := [post_len: 8] [infix: infix_len * k]
            [slot count: k+1]
            ( [address: k] [type: 1] payload )*      -- address-sorted
    payload(entry)    := [postfix: post_len * k] [value: value_bits]
    payload(sub-node) := [body length: 32] node

Compared with :mod:`repro.core.serialize` (which optimises for canonical
compactness), the frozen format spends 32 bits per sub-node to buy
O(depth) navigation.

``freeze(..., learned=True)`` appends an *optional trailer* after the
node stream: a :class:`repro.learned.index.LearnedZIndex` mapping
z-address -> entry rank / value-bit offset, fit in one pass over the
just-frozen stream.  The trailer starts at the first 8-byte boundary
past ``nbytes`` and is self-describing (magic ``PHL1``), so readers
that predate it -- and buffers without it -- are unaffected, and
:class:`FrozenPHTree` attaches it zero-copy when present.  Model-served
reads fall back to the exact descent whenever the measured error bound
is violated; see :mod:`repro.learned.index` for the contract.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.node import Node
from repro.core.phtree import PHTree
from repro.core.serialize import NoneValueCodec
from repro.core.specialize import get_spec
from repro.encoding.bitbuffer import BitBuffer, BitReader
from repro.encoding.interleave import deinterleave as _deinterleave
from repro.encoding.interleave import interleave as _interleave
from repro.learned.index import (
    ABSENT,
    DEFAULT_EPS,
    DEFAULT_WINDOW_CAP,
    FALLBACK,
    LearnedZIndex,
)
from repro.obs import probes as _probes
from repro.obs import runtime as _rt

__all__ = ["FrozenPHTree", "freeze"]

_MAGIC = b"PHF1"
_LEN_BITS = 32

#: Learned window queries scan the z-code array directly; a predicted
#: span longer than this falls back to the exact pruned tree walk.  The
#: scan pays one deinterleave + box check per entry in the z-interval
#: (hits and misses alike) while the walk prunes whole subtrees, so the
#: crossover sits at a few hundred entries: sweeping the cap over
#: 256..4096 on 3d/w20 CUBE data, 256 won at every box extent tried
#: (fatter boxes simply fall back and the seek overhead is noise).
_LEARNED_SCAN_CAP = 256


def freeze(
    tree: PHTree,
    value_codec: Any = NoneValueCodec,
    *,
    learned: bool = False,
    eps: int = DEFAULT_EPS,
    window_cap: int = DEFAULT_WINDOW_CAP,
) -> bytes:
    """Lay ``tree`` out as an immutable, skippable byte stream.

    Arena-backed trees (``layout="arena"``) serialise straight from
    their slabs -- no per-node object materialisation -- which is what
    makes snapshot republish in the parallel layer cheap.  Both paths
    emit identical bytes.

    With ``learned=True`` a :class:`~repro.learned.index.LearnedZIndex`
    trailer is fit over the stream and appended (see the module
    docstring); ``eps`` is the PLA target error and ``window_cap`` the
    measured-error ceiling past which a segment is dead.
    """
    if tree.width > 256:
        raise ValueError(
            f"the frozen format stores post_len in 8 bits; "
            f"width {tree.width} > 256 is not representable"
        )
    arena = getattr(tree, "_arena", None)
    if arena is not None:
        if tree._root_off:
            data, nbits = _freeze_subtree_arena(
                arena, tree._root_off, tree.width, tree.dims, value_codec
            )
            buf = BitBuffer(data, nbits)
        else:
            buf = BitBuffer()
        if _rt.enabled:
            _probes.freeze_arena_fast.inc()
    else:
        buf = BitBuffer()
        if tree.root is not None:
            _write_node(buf, tree.root, tree.width, tree.dims, value_codec)
    header = _MAGIC + struct.pack(
        ">HHQQ", tree.dims, tree.width, len(tree), buf.bit_length
    )
    blob = header + buf.to_bytes()
    if not learned or len(tree) == 0:
        return blob
    frozen = FrozenPHTree(blob, value_codec, learned=False)
    spec = get_spec(tree.dims, tree.width)
    if spec is not None:
        z_of = spec.interleave
    else:
        width = tree.width

        def z_of(key: Tuple[int, ...]) -> int:
            return _interleave(key, width)

    zcodes: List[int] = []
    valpos: List[int] = []
    for key, vpos in frozen._iter_entry_positions():
        zcodes.append(z_of(key))
        valpos.append(vpos)
    model = LearnedZIndex.fit(
        zcodes, valpos, tree.dims * tree.width, eps=eps, window_cap=window_cap
    )
    pad = -len(blob) % 8
    return blob + b"\x00" * pad + model.to_trailer()


def _write_node(
    buf: BitBuffer,
    node: Node,
    parent_post_len: int,
    k: int,
    value_codec: Any,
) -> None:
    buf.append(node.post_len, 8)
    infix_len = parent_post_len - 1 - node.post_len
    if infix_len:
        shift = node.post_len + 1
        mask = (1 << infix_len) - 1
        for value in node.prefix:
            buf.append((value >> shift) & mask, infix_len)
    buf.append(node.num_slots(), k + 1)
    post_bits = node.post_len
    post_mask = (1 << post_bits) - 1
    for address, slot in node.items():
        buf.append(address, k)
        if isinstance(slot, Node):
            buf.append(1, 1)
            # Reserve the length field, write the child, patch the field.
            length_pos = buf.bit_length
            buf.append(0, _LEN_BITS)
            start = buf.bit_length
            _write_node(buf, slot, node.post_len, k, value_codec)
            buf.overwrite(length_pos, buf.bit_length - start, _LEN_BITS)
        else:
            buf.append(0, 1)
            if post_bits:
                for value in slot.key:
                    buf.append(value & post_mask, post_bits)
            buf.append(value_codec.encode(slot.value), value_codec.bits)


def _freeze_subtree_arena(
    arena: Any,
    off: int,
    parent_post_len: int,
    k: int,
    value_codec: Any,
) -> Tuple[int, int]:
    """The slab twin of :func:`_write_node`: build the frozen body of
    the node record at ``off`` (and its subtree) straight from the
    arena words, returning it as one ``(data, bit_length)`` integer.

    Children return their finished bodies bottom-up, so the 32-bit body
    length is a plain field written when the child comes back -- no
    reserve-and-patch pass -- and every bit is shifted only O(depth)
    times as subtree integers combine, instead of the O(stream) cost a
    ``BitBuffer.append`` per field would pay.  The bit stream is
    identical to the object walk's.
    """
    words = arena.words
    entries = arena.entries
    values = arena.values
    vbits = value_codec.bits
    encode = value_codec.encode
    h = words[off]
    post_len = h & 63
    acc = post_len
    bits = 8
    infix_len = parent_post_len - 1 - post_len
    if infix_len:
        shift = post_len + 1
        mask = (1 << infix_len) - 1
        for i in range(off + 2, off + 2 + k):
            acc = (acc << infix_len) | ((words[i] >> shift) & mask)
        bits += infix_len * k
    c = words[off + 1]
    n = (c & 2097151) + ((c >> 21) & 2097151)
    acc = (acc << (k + 1)) | n
    bits += k + 1
    post_mask = (1 << post_len) - 1
    base = off + 2 + k
    if h & 4096:  # HC: 2**k direct slots, already in address order
        pairs = (
            (a, words[base + a]) for a in range(1 << k) if words[base + a]
        )
    else:  # LHC: sorted address region, parallel ref region
        cap = 1 << ((h >> 13) & 63)
        pairs = (
            (words[i], words[i + cap]) for i in range(base, base + n)
        )
    for address, ref in pairs:
        if ref & 1:
            cdata, cbits = _freeze_subtree_arena(
                arena, ref >> 1, post_len, k, value_codec
            )
            # [address: k] [type: 1] [body length: 32] body
            acc = (
                ((((acc << k) | address) << (1 + _LEN_BITS)) | (1 << _LEN_BITS) | cbits)
                << cbits
            ) | cdata
            bits += k + 1 + _LEN_BITS + cbits
        else:
            e = ref >> 1
            acc = ((acc << k) | address) << 1
            bits += k + 1
            if post_len:
                for d in range(e, e + k):
                    acc = (acc << post_len) | (entries[d] & post_mask)
                bits += post_len * k
            value = encode(values[entries[e + k]])
            if value >> vbits:
                raise ValueError(
                    f"value codec emitted {value}, which does not fit "
                    f"its declared {vbits} bits"
                )
            acc = (acc << vbits) | value
            bits += vbits
    return acc, bits


class FrozenPHTree:
    """A read-only PH-tree view over :func:`freeze` output.

    Supports point queries, window queries and iteration with the exact
    semantics of the live tree it was frozen from.  The whole structure
    is the byte string: ``nbytes`` is the stream's exact length.

    ``data`` may be any object exposing the buffer protocol -- ``bytes``,
    ``bytearray``, ``memoryview``, ``mmap`` or a
    ``multiprocessing.shared_memory.SharedMemory.buf`` -- and non-bytes
    buffers are attached *zero-copy*: the tree keeps a ``memoryview`` and
    decodes bits straight out of the caller's storage.  A buffer larger
    than the frozen stream (e.g. a page-rounded shared-memory segment)
    is fine; the header records the exact payload length.

    >>> tree = PHTree(dims=2, width=8)
    >>> tree.put((3, 200), None)
    >>> frozen = FrozenPHTree(freeze(tree))
    >>> frozen.contains((3, 200))
    True
    >>> len(frozen)
    1
    >>> shared = FrozenPHTree(memoryview(freeze(tree) + b"slack"))
    >>> shared.contains((3, 200)) and shared.nbytes == frozen.nbytes
    True
    """

    def __init__(
        self,
        data: "bytes | bytearray | memoryview",
        value_codec: Any = NoneValueCodec,
        *,
        learned: bool = True,
    ) -> None:
        if not isinstance(data, bytes):
            # Zero-copy attach: flatten to unsigned bytes, never copy.
            data = memoryview(data).cast("B")
        if bytes(data[: len(_MAGIC)]) != _MAGIC:
            raise ValueError("not a frozen PH-tree (bad magic)")
        offset = len(_MAGIC)
        if len(data) < offset + struct.calcsize(">HHQQ"):
            raise ValueError("truncated frozen PH-tree header")
        self._dims, self._width, self._size, bit_length = (
            struct.unpack_from(">HHQQ", data, offset)
        )
        offset += struct.calcsize(">HHQQ")
        # The exact stream length; the buffer may be padded beyond it.
        self._nbytes = offset + (bit_length + 7) // 8
        if len(data) < self._nbytes:
            raise ValueError("truncated frozen PH-tree node stream")
        self._reader = BitReader(data[offset:], bit_length)
        self._codec = value_codec
        # A learned trailer, if one follows the stream (zero-copy; the
        # memoryview keeps the caller's buffer alive).  Shared-memory
        # padding is zero-filled, so a missing trailer never false-
        # positives on the magic check.
        self._learned: Optional[LearnedZIndex] = None
        self._zfns = None
        if learned:
            trailer_off = self._nbytes + (-self._nbytes % 8)
            if len(data) > trailer_off:
                view = (
                    data
                    if isinstance(data, memoryview)
                    else memoryview(data)
                )
                self._learned = LearnedZIndex.from_buffer(view, trailer_off)

    @property
    def learned_index(self) -> Optional[LearnedZIndex]:
        """The attached learned z-address model, if the stream carried
        a trailer (and the attach wasn't disabled)."""
        return self._learned

    def _learned_fns(self):
        """Lazy ``(interleave, deinterleave)`` pair for this shape --
        specialised when available, generic otherwise.  Resolved on
        first model-served read so plain attaches stay O(1)."""
        fns = self._zfns
        if fns is None:
            spec = get_spec(self._dims, self._width)
            if spec is not None:
                fns = (spec.interleave, spec.deinterleave)
            else:
                k, width = self._dims, self._width
                fns = (
                    lambda key: _interleave(key, width),
                    lambda code: _deinterleave(code, k, width),
                )
            self._zfns = fns
        return fns

    # -- basics --------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._dims

    @property
    def width(self) -> int:
        """Bit width ``w``."""
        return self._width

    def __len__(self) -> int:
        return self._size

    @property
    def nbytes(self) -> int:
        """Exact frozen-stream size in bytes (header included) --
        snapshot accounting without copying the buffer."""
        return self._nbytes

    def memory_bytes(self) -> int:
        """Exactly the frozen stream's length -- the point of freezing."""
        return self._nbytes

    # -- node parsing ----------------------------------------------------------

    def _parse_header(
        self,
        pos: int,
        parent_post_len: int,
        parent_prefix: Tuple[int, ...],
        parent_address: int,
    ) -> Tuple[int, Tuple[int, ...], int, int]:
        """Decode post_len/prefix/slot-count; return (post_len, prefix,
        n_slots, pos_after_header)."""
        reader = self._reader
        k = self._dims
        post_len = reader.read(pos, 8)
        pos += 8
        infix_len = parent_post_len - 1 - post_len
        prefix = []
        shift = post_len + 1
        for dim in range(k):
            bit = (parent_address >> (k - 1 - dim)) & 1
            prefix.append(parent_prefix[dim] | (bit << parent_post_len))
        if infix_len:
            for dim in range(k):
                infix = reader.read(pos, infix_len)
                pos += infix_len
                prefix[dim] |= infix << shift
        n_slots = reader.read(pos, k + 1)
        pos += k + 1
        return post_len, tuple(prefix), n_slots, pos

    def _entry_at(
        self,
        pos: int,
        post_len: int,
        prefix: Tuple[int, ...],
        address: int,
    ) -> Tuple[Tuple[int, ...], Any, int]:
        """Decode one entry payload; returns (key, value, next_pos)."""
        reader = self._reader
        k = self._dims
        key = []
        for dim in range(k):
            postfix = reader.read(pos, post_len) if post_len else 0
            pos += post_len
            bit = (address >> (k - 1 - dim)) & 1
            key.append(prefix[dim] | (bit << post_len) | postfix)
        value = self._codec.decode(reader.read(pos, self._codec.bits))
        pos += self._codec.bits
        return tuple(key), value, pos

    # -- point queries -----------------------------------------------------------

    def get(self, key: Sequence[int], default: Any = None) -> Any:
        """Value stored at ``key`` or ``default``."""
        found = self._find(tuple(key))
        return default if found is None else found[1]

    def contains(self, key: Sequence[int]) -> bool:
        """Point query against the byte stream."""
        return self._find(tuple(key)) is not None

    def __contains__(self, key: Sequence[int]) -> bool:
        return self.contains(key)

    def _find(self, key: Tuple[int, ...]):
        if self._size == 0:
            return None
        if len(key) != self._dims:
            raise ValueError(
                f"key has {len(key)} dimensions, tree has {self._dims}"
            )
        model = self._learned
        if model is not None:
            width = self._width
            for v in key:
                if v < 0 or (v >> width):
                    # Out of the key domain: interleave would wrap, so
                    # the model could alias; the answer is simply "no".
                    return None
            z_of = self._learned_fns()[0]
            status, rank, abs_err = model.find(z_of(key))
            if status != FALLBACK:
                if _rt.enabled:
                    _probes.learned_lookups_point.inc()
                    _probes.learned_segments_consulted.inc()
                    _probes.learned_prediction_error.inc(abs_err)
                if status == ABSENT:
                    return None
                value = self._codec.decode(
                    self._reader.read(model.value_pos(rank), self._codec.bits)
                )
                return key, value
            if _rt.enabled:
                _probes.learned_lookups_point.inc()
                _probes.learned_fallbacks_point.inc()
        return self._find_exact(key)

    def _find_exact(self, key: Tuple[int, ...]):
        """The model-free descent over the node stream -- the engine
        every learned probe falls back to (and is fuzzed against)."""
        reader = self._reader
        k = self._dims
        pos = 0
        parent_post_len = self._width
        parent_prefix = (0,) * k
        parent_address = 0
        while True:
            post_len, prefix, n_slots, pos = self._parse_header(
                pos, parent_post_len, parent_prefix, parent_address
            )
            shift = post_len + 1
            for dim in range(k):
                if (key[dim] >> shift) != (prefix[dim] >> shift):
                    return None
            target = 0
            for value in key:
                target = (target << 1) | ((value >> post_len) & 1)
            # Scan the address-sorted slot table, skipping sub-trees.
            entry_bits = post_len * k + self._codec.bits
            found_pos = -1
            for _ in range(n_slots):
                address = reader.read(pos, k)
                pos += k
                is_sub = reader.read(pos, 1)
                pos += 1
                if address == target:
                    if not is_sub:
                        entry_key, value, _ = self._entry_at(
                            pos, post_len, prefix, address
                        )
                        return (
                            (entry_key, value)
                            if entry_key == key
                            else None
                        )
                    found_pos = pos + _LEN_BITS
                    break
                if address > target:
                    return None
                if is_sub:
                    pos += _LEN_BITS + reader.read(pos, _LEN_BITS)
                else:
                    pos += entry_bits
            if found_pos < 0:
                return None
            parent_post_len = post_len
            parent_prefix = prefix
            parent_address = target
            pos = found_pos

    # -- iteration and window queries ----------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Iterate all entries in z-order, decoding lazily."""
        if self._size == 0:
            return
        yield from self._walk(0, self._width, (0,) * self._dims, 0, None)

    def keys(self) -> Iterator[Tuple[int, ...]]:
        """Iterate all keys in z-order."""
        for key, _ in self.items():
            yield key

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return self.keys()

    def query(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Window query evaluated directly on the byte stream."""
        box = (tuple(box_min), tuple(box_max))
        if len(box[0]) != self._dims or len(box[1]) != self._dims:
            raise ValueError("query box dimensionality mismatch")
        if any(lo > hi for lo, hi in zip(*box)):
            return
        if self._size == 0:
            return
        if self._learned is not None:
            scan = self._query_learned(box)
            if scan is not None:
                yield from scan
                return
        yield from self._walk(
            0, self._width, (0,) * self._dims, 0, box
        )

    def _query_learned(self, box):
        """Model-predicted scan: locate the z-rank of ``z(box_min)``,
        scan forward to ``z(box_max)`` filtering exactly.  Any entry in
        the box has a z-code inside ``[z(box_min), z(box_max)]``, and
        ranks are z-sorted, so the output (order included) is identical
        to the pruned tree walk's.  Returns ``None`` -- caller walks
        exactly -- when the predicted span exceeds the scan cap."""
        model = self._learned
        max_v = (1 << self._width) - 1
        lo = tuple(min(max(v, 0), max_v) for v in box[0])
        hi = tuple(min(max(v, 0), max_v) for v in box[1])
        if any(a > b for a, b in zip(lo, hi)):
            return iter(())
        z_of, un_z = self._learned_fns()
        start, err_lo, fb_lo = model.seek(z_of(lo))
        end, err_hi, fb_hi = model.seek(z_of(hi) + 1)
        if _rt.enabled:
            _probes.learned_lookups_window.inc()
            _probes.learned_segments_consulted.inc(2)
            _probes.learned_prediction_error.inc(err_lo + err_hi)
            if fb_lo or fb_hi:
                _probes.learned_fallbacks_window.inc()
        if end - start > _LEARNED_SCAN_CAP:
            if _rt.enabled:
                _probes.learned_fallbacks_window.inc()
            return None
        box_lo, box_hi = box
        reader = self._reader
        bits = self._codec.bits
        decode = self._codec.decode

        def scan():
            for rank in range(start, end):
                key = un_z(model.z_at(rank))
                ok = True
                for v, a, b in zip(key, box_lo, box_hi):
                    if v < a or v > b:
                        ok = False
                        break
                if ok:
                    yield key, decode(
                        reader.read(model.value_pos(rank), bits)
                    )

        return scan()

    def _walk(
        self,
        pos: int,
        parent_post_len: int,
        parent_prefix: Tuple[int, ...],
        parent_address: int,
        box: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]],
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        reader = self._reader
        k = self._dims
        post_len, prefix, n_slots, pos = self._parse_header(
            pos, parent_post_len, parent_prefix, parent_address
        )
        if box is not None:
            free = (1 << (post_len + 1)) - 1
            for dim, node_lo in enumerate(prefix):
                if (
                    box[1][dim] < node_lo
                    or box[0][dim] > (node_lo | free)
                ):
                    return
        entry_bits = post_len * k + self._codec.bits
        for _ in range(n_slots):
            address = reader.read(pos, k)
            pos += k
            is_sub = reader.read(pos, 1)
            pos += 1
            if is_sub:
                body = reader.read(pos, _LEN_BITS)
                pos += _LEN_BITS
                yield from self._walk(
                    pos, post_len, prefix, address, box
                )
                pos += body
            else:
                key, value, next_pos = self._entry_at(
                    pos, post_len, prefix, address
                )
                pos = next_pos
                if box is None or all(
                    lo <= v <= hi
                    for v, lo, hi in zip(key, box[0], box[1])
                ):
                    yield key, value

    def count(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> int:
        """Number of entries in the inclusive box."""
        return sum(1 for _ in self.query(box_min, box_max))

    def _knn_seed_bound(self, key: Tuple[int, ...], n: int) -> Optional[int]:
        """Upper bound on the n-th nearest squared distance, seeded by
        the learned model: jump to the query's z-rank, take the 2n
        z-adjacent entries, and use their n-th smallest exact distance.
        Admissible by construction (the bound is a real distance to n
        real entries), so pruning strictly-greater candidates cannot
        change the result set or its tie order."""
        model = self._learned
        if model is None or self._size < n:
            return None
        max_v = (1 << self._width) - 1
        clamped = tuple(min(max(v, 0), max_v) for v in key)
        z_of, un_z = self._learned_fns()
        rank, _err, _fb = model.seek(z_of(clamped))
        lo = rank - n if rank >= n else 0
        hi = min(self._size, lo + 2 * n)
        if hi - lo < n:
            lo = max(0, hi - n)
        if hi - lo < n:
            return None
        if _rt.enabled:
            _probes.learned_lookups_knn.inc()
            _probes.learned_segments_consulted.inc()
        dists = sorted(
            _point_dist_sq(key, un_z(model.z_at(i))) for i in range(lo, hi)
        )
        return dists[n - 1]

    def knn(
        self, key: Sequence[int], n: int = 1
    ) -> List[Tuple[Tuple[int, ...], Any]]:
        """``n`` nearest entries by Euclidean distance in key space,
        computed directly on the byte stream (best-first branch and
        bound over node regions, like the live tree's search).  When a
        learned trailer is attached, the search is seeded with an exact
        distance bound from the query's z-neighbourhood, which prunes
        most heap traffic without affecting results."""
        import heapq

        key = tuple(key)
        if len(key) != self._dims:
            raise ValueError(
                f"key has {len(key)} dimensions, tree has {self._dims}"
            )
        if n <= 0 or self._size == 0:
            return []

        bound = self._knn_seed_bound(key, n)
        z_of = self._learned_fns()[0]
        seq = 0
        # Heap items: (dist, z, seq, kind, payload); kind 0 = node
        # (payload is its parse context, z its region's lowest z-code),
        # kind 1 = entry (payload is (key, value), z the key's z-code).
        # The z component makes equidistant candidates pop in z-order --
        # the live engine's tie contract (see repro.core.knn) -- because
        # a region's lowest z-code never exceeds the z-code of any entry
        # inside it, so a node always pops before a contained tie.
        heap: list = [
            (0, 0, seq, 0, (0, self._width, (0,) * self._dims, 0))
        ]
        reader = self._reader
        k = self._dims
        results: List[Tuple[Tuple[int, ...], Any]] = []
        while heap and len(results) < n:
            dist, _z, _, kind, payload = heapq.heappop(heap)
            if kind == 1:
                results.append(payload)
                continue
            pos, parent_post_len, parent_prefix, parent_address = payload
            post_len, prefix, n_slots, pos = self._parse_header(
                pos, parent_post_len, parent_prefix, parent_address
            )
            for _ in range(n_slots):
                address = reader.read(pos, k)
                pos += k
                is_sub = reader.read(pos, 1)
                pos += 1
                if is_sub:
                    body = reader.read(pos, _LEN_BITS)
                    pos += _LEN_BITS
                    child_context = (pos, post_len, prefix, address)
                    # Child region: prefix + its address bit; lower-bound
                    # with the parent-granularity region (child header
                    # not parsed yet), which is still admissible.
                    child_prefix = tuple(
                        p
                        | (
                            ((address >> (k - 1 - d)) & 1)
                            << post_len
                        )
                        for d, p in enumerate(prefix)
                    )
                    child_dist = _region_dist_sq(
                        key, child_prefix, post_len - 1 if post_len else 0
                    )
                    if bound is None or child_dist <= bound:
                        seq += 1
                        heapq.heappush(
                            heap,
                            (
                                child_dist,
                                z_of(child_prefix),
                                seq,
                                0,
                                child_context,
                            ),
                        )
                    pos += body
                else:
                    entry_key, value, pos = self._entry_at(
                        pos, post_len, prefix, address
                    )
                    entry_dist = _point_dist_sq(key, entry_key)
                    if bound is None or entry_dist <= bound:
                        seq += 1
                        heapq.heappush(
                            heap,
                            (
                                entry_dist,
                                z_of(entry_key),
                                seq,
                                1,
                                (entry_key, value),
                            ),
                        )
        return results

    # -- conversion ---------------------------------------------------------------

    def thaw(self) -> PHTree:
        """Rebuild a mutable PH-tree with this tree's content."""
        tree = PHTree(dims=self._dims, width=self._width)
        for key, value in self.items():
            tree.put(key, value)
        return tree

    # -- learned-trailer support --------------------------------------------------

    def _iter_entry_positions(
        self,
    ) -> Iterator[Tuple[Tuple[int, ...], int]]:
        """Yield ``(key, value_bit_pos)`` for every entry in z-order --
        the one-pass scan the learned trailer is fit from."""
        if self._size == 0:
            return
        yield from self._walk_positions(
            0, self._width, (0,) * self._dims, 0
        )

    def _walk_positions(
        self,
        pos: int,
        parent_post_len: int,
        parent_prefix: Tuple[int, ...],
        parent_address: int,
    ) -> Iterator[Tuple[Tuple[int, ...], int]]:
        reader = self._reader
        k = self._dims
        value_bits = self._codec.bits
        post_len, prefix, n_slots, pos = self._parse_header(
            pos, parent_post_len, parent_prefix, parent_address
        )
        for _ in range(n_slots):
            address = reader.read(pos, k)
            pos += k
            is_sub = reader.read(pos, 1)
            pos += 1
            if is_sub:
                body = reader.read(pos, _LEN_BITS)
                pos += _LEN_BITS
                yield from self._walk_positions(
                    pos, post_len, prefix, address
                )
                pos += body
            else:
                key = []
                for dim in range(k):
                    postfix = (
                        reader.read(pos, post_len) if post_len else 0
                    )
                    pos += post_len
                    bit = (address >> (k - 1 - dim)) & 1
                    key.append(prefix[dim] | (bit << post_len) | postfix)
                yield tuple(key), pos
                pos += value_bits


def _point_dist_sq(
    query: Tuple[int, ...], candidate: Tuple[int, ...]
) -> int:
    """Exact squared Euclidean distance between two keys."""
    total = 0
    for q, v in zip(query, candidate):
        d = q - v
        total += d * d
    return total


def _region_dist_sq(
    query: Tuple[int, ...], prefix: Tuple[int, ...], post_len: int
) -> int:
    """Squared distance from ``query`` to the axis-aligned region whose
    per-dim range is ``[prefix, prefix | (2^(post_len+1) - 1)]``."""
    free = (1 << (post_len + 1)) - 1
    total = 0
    for q, lo in zip(query, prefix):
        hi = lo | free
        if q < lo:
            d = lo - q
        elif q > hi:
            d = q - hi
        else:
            continue
        total += d * d
    return total
