"""HC and LHC slot containers (paper Section 3.2, Figure 3).

Each PH-tree node addresses its children through a hypercube of ``2**k``
slots.  Densely filled nodes store the slots as a flat array (*HC*
representation: O(1) lookup); sparsely filled nodes store a sorted table of
``(address, slot)`` pairs (*LHC*, linear representation: O(log n) binary
search).  The node switches automatically between the two depending on which
needs fewer bits under the paper's size model (see :func:`hc_bits`,
:func:`lhc_bits` and :func:`prefer_hc`).

A *slot* is either an :class:`~repro.core.node.Entry` (a postfix, i.e. a
stored key/value) or a :class:`~repro.core.node.Node` (a sub-node).  The
containers themselves are agnostic of the slot type.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Iterator, List, Optional, Tuple

__all__ = [
    "HCContainer",
    "LHCContainer",
    "REF_BITS",
    "SLOT_FLAG_BITS",
    "VALUE_REF_BITS",
    "hc_bits",
    "lhc_bits",
    "max_hc_dimensions",
    "prefer_hc",
]

# Size-model constants, matching the paper's Java testbed (64-bit JVM with
# compressed oops): references are 32 bits, every HC slot carries a 2-bit
# occupancy flag (empty / postfix / sub-node), every LHC row additionally
# stores its k-bit hypercube address.
REF_BITS = 32
SLOT_FLAG_BITS = 2
VALUE_REF_BITS = 32

# Above this dimensionality a 2**k slot array would be absurd even when the
# size model nominally favours it (it cannot for realistic n anyway); the
# container factory refuses to build HC arrays beyond it.
_MAX_HC_DIM = 20


def max_hc_dimensions() -> int:
    """Largest dimensionality for which an HC array may be materialised."""
    return _MAX_HC_DIM


def hc_bits(k: int, n_sub: int, n_post: int, postfix_bits: int) -> int:
    """Size in bits of the HC representation of a node's slot table.

    The paper (Section 3.2): HC has fixed space requirements of O(2**k) bits
    for sub-nodes and O(lp * 2**k) bits when storing postfixes -- i.e. the
    flag array and the postfix space are reserved for *every* slot, while
    sub-node references cost ``REF_BITS`` per actual sub-node.

    ``postfix_bits`` is the per-entry postfix payload ``lp * k`` (plus value
    reference), identical for all entries of one node.
    """
    slots = 1 << k
    return (
        slots * SLOT_FLAG_BITS
        + slots * postfix_bits
        + n_sub * REF_BITS
        + n_post * VALUE_REF_BITS
    )


def lhc_bits(k: int, n_sub: int, n_post: int, postfix_bits: int) -> int:
    """Size in bits of the LHC representation of a node's slot table.

    Every occupied slot stores its k-bit HC address plus a type flag; only
    occupied postfix slots pay for postfix storage (``O(np * k * lp)`` in
    the paper's terms).
    """
    n = n_sub + n_post
    return (
        n * (k + SLOT_FLAG_BITS)
        + n_post * postfix_bits
        + n_sub * REF_BITS
        + n_post * VALUE_REF_BITS
    )


def prefer_hc(
    k: int,
    n_sub: int,
    n_post: int,
    postfix_bits: int,
    hysteresis: float = 0.0,
    currently_hc: bool = False,
) -> bool:
    """Decide whether the HC representation needs fewer bits.

    ``hysteresis`` implements the paper's suggested "relaxed switching
    condition" (Section 3.2): a representation is only abandoned when the
    other one is smaller by more than ``hysteresis`` (fraction).  With the
    default 0.0 the decision is a plain size comparison, as in the paper's
    evaluated implementation.
    """
    if k > _MAX_HC_DIM:
        return False
    hc = hc_bits(k, n_sub, n_post, postfix_bits)
    lhc = lhc_bits(k, n_sub, n_post, postfix_bits)
    if hysteresis <= 0.0:
        return hc <= lhc
    if currently_hc:
        return hc <= lhc * (1.0 + hysteresis)
    return hc * (1.0 + hysteresis) <= lhc


class HCContainer:
    """Flat ``2**k``-slot array: O(1) access by hypercube address.

    Occupied addresses are additionally tracked in a set so that
    operations needing *only the occupied slots* (notably
    :meth:`single_item`, which runs on every delete-triggered node
    merge) stay O(occupancy) instead of scanning all ``2**k`` slots.
    """

    __slots__ = ("_slots", "_count", "_occupied")

    is_hc = True

    def __init__(self, k: int) -> None:
        if k > _MAX_HC_DIM:
            raise ValueError(
                f"refusing to allocate a 2**{k}-slot HC array "
                f"(limit is k={_MAX_HC_DIM})"
            )
        self._slots: List[Any] = [None] * (1 << k)
        self._count = 0
        self._occupied: set = set()

    def __len__(self) -> int:
        return self._count

    @property
    def n_slots(self) -> int:
        """Total slot capacity (``2**k``)."""
        return len(self._slots)

    def get(self, address: int) -> Any:
        """Return the slot at ``address`` or None."""
        return self._slots[address]

    def put(self, address: int, slot: Any) -> Any:
        """Store ``slot`` at ``address``; return the previous occupant."""
        if slot is None:
            raise ValueError("use remove() to clear a slot")
        previous = self._slots[address]
        self._slots[address] = slot
        if previous is None:
            self._count += 1
            self._occupied.add(address)
        return previous

    def remove(self, address: int) -> Any:
        """Clear ``address`` and return what was stored there (or None)."""
        previous = self._slots[address]
        if previous is not None:
            self._slots[address] = None
            self._count -= 1
            self._occupied.discard(address)
        return previous

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate occupied ``(address, slot)`` pairs in address order."""
        for address, slot in enumerate(self._slots):
            if slot is not None:
                yield address, slot

    def items_in_mask_range(
        self, mask_lower: int, mask_upper: int
    ) -> Iterator[Tuple[int, Any]]:
        """Iterate occupied slots whose address fits the query masks.

        Uses the paper's successor computation to jump between candidate
        addresses instead of scanning all ``2**k`` slots (Section 3.5).
        """
        slots = self._slots
        address = mask_lower
        while True:
            slot = slots[address]
            if slot is not None:
                yield address, slot
            if address >= mask_upper:
                return
            address = successor(address, mask_lower, mask_upper)

    def single_item(self) -> Tuple[int, Any]:
        """Return the only occupied slot; requires ``len(self) == 1``.

        O(1) via the occupied-address set (the seed implementation
        scanned all ``2**k`` slots, on every delete-triggered merge).
        """
        if self._count != 1:
            raise ValueError(f"container holds {self._count} slots, not 1")
        for address in self._occupied:
            return address, self._slots[address]
        raise AssertionError("count/slot bookkeeping out of sync")


class LHCContainer:
    """Sorted linear table of ``(address, slot)`` pairs: O(log n) access."""

    __slots__ = ("_addresses", "_slots")

    is_hc = False

    def __init__(self) -> None:
        self._addresses: List[int] = []
        self._slots: List[Any] = []

    def __len__(self) -> int:
        return len(self._addresses)

    def get(self, address: int) -> Any:
        """Return the slot at ``address`` or None (binary search)."""
        i = bisect_left(self._addresses, address)
        if i < len(self._addresses) and self._addresses[i] == address:
            return self._slots[i]
        return None

    def put(self, address: int, slot: Any) -> Any:
        """Store ``slot`` at ``address``; return the previous occupant."""
        if slot is None:
            raise ValueError("use remove() to clear a slot")
        i = bisect_left(self._addresses, address)
        if i < len(self._addresses) and self._addresses[i] == address:
            previous = self._slots[i]
            self._slots[i] = slot
            return previous
        self._addresses.insert(i, address)
        self._slots.insert(i, slot)
        return None

    def remove(self, address: int) -> Any:
        """Remove ``address`` and return what was stored there (or None)."""
        i = bisect_left(self._addresses, address)
        if i < len(self._addresses) and self._addresses[i] == address:
            self._addresses.pop(i)
            return self._slots.pop(i)
        return None

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate ``(address, slot)`` pairs in address order."""
        return iter(zip(self._addresses, self._slots))

    def items_in_mask_range(
        self, mask_lower: int, mask_upper: int
    ) -> Iterator[Tuple[int, Any]]:
        """Iterate stored slots whose address fits the query masks.

        Scans the sorted table from the first address >= ``mask_lower`` and
        filters with the single-operation mask check of Section 3.5.
        """
        addresses = self._addresses
        start = bisect_left(addresses, mask_lower)
        for i in range(start, len(addresses)):
            address = addresses[i]
            if address > mask_upper:
                return
            if (address | mask_lower) == address and (
                address & mask_upper
            ) == address:
                yield address, self._slots[i]

    def single_item(self) -> Tuple[int, Any]:
        """Return the only stored pair; requires ``len(self) == 1``."""
        if len(self._addresses) != 1:
            raise ValueError(
                f"container holds {len(self._addresses)} slots, not 1"
            )
        return self._addresses[0], self._slots[0]


def successor(address: int, mask_lower: int, mask_upper: int) -> int:
    """Smallest valid hypercube address strictly greater than ``address``.

    An address ``h`` is *valid* for the query masks when
    ``(h | mask_lower) == h and (h & mask_upper) == h`` (Section 3.5).  The
    computation propagates a carry through the "free" bit positions only:
    forced-one bits (``mask_lower``) and forced-zero bits (``~mask_upper``)
    are skipped in a single add.

    The caller must pass a *valid* ``address`` (iteration starts at
    ``mask_lower``, which is always valid) with ``address < mask_upper``;
    the result then is the next valid address and is ``<= mask_upper``.
    """
    r = (address | ~mask_upper) + 1
    return (r & mask_upper) | mask_lower


def convert_container(
    source: Any, k: int, to_hc: bool
) -> Optional[Any]:
    """Rebuild ``source`` in the other representation; None if no-op."""
    if to_hc == source.is_hc:
        return None
    target: Any = HCContainer(k) if to_hc else LHCContainer()
    for address, slot in source.items():
        target.put(address, slot)
    return target
