"""Iterative traversal kernel for the PH-tree hot paths.

The seed implementation of the window query (``range_query.range_iter``)
kept one *generator object per visited node* on an explicit stack and
re-entered ``compute_masks`` / ``key_in_box`` / ``successor`` through
function calls for every node and entry.  In pure Python the per-frame
generator resume, the ``(address, slot)`` tuple allocation per slot and
the call overhead dominate the actual bit arithmetic of Section 3.5.

This module replaces that engine with a single flat loop:

- one explicit stack of plain frame tuples, pushed/popped only at node
  boundaries (never per slot),
- direct iteration over the container's internal slot arrays -- an
  address cursor stepped with the paper's successor computation for HC
  nodes, an index cursor over the sorted table for LHC nodes,
- the mask computation (``m_L``/``m_U``), the node/box intersection and
  full-coverage tests fused into one loop over the dimensions, inlined
  with all bounds hoisted into locals,
- the 'node lies completely inside the query' fast path of Section 3.5
  implemented as an unchecked *flush* mode instead of recursion: covered
  subtrees are walked by the same loop with all filtering disabled,
- a plain-scan mode for interior nodes whose masks are trivial
  (``m_L == 0`` and ``m_U == 2**k - 1``, i.e. every slot valid), which
  skips the successor stepping and the per-address mask check entirely.

The same kernel serves the exact window query, the approximate window
query (``slack_bits > 0`` relaxes both the subtree-flush granularity and
the per-entry containment check) and -- through :func:`iter_slots` and
:func:`iter_subtree` -- the kNN engine's region visits and full-tree
iteration.  Traversal order is z-order (ascending hypercube address,
depth first), bit-identical to the seed engine.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.core.node import Node
from repro.obs import probes as _probes
from repro.obs import runtime as _rt

__all__ = [
    "arena_range_scan",
    "iter_arena_subtree",
    "iter_slots",
    "iter_subtree",
    "range_scan",
]

# Frame modes of the flat traversal loop.
_FLUSH = 0  # node fully covered: no mask stepping, no entry checks
_MASKED = 1  # mask-guided address iteration, entries checked
_SCAN = 2  # trivial masks: plain slot scan, entries still checked


def iter_slots(container: Any) -> Iterator[Any]:
    """Yield every occupied slot of a container, in address order.

    Unlike ``container.items()`` this does not materialise an
    ``(address, slot)`` tuple per slot; it is the shared slot-visit
    primitive of the kernel, also used by the kNN engine's node
    expansion.
    """
    if container.is_hc:
        for slot in container._slots:
            if slot is not None:
                yield slot
    else:
        yield from container._slots


def iter_subtree(node: Node) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Yield every entry below ``node`` in z-order, without any checks.

    Iterative replacement for the seed's recursive ``_yield_subtree``:
    the stack holds plain ``(slots, cursor, limit)`` triples, touched
    only at node boundaries.
    """
    slots = node.container._slots
    cur = 0
    limit = len(slots)
    stack = []
    node_cls = Node
    while True:
        if cur >= limit:
            if not stack:
                return
            slots, cur, limit = stack.pop()
            continue
        slot = slots[cur]
        cur += 1
        if slot is None:
            continue
        if slot.__class__ is node_cls:
            stack.append((slots, cur, limit))
            slots = slot.container._slots
            cur = 0
            limit = len(slots)
        else:
            yield slot.key, slot.value


def range_scan(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int = 0,
    spec: Any = None,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Yield all entries in the inclusive box, in z-order.

    ``slack_bits = 0`` is the exact window query of Section 3.5;
    ``slack_bits > 0`` is the approximate variant (reference [17]): any
    node spanning at most ``2**slack_bits`` per dimension is flushed
    wholesale and entries are accepted within ``2**slack_bits - 1`` of
    the box, yielding a superset of the exact result.

    ``spec`` is an optional per-(k, width)
    :class:`~repro.core.specialize.Specialization`; when given, its
    unrolled twin of this engine runs instead (bit-identical results and
    probe counts, pinned by the parity tests).

    The observability flag is checked exactly once per call: disabled
    (the default), the uninstrumented engine below runs untouched;
    enabled, the bit-identical instrumented twin
    (:func:`_range_scan_instrumented`) runs instead and publishes its
    traversal counts into :mod:`repro.obs.probes`.
    """
    if _rt.enabled:
        if spec is not None:
            return spec.range_scan_instrumented(
                root, box_min, box_max, slack_bits
            )
        return _range_scan_instrumented(root, box_min, box_max, slack_bits)
    if spec is not None:
        return spec.range_scan_plain(root, box_min, box_max, slack_bits)
    return _range_scan_plain(root, box_min, box_max, slack_bits)


def _range_scan_plain(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int = 0,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """The uninstrumented engine (see :func:`range_scan`)."""
    if root is None:
        return
    bmin = box_min if type(box_min) is tuple else tuple(box_min)
    bmax = box_max if type(box_max) is tuple else tuple(box_max)
    for lo, hi in zip(bmin, bmax):
        if lo > hi:
            return
    k = len(bmin)
    full = (1 << k) - 1
    node_cls = Node
    if slack_bits > 0:
        slack = (1 << slack_bits) - 1
        lo_chk = tuple(v - slack for v in bmin)
        hi_chk = tuple(v + slack for v in bmax)
    else:
        lo_chk = bmin
        hi_chk = bmax

    # -- classify the root (never flushed, mirroring the seed engine) --
    post = root.post_len
    free = (1 << (post + 1)) - 1
    ml = mh = 0
    for nlo, lo, hi in zip(root.prefix, bmin, bmax):
        nhi = nlo | free
        if hi < nlo or lo > nhi:
            return
        if lo < nlo:
            lo = nlo
        if hi > nhi:
            hi = nhi
        ml = (ml << 1) | ((lo >> post) & 1)
        mh = (mh << 1) | ((hi >> post) & 1)
    cont = root.container
    slots = cont._slots
    limit = len(slots)
    if cont.is_hc:
        addrs = None
        if ml == 0 and mh == full:
            mode = _SCAN
            cur = 0
        else:
            mode = _MASKED
            cur = ml
    else:
        addrs = cont._addresses
        if ml == 0 and mh == full:
            mode = _SCAN
            cur = 0
        else:
            mode = _MASKED
            cur = bisect_left(addrs, ml)

    stack = []
    pop = stack.pop
    push = stack.append

    while True:
        # ---- fetch the next occupied slot of the current frame ----
        if mode == _MASKED:
            if addrs is None:  # HC: successor-stepped address cursor
                if cur < 0:
                    if not stack:
                        return
                    slots, addrs, cur, ml, mh, mode, limit = pop()
                    continue
                a = cur
                # Next valid address (paper Section 3.5), or done.
                cur = -1 if a >= mh else ((((a | ~mh) + 1) & mh) | ml)
                slot = slots[a]
                if slot is None:
                    continue
            else:  # LHC: index cursor over the sorted address table
                if cur >= limit:
                    if not stack:
                        return
                    slots, addrs, cur, ml, mh, mode, limit = pop()
                    continue
                a = addrs[cur]
                if a > mh:
                    if not stack:
                        return
                    slots, addrs, cur, ml, mh, mode, limit = pop()
                    continue
                slot = slots[cur]
                cur += 1
                if (a | ml) != a or (a & mh) != a:
                    continue
        else:  # _FLUSH and _SCAN: plain slot scan
            if cur >= limit:
                if not stack:
                    return
                slots, addrs, cur, ml, mh, mode, limit = pop()
                continue
            slot = slots[cur]
            cur += 1
            if slot is None:
                continue

        # ---- process the slot ----
        if slot.__class__ is node_cls:
            if mode == _FLUSH:
                push((slots, addrs, cur, ml, mh, mode, limit))
                cont = slot.container
                slots = cont._slots
                addrs = None
                cur = 0
                limit = len(slots)
                continue
            # Fused intersection / coverage / mask computation.
            cpost = slot.post_len
            cfree = (1 << (cpost + 1)) - 1
            cml = cmh = 0
            inside = True
            hit = True
            for nlo, lo, hi in zip(slot.prefix, bmin, bmax):
                nhi = nlo | cfree
                if hi < nlo or lo > nhi:
                    hit = False
                    break
                if nlo < lo or nhi > hi:
                    inside = False
                if lo < nlo:
                    lo = nlo
                if hi > nhi:
                    hi = nhi
                cml = (cml << 1) | ((lo >> cpost) & 1)
                cmh = (cmh << 1) | ((hi >> cpost) & 1)
            if not hit:
                continue
            push((slots, addrs, cur, ml, mh, mode, limit))
            cont = slot.container
            slots = cont._slots
            limit = len(slots)
            if inside or cpost < slack_bits:
                # Fully covered (or within the approximation slack):
                # flush the whole subtree with filtering disabled.
                addrs = None
                mode = _FLUSH
                cur = 0
            elif cont.is_hc:
                addrs = None
                if cml == 0 and cmh == full:
                    mode = _SCAN
                    cur = 0
                else:
                    mode = _MASKED
                    ml = cml
                    mh = cmh
                    cur = cml
            else:
                addrs = cont._addresses
                if cml == 0 and cmh == full:
                    mode = _SCAN
                    cur = 0
                else:
                    mode = _MASKED
                    ml = cml
                    mh = cmh
                    cur = bisect_left(addrs, cml)
            continue

        # Entry (postfix).
        if mode == _FLUSH:
            yield slot.key, slot.value
        else:
            key = slot.key
            for v, lo, hi in zip(key, lo_chk, hi_chk):
                if v < lo or v > hi:
                    break
            else:
                yield key, slot.value


def _range_scan_instrumented(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int = 0,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Line-for-line twin of :func:`_range_scan_plain` with traversal
    counters (tests pin the two engines bit-identical; keep every
    non-counter line in sync with the plain engine above).

    Counts are accumulated in locals and published once -- in the
    ``finally`` clause, so abandoned generators still report the partial
    traversal they performed.
    """
    if root is None:
        return
    bmin = box_min if type(box_min) is tuple else tuple(box_min)
    bmax = box_max if type(box_max) is tuple else tuple(box_max)
    for lo, hi in zip(bmin, bmax):
        if lo > hi:
            return
    k = len(bmin)
    full = (1 << k) - 1
    node_cls = Node
    if slack_bits > 0:
        slack = (1 << slack_bits) - 1
        lo_chk = tuple(v - slack for v in bmin)
        hi_chk = tuple(v + slack for v in bmax)
    else:
        lo_chk = bmin
        hi_chk = bmax

    # -- classify the root (never flushed, mirroring the seed engine) --
    post = root.post_len
    free = (1 << (post + 1)) - 1
    ml = mh = 0
    for nlo, lo, hi in zip(root.prefix, bmin, bmax):
        nhi = nlo | free
        if hi < nlo or lo > nhi:
            return
        if lo < nlo:
            lo = nlo
        if hi > nhi:
            hi = nhi
        ml = (ml << 1) | ((lo >> post) & 1)
        mh = (mh << 1) | ((hi >> post) & 1)
    cont = root.container
    slots = cont._slots
    limit = len(slots)
    if cont.is_hc:
        addrs = None
        if ml == 0 and mh == full:
            mode = _SCAN
            cur = 0
        else:
            mode = _MASKED
            cur = ml
    else:
        addrs = cont._addresses
        if ml == 0 and mh == full:
            mode = _SCAN
            cur = 0
        else:
            mode = _MASKED
            cur = bisect_left(addrs, ml)

    # Traversal counters (locals; published once in the finally below).
    c_nodes = 1
    c_hc = 1 if cont.is_hc else 0
    c_frames = 0
    c_slots = 0
    c_flush = 0
    c_plain = 1 if mode == _SCAN else 0
    c_maskrej = 0
    c_noderej = 0
    c_postdrop = 0
    c_entries = 0

    stack = []
    pop = stack.pop
    push = stack.append

    try:
        while True:
            # ---- fetch the next occupied slot of the current frame ----
            if mode == _MASKED:
                if addrs is None:  # HC: successor-stepped address cursor
                    if cur < 0:
                        if not stack:
                            return
                        slots, addrs, cur, ml, mh, mode, limit = pop()
                        continue
                    a = cur
                    # Next valid address (paper Section 3.5), or done.
                    cur = (
                        -1 if a >= mh else ((((a | ~mh) + 1) & mh) | ml)
                    )
                    slot = slots[a]
                    c_slots += 1
                    if slot is None:
                        continue
                else:  # LHC: index cursor over the sorted address table
                    if cur >= limit:
                        if not stack:
                            return
                        slots, addrs, cur, ml, mh, mode, limit = pop()
                        continue
                    a = addrs[cur]
                    if a > mh:
                        if not stack:
                            return
                        slots, addrs, cur, ml, mh, mode, limit = pop()
                        continue
                    slot = slots[cur]
                    cur += 1
                    c_slots += 1
                    if (a | ml) != a or (a & mh) != a:
                        c_maskrej += 1
                        continue
            else:  # _FLUSH and _SCAN: plain slot scan
                if cur >= limit:
                    if not stack:
                        return
                    slots, addrs, cur, ml, mh, mode, limit = pop()
                    continue
                slot = slots[cur]
                cur += 1
                c_slots += 1
                if slot is None:
                    continue

            # ---- process the slot ----
            if slot.__class__ is node_cls:
                if mode == _FLUSH:
                    push((slots, addrs, cur, ml, mh, mode, limit))
                    cont = slot.container
                    slots = cont._slots
                    addrs = None
                    cur = 0
                    limit = len(slots)
                    c_frames += 1
                    c_nodes += 1
                    if cont.is_hc:
                        c_hc += 1
                    continue
                # Fused intersection / coverage / mask computation.
                cpost = slot.post_len
                cfree = (1 << (cpost + 1)) - 1
                cml = cmh = 0
                inside = True
                hit = True
                for nlo, lo, hi in zip(slot.prefix, bmin, bmax):
                    nhi = nlo | cfree
                    if hi < nlo or lo > nhi:
                        hit = False
                        break
                    if nlo < lo or nhi > hi:
                        inside = False
                    if lo < nlo:
                        lo = nlo
                    if hi > nhi:
                        hi = nhi
                    cml = (cml << 1) | ((lo >> cpost) & 1)
                    cmh = (cmh << 1) | ((hi >> cpost) & 1)
                if not hit:
                    c_noderej += 1
                    continue
                push((slots, addrs, cur, ml, mh, mode, limit))
                cont = slot.container
                slots = cont._slots
                limit = len(slots)
                c_frames += 1
                c_nodes += 1
                if cont.is_hc:
                    c_hc += 1
                if inside or cpost < slack_bits:
                    # Fully covered (or within the approximation slack):
                    # flush the whole subtree with filtering disabled.
                    addrs = None
                    mode = _FLUSH
                    cur = 0
                    c_flush += 1
                elif cont.is_hc:
                    addrs = None
                    if cml == 0 and cmh == full:
                        mode = _SCAN
                        cur = 0
                        c_plain += 1
                    else:
                        mode = _MASKED
                        ml = cml
                        mh = cmh
                        cur = cml
                else:
                    addrs = cont._addresses
                    if cml == 0 and cmh == full:
                        mode = _SCAN
                        cur = 0
                        c_plain += 1
                    else:
                        mode = _MASKED
                        ml = cml
                        mh = cmh
                        cur = bisect_left(addrs, cml)
                continue

            # Entry (postfix).
            if mode == _FLUSH:
                c_entries += 1
                yield slot.key, slot.value
            else:
                key = slot.key
                for v, lo, hi in zip(key, lo_chk, hi_chk):
                    if v < lo or v > hi:
                        c_postdrop += 1
                        break
                else:
                    c_entries += 1
                    yield key, slot.value
    finally:
        _probes.record_range_scan(
            c_nodes,
            c_hc,
            c_frames,
            c_slots,
            c_flush,
            c_plain,
            c_maskrej,
            c_noderej,
            c_postdrop,
            c_entries,
        )


def iter_arena_subtree(
    arena: Any, root: int
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Arena twin of :func:`iter_subtree`: every entry below node offset
    ``root``, in z-order, straight off the slabs."""
    words = arena.words
    entries = arena.entries
    values = arena.values
    k = arena.k
    h = words[root]
    base = root + 2 + k
    if h & 4096:
        cur = base
        limit = base + (1 << k)
    else:
        # LHC refs are one contiguous run after the address region.
        c = words[root + 1]
        cur = base + (1 << ((h >> 13) & 63))
        limit = cur + (c & 2097151) + ((c >> 21) & 2097151)
    stack = []
    while True:
        if cur >= limit:
            if not stack:
                return
            cur, limit = stack.pop()
            continue
        ref = words[cur]
        cur += 1
        if not ref:
            continue
        if ref & 1:
            stack.append((cur, limit))
            child = ref >> 1
            h = words[child]
            base = child + 2 + k
            if h & 4096:
                cur = base
                limit = base + (1 << k)
            else:
                c = words[child + 1]
                cur = base + (1 << ((h >> 13) & 63))
                limit = cur + (c & 2097151) + ((c >> 21) & 2097151)
        else:
            e = ref >> 1
            vref = entries[e + k]
            yield tuple(entries[e : e + k]), (
                values[vref]
            )


def arena_range_scan(
    tree: Any,
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int = 0,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Window-scan an arena tree: dispatch to the tree's specialized
    slab kernel when it has one (plain or instrumented twin per the
    observability switch), else fall back to the generic mode machine
    of :func:`_arena_range_scan_generic`."""
    spec = tree._spec
    if spec is not None:
        if _rt.enabled:
            return spec.arena_range_scan_instrumented(
                tree, box_min, box_max, slack_bits
            )
        return spec.arena_range_scan_plain(
            tree, box_min, box_max, slack_bits
        )
    return _arena_range_scan_generic(tree, box_min, box_max, slack_bits)


def _arena_range_scan_generic(
    tree: Any,
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int = 0,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Arena twin of :func:`range_scan`: the same flat mode machine
    (masked / plain-scan / flush frames, z-order output), reading header
    and slot words off the slabs instead of chasing containers.

    Frames carry ``(hc, base, rbase, limit, cur, ml, mh, mode)``: for HC
    nodes ``base == rbase`` indexes the 2**k direct table (``cur`` is an
    address in masked mode, a table index otherwise); for LHC nodes
    ``base`` is the sorted address region, ``rbase`` the parallel ref
    region, ``cur`` a slot index and ``limit`` the occupied slot count.
    Traversal counters
    accumulate in locals either way and publish only when observability
    is enabled (results are what the lockstep fuzzer compares).
    """
    root = tree._root_off
    if not root:
        return
    arena = tree._arena
    words = arena.words
    entries = arena.entries
    values = arena.values
    bmin = box_min if type(box_min) is tuple else tuple(box_min)
    bmax = box_max if type(box_max) is tuple else tuple(box_max)
    for lo, hi in zip(bmin, bmax):
        if lo > hi:
            return
    k = arena.k
    full = (1 << k) - 1
    if slack_bits > 0:
        slack = (1 << slack_bits) - 1
        lo_chk = tuple(v - slack for v in bmin)
        hi_chk = tuple(v + slack for v in bmax)
    else:
        lo_chk = bmin
        hi_chk = bmax

    # -- classify the root (never flushed, mirroring the object engine) --
    h = words[root]
    post = h & 63
    free = (1 << (post + 1)) - 1
    ml = mh = 0
    d = root + 2
    for lo, hi in zip(bmin, bmax):
        nlo = words[d]
        d += 1
        nhi = nlo | free
        if hi < nlo or lo > nhi:
            return
        if lo < nlo:
            lo = nlo
        if hi > nhi:
            hi = nhi
        ml = (ml << 1) | ((lo >> post) & 1)
        mh = (mh << 1) | ((hi >> post) & 1)
    hc = h & 4096
    base = root + 2 + k
    if hc:
        rbase = base
        limit = 1 << k
        if ml == 0 and mh == full:
            mode = _SCAN
            cur = 0
        else:
            mode = _MASKED
            cur = ml
    else:
        c = words[root + 1]
        rbase = base + (1 << ((h >> 13) & 63))
        limit = (c & 2097151) + ((c >> 21) & 2097151)
        if ml == 0 and mh == full:
            mode = _SCAN
            cur = 0
        else:
            mode = _MASKED
            cur = bisect_left(words, ml, base, base + limit) - base

    c_nodes = 1
    c_hc = 1 if hc else 0
    c_frames = 0
    c_slots = 0
    c_flush = 0
    c_plain = 1 if mode == _SCAN else 0
    c_maskrej = 0
    c_noderej = 0
    c_postdrop = 0
    c_entries = 0

    stack = []
    pop = stack.pop
    push = stack.append

    try:
        while True:
            # ---- fetch the next occupied slot of the current frame ----
            if mode == _MASKED:
                if hc:  # HC: successor-stepped address cursor
                    if cur < 0:
                        if not stack:
                            return
                        hc, base, rbase, limit, cur, ml, mh, mode = pop()
                        continue
                    a = cur
                    # Next valid address (paper Section 3.5), or done.
                    cur = (
                        -1 if a >= mh else ((((a | ~mh) + 1) & mh) | ml)
                    )
                    ref = words[base + a]
                    c_slots += 1
                    if not ref:
                        continue
                else:  # LHC: index cursor over the sorted address region
                    if cur >= limit:
                        if not stack:
                            return
                        hc, base, rbase, limit, cur, ml, mh, mode = pop()
                        continue
                    a = words[base + cur]
                    if a > mh:
                        if not stack:
                            return
                        hc, base, rbase, limit, cur, ml, mh, mode = pop()
                        continue
                    ref = words[rbase + cur]
                    cur += 1
                    c_slots += 1
                    if (a | ml) != a or (a & mh) != a:
                        c_maskrej += 1
                        continue
            else:  # _FLUSH and _SCAN: plain slot scan
                if cur >= limit:
                    if not stack:
                        return
                    hc, base, rbase, limit, cur, ml, mh, mode = pop()
                    continue
                if hc:
                    ref = words[base + cur]
                    cur += 1
                    c_slots += 1
                    if not ref:
                        continue
                else:
                    ref = words[rbase + cur]
                    cur += 1
                    c_slots += 1

            # ---- process the slot ----
            if ref & 1:
                child = ref >> 1
                h = words[child]
                if mode == _FLUSH:
                    push((hc, base, rbase, limit, cur, ml, mh, mode))
                    hc = h & 4096
                    base = child + 2 + k
                    if hc:
                        rbase = base
                        limit = 1 << k
                    else:
                        c = words[child + 1]
                        rbase = base + (1 << ((h >> 13) & 63))
                        limit = (c & 2097151) + ((c >> 21) & 2097151)
                    cur = 0
                    c_frames += 1
                    c_nodes += 1
                    if hc:
                        c_hc += 1
                    continue
                # Fused intersection / coverage / mask computation.
                cpost = h & 63
                cfree = (1 << (cpost + 1)) - 1
                cml = cmh = 0
                inside = True
                hit = True
                d = child + 2
                for lo, hi in zip(bmin, bmax):
                    nlo = words[d]
                    d += 1
                    nhi = nlo | cfree
                    if hi < nlo or lo > nhi:
                        hit = False
                        break
                    if nlo < lo or nhi > hi:
                        inside = False
                    if lo < nlo:
                        lo = nlo
                    if hi > nhi:
                        hi = nhi
                    cml = (cml << 1) | ((lo >> cpost) & 1)
                    cmh = (cmh << 1) | ((hi >> cpost) & 1)
                if not hit:
                    c_noderej += 1
                    continue
                push((hc, base, rbase, limit, cur, ml, mh, mode))
                hc = h & 4096
                base = child + 2 + k
                if hc:
                    rbase = base
                    limit = 1 << k
                else:
                    c = words[child + 1]
                    rbase = base + (1 << ((h >> 13) & 63))
                    limit = (c & 2097151) + ((c >> 21) & 2097151)
                c_frames += 1
                c_nodes += 1
                if hc:
                    c_hc += 1
                if inside or cpost < slack_bits:
                    # Fully covered (or within the approximation slack):
                    # flush the whole subtree with filtering disabled.
                    mode = _FLUSH
                    cur = 0
                    c_flush += 1
                elif hc:
                    if cml == 0 and cmh == full:
                        mode = _SCAN
                        cur = 0
                        c_plain += 1
                    else:
                        mode = _MASKED
                        ml = cml
                        mh = cmh
                        cur = cml
                else:
                    if cml == 0 and cmh == full:
                        mode = _SCAN
                        cur = 0
                        c_plain += 1
                    else:
                        mode = _MASKED
                        ml = cml
                        mh = cmh
                        cur = (
                            bisect_left(words, cml, base, base + limit)
                            - base
                        )
                continue

            # Entry (postfix).
            e = ref >> 1
            if mode == _FLUSH:
                c_entries += 1
                vref = entries[e + k]
                yield tuple(entries[e : e + k]), (
                    values[vref]
                )
            else:
                d = e
                ok = True
                for lo, hi in zip(lo_chk, hi_chk):
                    v = entries[d]
                    d += 1
                    if v < lo or v > hi:
                        ok = False
                        break
                if ok:
                    c_entries += 1
                    vref = entries[e + k]
                    yield tuple(entries[e : e + k]), (
                        values[vref]
                    )
                else:
                    c_postdrop += 1
    finally:
        if _rt.enabled:
            _probes.record_range_scan(
                c_nodes,
                c_hc,
                c_frames,
                c_slots,
                c_flush,
                c_plain,
                c_maskrej,
                c_noderej,
                c_postdrop,
                c_entries,
            )
