"""k-nearest-neighbour search over a PH-tree.

The paper lists nearest-neighbour support as future work with "an early
prototype implementation" (Section 5, Outlook item 2); this module provides
the full feature.  The search is classic best-first branch and bound: a
priority queue holds nodes keyed by a lower bound of their distance to the
query (computed from the node's prefix region) and entries keyed by their
exact distance.  Whenever an entry surfaces before every remaining node, it
is provably the next-nearest neighbour.

Distances are pluggable so the same engine serves the integer-keyed
:class:`~repro.core.phtree.PHTree` (exact integer arithmetic, no overflow)
and the float facade :class:`~repro.core.phtree_float.PHTreeF` (Euclidean
distance on decoded doubles).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from repro.core.kernel import iter_slots
from repro.core.node import Entry, Node
from repro.obs import probes as _probes
from repro.obs import runtime as _rt

__all__ = [
    "knn_iter",
    "morton_tiebreak",
    "squared_euclidean_int",
    "squared_euclidean_region_int",
]

PointDistance = Callable[[Sequence[int]], Any]
RegionDistance = Callable[[Sequence[int], Sequence[int]], Any]


def morton_tiebreak(width: int) -> Callable[[Sequence[int]], int]:
    """The standard ``z_key`` for :func:`knn_iter`: the full Morton code
    of a ``width``-bit key (dimension 0 most significant).

    Trees carrying a per-(k, width) specialization pass
    ``spec.interleave`` instead -- the unrolled LUT kernel computing the
    same code (pinned by the property tests), without the per-call
    closure and validation."""
    from repro.encoding.interleave import interleave

    def z_of(key: Sequence[int]) -> int:
        return interleave(key, width)

    return z_of


def squared_euclidean_int(
    query: Sequence[int],
) -> PointDistance:
    """Exact squared Euclidean distance in integer key space."""

    def distance(key: Sequence[int]) -> int:
        total = 0
        for q, v in zip(query, key):
            d = q - v
            total += d * d
        return total

    return distance


def squared_euclidean_region_int(
    query: Sequence[int],
) -> RegionDistance:
    """Lower bound of squared Euclidean distance to an axis-aligned box."""

    def distance(lower: Sequence[int], upper: Sequence[int]) -> int:
        total = 0
        for q, lo, hi in zip(query, lower, upper):
            if q < lo:
                d = lo - q
            elif q > hi:
                d = q - hi
            else:
                continue
            total += d * d
        return total

    return distance


def knn_iter(
    root: Optional[Node],
    n: int,
    point_distance: PointDistance,
    region_distance: RegionDistance,
    z_key: Optional[Callable[[Sequence[int]], int]] = None,
) -> Iterator[Tuple[Any, Tuple[int, ...], Any]]:
    """Yield up to ``n`` entries as ``(distance, key, value)``, nearest
    first.

    ``point_distance(key)`` must return the exact distance of a stored key;
    ``region_distance(lower, upper)`` must return a lower bound of the
    distance to any point in the box ``[lower, upper]``.  Both must be
    mutually comparable and monotone for the search to be exact.

    ``z_key`` (a key -> Morton code function) fixes the order of
    equidistant results: with it, ties are yielded in z-order, making the
    output a pure function of the key set -- the property the sharded
    tree's merge relies on.  A node's tie rank is the z-code of its
    region's lower corner, which is the minimum z-code inside the region,
    so the heap invariant (a node sorts no later than anything beneath
    it) holds for the composite ``(distance, z)`` key as well.  Without
    ``z_key``, ties fall back to discovery order.
    """
    if _rt.enabled:
        return _knn_iter_instrumented(
            root, n, point_distance, region_distance, z_key
        )
    return _knn_iter_plain(
        root, n, point_distance, region_distance, z_key
    )


def _knn_iter_plain(
    root: Optional[Node],
    n: int,
    point_distance: PointDistance,
    region_distance: RegionDistance,
    z_key: Optional[Callable[[Sequence[int]], int]] = None,
) -> Iterator[Tuple[Any, Tuple[int, ...], Any]]:
    if n <= 0 or root is None:
        return
    tiebreak = itertools.count()
    if z_key is None:
        z_key = lambda _key: 0  # noqa: E731 - ties fall to the counter
    lower, upper = root.region()
    heap: list = [
        (region_distance(lower, upper), z_key(lower), next(tiebreak), root)
    ]
    produced = 0
    push = heapq.heappush
    node_cls = Node
    while heap:
        dist, _, _, item = heapq.heappop(heap)
        if item.__class__ is node_cls:
            # Region visit: expand the node through the shared traversal
            # kernel (no (address, slot) tuple per child) and compute
            # every sub-node's region bounds inline.
            for slot in iter_slots(item.container):
                if slot.__class__ is node_cls:
                    lower = slot.prefix
                    free = (1 << (slot.post_len + 1)) - 1
                    push(
                        heap,
                        (
                            region_distance(
                                lower, tuple(p | free for p in lower)
                            ),
                            z_key(lower),
                            next(tiebreak),
                            slot,
                        ),
                    )
                else:
                    push(
                        heap,
                        (
                            point_distance(slot.key),
                            z_key(slot.key),
                            next(tiebreak),
                            slot,
                        ),
                    )
        else:
            entry: Entry = item
            yield dist, entry.key, entry.value
            produced += 1
            if produced >= n:
                return


def _knn_iter_instrumented(
    root: Optional[Node],
    n: int,
    point_distance: PointDistance,
    region_distance: RegionDistance,
    z_key: Optional[Callable[[Sequence[int]], int]] = None,
) -> Iterator[Tuple[Any, Tuple[int, ...], Any]]:
    """Instrumented twin of the best-first loop: counts regions
    expanded, heap pushes, the heap-size high-water mark and entries
    yielded.  The ``finally`` flush reports even for abandoned
    iterators (e.g. ``nearest_iter`` consumers stopping early)."""
    if n <= 0 or root is None:
        _probes.record_knn(0, 0, 0, 0)
        return
    tiebreak = itertools.count()
    if z_key is None:
        z_key = lambda _key: 0  # noqa: E731 - ties fall to the counter
    lower, upper = root.region()
    heap: list = [
        (region_distance(lower, upper), z_key(lower), next(tiebreak), root)
    ]
    c_regions = 0
    c_pushes = 1  # the root seed
    c_high = 1
    c_entries = 0
    produced = 0
    push = heapq.heappush
    node_cls = Node
    try:
        while heap:
            dist, _, _, item = heapq.heappop(heap)
            if item.__class__ is node_cls:
                c_regions += 1
                for slot in iter_slots(item.container):
                    if slot.__class__ is node_cls:
                        lower = slot.prefix
                        free = (1 << (slot.post_len + 1)) - 1
                        push(
                            heap,
                            (
                                region_distance(
                                    lower, tuple(p | free for p in lower)
                                ),
                                z_key(lower),
                                next(tiebreak),
                                slot,
                            ),
                        )
                    else:
                        push(
                            heap,
                            (
                                point_distance(slot.key),
                                z_key(slot.key),
                                next(tiebreak),
                                slot,
                            ),
                        )
                    c_pushes += 1
                if len(heap) > c_high:
                    c_high = len(heap)
            else:
                entry: Entry = item
                # Count before yielding: a consumer closing the
                # generator right after this yield must still see the
                # delivered entry in the totals.
                produced += 1
                c_entries += 1
                yield dist, entry.key, entry.value
                if produced >= n:
                    return
    finally:
        _probes.record_knn(c_regions, c_pushes, c_high, c_entries)


def arena_knn_iter(
    tree: Any,
    n: int,
    point_distance: PointDistance,
    region_distance: RegionDistance,
    z_key: Optional[Callable[[Sequence[int]], int]] = None,
) -> Iterator[Tuple[Any, Tuple[int, ...], Any]]:
    """Arena twin of :func:`knn_iter`: the same best-first search over
    slab offsets.

    Heap items carry the tagged slot ref as payload
    (``node_off << 1 | 1`` / ``entry_off << 1``); ordering only ever
    compares the ``(distance, z, tiebreak)`` prefix, exactly like the
    object engine, so ties resolve identically.  Probe counts accumulate
    in locals and publish only with observability enabled.
    """
    obs = _rt.enabled
    root = tree._root_off
    if n <= 0 or not root:
        if obs:
            _probes.record_knn(0, 0, 0, 0)
        return
    arena = tree._arena
    words = arena.words
    entries = arena.entries
    values = arena.values
    k = arena.k
    tiebreak = itertools.count()
    if z_key is None:
        z_key = lambda _key: 0  # noqa: E731 - ties fall to the counter
    lower = tuple(words[root + 2 : root + 2 + k])
    free = (1 << ((words[root] & 63) + 1)) - 1
    heap: list = [
        (
            region_distance(lower, tuple(p | free for p in lower)),
            z_key(lower),
            next(tiebreak),
            (root << 1) | 1,
        )
    ]
    c_regions = 0
    c_pushes = 1  # the root seed
    c_high = 1
    c_entries = 0
    produced = 0
    push = heapq.heappush
    try:
        while heap:
            dist, _, _, ref = heapq.heappop(heap)
            if ref & 1:
                off = ref >> 1
                c_regions += 1
                h = words[off]
                base = off + 2 + k
                if h & 4096:
                    refs = words[base : base + (1 << k)]
                else:
                    c = words[off + 1]
                    nslots = (c & 2097151) + ((c >> 21) & 2097151)
                    rbase = base + (1 << ((h >> 13) & 63))
                    refs = words[rbase : rbase + nslots]
                for cref in refs:
                    if not cref:
                        continue
                    if cref & 1:
                        child = cref >> 1
                        lower = tuple(words[child + 2 : child + 2 + k])
                        cfree = (1 << ((words[child] & 63) + 1)) - 1
                        push(
                            heap,
                            (
                                region_distance(
                                    lower,
                                    tuple(p | cfree for p in lower),
                                ),
                                z_key(lower),
                                next(tiebreak),
                                cref,
                            ),
                        )
                    else:
                        e = cref >> 1
                        key = tuple(entries[e : e + k])
                        push(
                            heap,
                            (
                                point_distance(key),
                                z_key(key),
                                next(tiebreak),
                                cref,
                            ),
                        )
                    c_pushes += 1
                if len(heap) > c_high:
                    c_high = len(heap)
            else:
                e = ref >> 1
                produced += 1
                c_entries += 1
                vref = entries[e + k]
                yield dist, tuple(entries[e : e + k]), (
                    values[vref]
                )
                if produced >= n:
                    return
    finally:
        if obs:
            _probes.record_knn(c_regions, c_pushes, c_high, c_entries)
