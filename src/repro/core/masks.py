"""Range-query bit masks (paper Section 3.5).

For a node that is only partly inside the query range, two k-bit masks
``m_L`` and ``m_U`` encode which hypercube quadrants can possibly intersect
the query:

- bit ``d`` of ``m_L`` is 0 iff the query's lower bound in dimension ``d``
  reaches at or below the node's lower region half (otherwise the lower half
  of dimension ``d`` cannot match and the bit forces a 1),
- bit ``d`` of ``m_U`` is 1 iff the query's upper bound reaches at or above
  the node's upper region half.

The masks are simultaneously (a) the minimal and maximal possibly-matching
HC addresses and (b) a constant-time validity filter: an address ``h`` fits
iff ``(h | m_L) == h and (h & m_U) == h``.  :func:`address_successor` jumps
from one fitting address to the next in a single arithmetic step.

These are the definitional forms; the per-(k, width) kernels of
:mod:`repro.core.specialize` unroll the same computations (mask fusion
per dimension, the successor step, the fit check) into straight-line
code, and the property tests pin the unrolled versions against these.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.node import Node

__all__ = [
    "address_fits",
    "address_successor",
    "compute_masks",
    "key_in_box",
    "node_intersects_box",
]


def compute_masks(
    node: Node,
    box_min: Sequence[int],
    box_max: Sequence[int],
) -> Tuple[int, int]:
    """Return ``(m_L, m_U)`` for ``node`` against the inclusive query box.

    The caller must have established that the node's region intersects the
    box (see :func:`node_intersects_box`); otherwise the masks are
    meaningless.
    """
    post_len = node.post_len
    prefix = node.prefix
    free = (1 << (post_len + 1)) - 1
    mask_lower = 0
    mask_upper = 0
    for dim, node_lo in enumerate(prefix):
        node_hi = node_lo | free
        lo = box_min[dim]
        hi = box_max[dim]
        # Clamp the query bounds into the node region; after clamping, the
        # bit at post_len tells which half of this dimension the bound sits
        # in.  node_lo's bit there is 0 and node_hi's is 1, so clamped
        # values behave correctly at the extremes.
        if lo < node_lo:
            lo = node_lo
        if hi > node_hi:
            hi = node_hi
        mask_lower = (mask_lower << 1) | ((lo >> post_len) & 1)
        mask_upper = (mask_upper << 1) | ((hi >> post_len) & 1)
    return mask_lower, mask_upper


def address_fits(address: int, mask_lower: int, mask_upper: int) -> bool:
    """The paper's single-operation slot validity check.

    ``h`` fits iff ``(h|mL) == h && (h&mU) == h``.
    """
    return (address | mask_lower) == address and (
        address & mask_upper
    ) == address


def address_successor(
    address: int, mask_lower: int, mask_upper: int
) -> int:
    """The next address after ``address`` that fits the masks, or ``-1``.

    One arithmetic step (no scan): ORing in the complement of ``m_U``
    makes the increment carry straight through every bit position that
    must stay 0, masking with ``m_U`` clears the borrowed bits again,
    and ORing ``m_L`` restores the bits that must stay 1.  Starting from
    ``m_L`` (the smallest fitting address) and iterating until ``-1``
    enumerates exactly the addresses accepted by :func:`address_fits`,
    in ascending order -- this is the iteration step the range-scan
    kernels (generic and specialized) bind inline.

    >>> [a for a in range(8) if address_fits(a, 0b001, 0b011)]
    [1, 3]
    >>> address_successor(0b001, 0b001, 0b011)
    3
    >>> address_successor(0b011, 0b001, 0b011)
    -1
    """
    if address >= mask_upper:
        return -1
    return (((address | ~mask_upper) + 1) & mask_upper) | mask_lower


def node_intersects_box(
    node: Node,
    box_min: Sequence[int],
    box_max: Sequence[int],
) -> bool:
    """True when the node's region overlaps the inclusive query box."""
    free = (1 << (node.post_len + 1)) - 1
    for dim, node_lo in enumerate(node.prefix):
        if box_max[dim] < node_lo or box_min[dim] > (node_lo | free):
            return False
    return True


def key_in_box(
    key: Sequence[int],
    box_min: Sequence[int],
    box_max: Sequence[int],
) -> bool:
    """Inclusive containment check of a point in the query box."""
    for dim, value in enumerate(key):
        if value < box_min[dim] or value > box_max[dim]:
            return False
    return True
