"""PHTreeMultiMap: duplicate keys over a PH-tree.

The paper's tree "currently does not allow duplicates" (§3.6) -- each key
holds exactly one value.  Real deployments (and the authors' later
implementations) need several values per point: multiple map features on
one coordinate, several readings per sensor position.  This wrapper
stores a small value collection per key inside the tree's value slot,
keeping every structural property (canonical shape, two-node updates)
untouched because multiplicity lives entirely in the payload.

Values under one key are kept in insertion order; ``remove`` deletes one
``(key, value)`` pair, dropping the key once its last value goes.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.phtree import PHTree

__all__ = ["PHTreeMultiMap"]


class PHTreeMultiMap:
    """A k-dimensional multimap over integer keys.

    >>> mm = PHTreeMultiMap(dims=2, width=8)
    >>> mm.put((1, 2), "a")
    >>> mm.put((1, 2), "b")
    >>> sorted(mm.get((1, 2)))
    ['a', 'b']
    >>> len(mm)
    2
    """

    def __init__(
        self,
        dims: int,
        width: "int | Sequence[int]" = 64,
        hc_mode: str = "auto",
    ) -> None:
        self._tree = PHTree(dims=dims, width=width, hc_mode=hc_mode)
        self._size = 0

    # -- basics ---------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._tree.dims

    @property
    def tree(self) -> PHTree:
        """The underlying PH-tree (values are value-lists)."""
        return self._tree

    def __len__(self) -> int:
        """Total number of ``(key, value)`` pairs."""
        return self._size

    def key_count(self) -> int:
        """Number of distinct keys."""
        return len(self._tree)

    def __contains__(self, key: Sequence[int]) -> bool:
        return self.contains(key)

    # -- updates -----------------------------------------------------------------

    def put(self, key: Sequence[int], value: Any = None) -> None:
        """Add one ``(key, value)`` pair (duplicate values allowed)."""
        values = self._tree.get(key)
        if values is None and not self._tree.contains(key):
            self._tree.put(key, [value])
        else:
            values.append(value)
        self._size += 1

    def remove(self, key: Sequence[int], value: Any) -> bool:
        """Remove one occurrence of ``(key, value)``; False if absent."""
        values: Optional[List[Any]] = self._tree.get(key)
        if values is None and not self._tree.contains(key):
            return False
        try:
            values.remove(value)
        except ValueError:
            return False
        self._size -= 1
        if not values:
            self._tree.remove(key)
        return True

    def remove_key(self, key: Sequence[int]) -> List[Any]:
        """Remove a key with all its values; returns them ([] if absent)."""
        values = self._tree.remove(key, default=None)
        if values is None:
            return []
        self._size -= len(values)
        return values

    def clear(self) -> None:
        """Remove everything."""
        self._tree.clear()
        self._size = 0

    # -- lookups ---------------------------------------------------------------------

    def get(self, key: Sequence[int]) -> List[Any]:
        """All values stored under ``key`` (a copy; [] if absent)."""
        values = self._tree.get(key)
        return list(values) if values is not None else []

    def contains(self, key: Sequence[int]) -> bool:
        """Does any value exist under ``key``?"""
        return self._tree.contains(key)

    def count(self, key: Sequence[int]) -> int:
        """Number of values under ``key``."""
        values = self._tree.get(key)
        return len(values) if values is not None else 0

    # -- iteration ----------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Iterate every ``(key, value)`` pair (keys in z-order, values
        in insertion order)."""
        for key, values in self._tree.items():
            for value in values:
                yield key, value

    def keys(self) -> Iterator[Tuple[int, ...]]:
        """Iterate distinct keys in z-order."""
        return self._tree.keys()

    def query(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Window query over all pairs in the inclusive box."""
        for key, values in self._tree.query(box_min, box_max):
            for value in values:
                yield key, value

    def knn(
        self, key: Sequence[int], n: int = 1
    ) -> List[Tuple[Tuple[int, ...], Any]]:
        """The ``n`` nearest ``(key, value)`` pairs (pairs at one key
        count individually, nearest key first)."""
        results: List[Tuple[Tuple[int, ...], Any]] = []
        for found_key, values in self._tree.nearest_iter(key):
            for value in values:
                results.append((found_key, value))
                if len(results) == n:
                    return results
        return results

    def check_invariants(self) -> None:
        """Structural validation plus multiplicity bookkeeping."""
        self._tree.check_invariants()
        total = sum(len(values) for _, values in self._tree.items())
        if total != self._size:
            raise AssertionError(
                f"size bookkeeping off: counted {total}, "
                f"stored {self._size}"
            )
        for _, values in self._tree.items():
            if not values:
                raise AssertionError("empty value list left behind")
