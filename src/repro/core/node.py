"""PH-tree nodes and entries (paper Sections 3.1-3.2).

A node sits at a *postfix length* ``post_len``: the hypercube address of a
key within the node is formed from bit position ``post_len`` of each of the
key's ``k`` values; the ``post_len`` lower bits of each value form the
postfix stored with leaf entries.  The root always sits at
``post_len == w - 1``.

Every node stores the full shared *prefix* of all keys below it: a k-tuple
whose bits at positions ``>= post_len + 1`` are meaningful (lower bits are
zero).  Of that prefix, only the ``infix_len`` bits between the parent's
address bit and this node's address bit are "owned" by the node (this is
what gets serialised, and what the space model charges for); the rest is
implied by the path from the root.  Keeping the full prefix in memory makes
prefix checks and node-region computations O(k) single-mask operations.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.core.hypercube import (
    LHCContainer,
    convert_container,
    max_hc_dimensions,
    prefer_hc,
)
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt

__all__ = ["Entry", "Node", "hypercube_address"]


def hypercube_address(key: Sequence[int], post_len: int) -> int:
    """Interleave bit position ``post_len`` of every value into an address.

    Dimension 0 contributes the most significant address bit, matching the
    paper's figures (e.g. the 2D entry ``(0..., 1...)`` lands at address
    ``01``).

    This loop is the definitional form (and the oracle the property
    tests pin against); the per-(k, width) kernels of
    :mod:`repro.core.specialize` unroll it into a fixed shift/OR
    expression on their hot paths.

    >>> hypercube_address((0b0001, 0b1000), 3)
    1
    """
    address = 0
    for value in key:
        address = (address << 1) | ((value >> post_len) & 1)
    return address


class Entry:
    """A stored key/value pair -- a *postfix* in the paper's terminology."""

    __slots__ = ("key", "value")

    def __init__(self, key: Tuple[int, ...], value: Any = None) -> None:
        self.key = key
        self.value = value

    def __repr__(self) -> str:
        return f"Entry(key={self.key!r}, value={self.value!r})"


class Node:
    """One PH-tree node: prefix + hypercube (HC or LHC) of slots."""

    __slots__ = (
        "post_len",
        "infix_len",
        "prefix",
        "container",
        "_n_sub",
        "_n_post",
    )

    def __init__(
        self,
        post_len: int,
        infix_len: int,
        prefix: Tuple[int, ...],
    ) -> None:
        self.post_len = post_len
        self.infix_len = infix_len
        self.prefix = prefix
        self.container: Any = LHCContainer()
        self._n_sub = 0
        self._n_post = 0

    # -- geometry ----------------------------------------------------------

    def region(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """The axis-aligned region covered by this node, per dimension.

        Returns ``(lower, upper)`` k-tuples: prefix bits are fixed, the
        ``post_len + 1`` low bits range over all combinations.
        """
        free = (1 << (self.post_len + 1)) - 1
        lower = self.prefix
        upper = tuple(p | free for p in lower)
        return lower, upper

    def matches_prefix(self, key: Sequence[int]) -> bool:
        """True when ``key`` lies inside this node's region."""
        shift = self.post_len + 1
        for value, pref in zip(key, self.prefix):
            if (value >> shift) != (pref >> shift):
                return False
        return True

    def prefix_conflict_pos(self, key: Sequence[int]) -> int:
        """Highest bit position where ``key`` leaves this node's region.

        Returns -1 when the key matches the prefix.  Only positions
        ``> post_len`` count; lower bits are inside the node anyway.
        """
        shift = self.post_len + 1
        conflict = -1
        for value, pref in zip(key, self.prefix):
            diff = (value >> shift) ^ (pref >> shift)
            if diff:
                pos = diff.bit_length() - 1 + shift
                if pos > conflict:
                    conflict = pos
        return conflict

    # -- slot access -------------------------------------------------------

    def address_of(self, key: Sequence[int]) -> int:
        """Hypercube address of ``key`` within this node."""
        return hypercube_address(key, self.post_len)

    def get_slot(self, address: int) -> Any:
        """Slot at ``address``: an Entry, a Node, or None."""
        return self.container.get(address)

    def num_slots(self) -> int:
        """Number of occupied slots (postfixes + sub-nodes)."""
        return len(self.container)

    def slot_counts(self) -> Tuple[int, int]:
        """Return ``(n_sub_nodes, n_postfixes)`` (maintained
        incrementally)."""
        return self._n_sub, self._n_post

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate occupied ``(address, slot)`` pairs in address order."""
        return self.container.items()

    # -- mutation ----------------------------------------------------------

    def put_slot(
        self,
        address: int,
        slot: Any,
        k: int,
        hc_mode: str = "auto",
        hysteresis: float = 0.0,
    ) -> Any:
        """Store ``slot`` and re-evaluate the HC/LHC representation."""
        previous = self.container.put(address, slot)
        if previous is not None:
            if isinstance(previous, Node):
                self._n_sub -= 1
            else:
                self._n_post -= 1
        if isinstance(slot, Node):
            self._n_sub += 1
        else:
            self._n_post += 1
        self._maybe_switch(k, hc_mode, hysteresis)
        return previous

    def remove_slot(
        self,
        address: int,
        k: int,
        hc_mode: str = "auto",
        hysteresis: float = 0.0,
    ) -> Any:
        """Clear ``address`` and re-evaluate the HC/LHC representation."""
        previous = self.container.remove(address)
        if previous is not None:
            if isinstance(previous, Node):
                self._n_sub -= 1
            else:
                self._n_post -= 1
        self._maybe_switch(k, hc_mode, hysteresis)
        return previous

    def postfix_payload_bits(self, k: int, value_bits: int = 0) -> int:
        """Bits one postfix occupies in this node: ``lp * k`` (+ value)."""
        return self.post_len * k + value_bits

    def _maybe_switch(
        self, k: int, hc_mode: str, hysteresis: float
    ) -> None:
        if hc_mode == "lhc":
            want_hc = False
        elif hc_mode == "hc":
            want_hc = k <= max_hc_dimensions()
        else:
            want_hc = prefer_hc(
                k,
                self._n_sub,
                self._n_post,
                self.postfix_payload_bits(k),
                hysteresis=hysteresis,
                currently_hc=self.container.is_hc,
            )
        converted = convert_container(self.container, k, want_hc)
        if converted is not None:
            self.container = converted
            if _rt.enabled:
                if want_hc:
                    _probes.switch_to_hc.inc()
                else:
                    _probes.switch_to_lhc.inc()
                _recorder.record(
                    "hc_lhc_switch", to="hc" if want_hc else "lhc"
                )

    # -- debugging ---------------------------------------------------------

    def __repr__(self) -> str:
        kind = "HC" if self.container.is_hc else "LHC"
        return (
            f"Node(post_len={self.post_len}, infix_len={self.infix_len}, "
            f"slots={self.num_slots()}, repr={kind})"
        )


def masked_prefix(key: Sequence[int], post_len: int) -> Tuple[int, ...]:
    """Return ``key`` with all bits at positions ``<= post_len`` cleared.

    This is the full-prefix tuple for a node at ``post_len`` containing
    ``key``.
    """
    shift = post_len + 1
    return tuple((value >> shift) << shift for value in key)
