"""The PATRICIA-hypercube-tree over integer keys (paper Sections 3.1-3.6).

:class:`PHTree` stores k-dimensional points whose coordinates are unsigned
``width``-bit integers, optionally with an associated value (making the tree
a map; with values left as None it behaves as a set).  Keys are unique --
the paper's tree "currently does not allow duplicates" (Section 3.6);
re-inserting a key replaces its value.

Structural properties maintained (and asserted by the test suite):

- the tree layout depends only on the stored key set, never on the order of
  insertions and deletions,
- every update touches at most two nodes (one modified, at most one created
  or removed),
- depth is bounded by ``width``,
- every non-root node holds at least two slots,
- each node automatically uses the smaller of the HC and LHC slot
  representations.

Floating point data goes through :class:`repro.core.phtree_float.PHTreeF`.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core import batch as batch_mod
from repro.core import knn as knn_mod
from repro.core import specialize as spec_mod
from repro.core.kernel import iter_subtree
from repro.core.node import Entry, Node, masked_prefix
from repro.core.range_query import naive_range_iter, range_iter
from repro.obs import heat as _heat
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt
from time import perf_counter as _perf_counter

__all__ = ["PHTree"]

_MISSING = object()


class PHTree:
    """A k-dimensional PATRICIA-hypercube-tree map with integer keys.

    Parameters
    ----------
    dims:
        Number of dimensions ``k`` (>= 1).
    width:
        Bit width ``w`` of each coordinate (default 64).  All coordinates
        must lie in ``[0, 2**width)``.
    hc_mode:
        Slot representation policy: ``"auto"`` (paper default -- pick the
        smaller of HC and LHC per node), ``"hc"`` or ``"lhc"`` (forced;
        used by the ablation benchmarks).
    hc_hysteresis:
        Relaxed switching margin (fraction) preventing HC/LHC oscillation;
        0.0 reproduces the paper's plain size comparison.
    specialize:
        Use the per-(k, width) unrolled hot-path kernels of
        :mod:`repro.core.specialize` (default).  ``False`` pins the tree
        to the generic loop-based engines (the pre-specialization paths,
        kept as ablation baseline and correctness oracle).  Results are
        bit-identical either way.
    layout:
        Storage engine: ``"object"`` (this class -- one Python object
        per node/entry) or ``"arena"`` (packed slab records addressed by
        offsets, see :mod:`repro.core.arena`; requires ``width <= 64``).
        ``None`` (default) reads ``REPRO_PHTREE_LAYOUT`` from the
        environment, falling back to ``"arena"`` (shapes the arena
        cannot hold -- width > 64 or dims > 63 -- silently keep the
        object engine; set ``REPRO_PHTREE_LAYOUT=object`` to pin the
        object engine everywhere).  Both engines produce identical
        results and tree shapes; the fuzzer runs them in lockstep.

    Examples
    --------
    >>> tree = PHTree(dims=2, width=4)
    >>> tree.put((1, 8), "a")
    >>> tree.put((3, 8), "b")
    >>> tree.get((1, 8))
    'a'
    >>> sorted(key for key, _ in tree.query((0, 0), (3, 15)))
    [(1, 8), (3, 8)]
    """

    # Hot-path object: no instance __dict__ (asserted by the test suite).
    __slots__ = (
        "_dims",
        "_widths",
        "_width",
        "_hc_mode",
        "_hysteresis",
        "_root",
        "_size",
        "_spec",
        "_uniform",
    )

    def __new__(cls, *args: Any, **kwargs: Any) -> "PHTree":
        # Engine dispatch: PHTree(..., layout="arena") constructs the
        # slab-backed subclass (CPython then runs *its* __init__ with
        # the same arguments).  Subclasses construct directly.
        if cls is PHTree:
            layout = kwargs.get("layout")
            if layout is None and len(args) >= 6:
                layout = args[5]
            if layout is None:
                layout = os.environ.get("REPRO_PHTREE_LAYOUT", "arena")
                if layout == "arena":
                    # The default (or env var) expresses a session-wide
                    # preference, not a hard requirement: trees the
                    # arena cannot hold (coordinates wider than one
                    # 64-bit slab word, or more dimensions than a k-bit
                    # hypercube address plus sentinel fits in one word)
                    # silently keep the object engine.  An *explicit*
                    # layout="arena" still raises for them.
                    width = kwargs.get("width", args[1] if len(args) >= 2 else 64)
                    dims = kwargs.get("dims", args[0] if len(args) >= 1 else 0)
                    try:
                        wmax = (
                            width
                            if isinstance(width, int)
                            else max(width, default=0)
                        )
                    except TypeError:
                        # Malformed widths fall through to __init__'s
                        # own validation on the object class.
                        wmax = 65
                    if wmax > 64 or (isinstance(dims, int) and dims > 63):
                        layout = "object"
            if layout == "arena":
                from repro.core.arena_tree import ArenaPHTree

                return super().__new__(ArenaPHTree)
            if layout != "object":
                raise ValueError(
                    f"layout must be 'object' or 'arena', got {layout!r}"
                )
        return super().__new__(cls)

    def __init__(
        self,
        dims: int,
        width: "int | Sequence[int]" = 64,
        hc_mode: str = "auto",
        hc_hysteresis: float = 0.0,
        specialize: bool = True,
        layout: Optional[str] = None,
    ) -> None:
        if layout not in (None, "object", "arena"):
            raise ValueError(
                f"layout must be 'object' or 'arena', got {layout!r}"
            )
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        # Paper Outlook item 5: allow a different bit-width per dimension.
        # Internally the tree runs at the maximum width; narrower
        # dimensions are validated at the boundary (their high bits are
        # shared zeros, which prefix sharing stores essentially for free).
        if isinstance(width, int):
            widths: Tuple[int, ...] = (width,) * dims
        else:
            widths = tuple(width)
            if len(widths) != dims:
                raise ValueError(
                    f"got {len(widths)} widths for {dims} dimensions"
                )
        for w in widths:
            if not isinstance(w, int) or w < 1:
                raise ValueError(f"widths must be >= 1, got {w}")
        if hc_mode not in ("auto", "hc", "lhc"):
            raise ValueError(
                f"hc_mode must be 'auto', 'hc' or 'lhc', got {hc_mode!r}"
            )
        if hc_hysteresis < 0.0:
            raise ValueError(
                f"hc_hysteresis must be >= 0, got {hc_hysteresis}"
            )
        self._dims = dims
        self._widths = widths
        self._width = max(widths)
        self._hc_mode = hc_mode
        self._hysteresis = hc_hysteresis
        self._root: Optional[Node] = None
        self._size = 0
        # Per-(k, width) unrolled hot-path kernels (None for shapes
        # outside the specializable range, or when opted out -- the
        # generic engines then serve every call).  The fused-validation
        # fast path additionally requires a uniform per-dimension width.
        self._uniform = all(w == self._width for w in widths)
        self._spec = (
            spec_mod.get_spec(dims, self._width) if specialize else None
        )

    # -- basic properties --------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._dims

    @property
    def width(self) -> int:
        """Bit width ``w`` of the widest coordinate."""
        return self._width

    @property
    def widths(self) -> Tuple[int, ...]:
        """Per-dimension bit widths (paper Outlook item 5)."""
        return self._widths

    @property
    def layout(self) -> str:
        """The storage engine: ``"object"`` or ``"arena"``."""
        return "object"

    @property
    def root(self) -> Optional[Node]:
        """The root node, or None for an empty tree (read-only use)."""
        return self._root

    @property
    def specialization(self):
        """The tree's per-(k, width) kernel bundle, or None when running
        on the generic engines (see :mod:`repro.core.specialize`)."""
        return self._spec

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        # An empty tree is falsy, like the built-in containers.
        return self._size > 0

    def __contains__(self, key: Sequence[int]) -> bool:
        return self.contains(key)

    # -- validation --------------------------------------------------------

    def _check_key(self, key: Sequence[int]) -> Tuple[int, ...]:
        key = tuple(key)
        if len(key) != self._dims:
            raise ValueError(
                f"key has {len(key)} dimensions, tree has {self._dims}"
            )
        for dim, value in enumerate(key):
            if not isinstance(value, int):
                raise TypeError(
                    f"coordinate {dim} is {type(value).__name__}, "
                    f"expected int (use PHTreeF for floats)"
                )
            if value < 0 or value >> self._widths[dim]:
                raise ValueError(
                    f"coordinate {dim} = {value} outside "
                    f"[0, 2**{self._widths[dim]})"
                )
        return key

    # The specialized fast paths below validate with the generated fused
    # check (spec.check_key) and fall back to _check_key for whatever it
    # declines -- invalid keys (raising the exact sequential error) but
    # also accepted corner cases the fast check does not claim (bool
    # coordinates, int subclasses, non-uniform per-dimension widths).

    # -- point operations (paper Sections 3.5-3.6) --------------------------

    def put(self, key: Sequence[int], value: Any = None) -> Any:
        """Insert ``key`` (or update its value).  Returns the previous
        value, or None if the key was new.

        At most two nodes are touched: the insertion node, plus possibly
        one newly created sub-node.
        """
        spec = self._spec
        if spec is not None and not _rt.enabled:
            # Specialized write descent (unrolled per-(k, width) twin of
            # the generic body below; bit-identical tree shapes, pinned
            # by the property tests).  Observability-enabled calls take
            # the generic instrumented path so probe counts are
            # unchanged.
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            return spec.put(self, checked, value)
        key = self._check_key(key)
        obs = _rt.enabled
        if obs:
            _probes.ops_put.inc()
            _heat.record(key, self._width, "put")
        if self._root is None:
            root = Node(
                post_len=self._width - 1,
                infix_len=0,
                prefix=(0,) * self._dims,
            )
            root.put_slot(
                root.address_of(key),
                Entry(key, value),
                self._dims,
                self._hc_mode,
                self._hysteresis,
            )
            self._root = root
            self._size = 1
            if obs:
                self._probe_write(depth=1, created=1, inserted=True)
            return None

        node = self._root
        depth = 1
        while True:
            address = node.address_of(key)
            slot = node.get_slot(address)
            if slot is None:
                node.put_slot(
                    address,
                    Entry(key, value),
                    self._dims,
                    self._hc_mode,
                    self._hysteresis,
                )
                self._size += 1
                if obs:
                    self._probe_write(depth, created=0, inserted=True)
                return None
            if isinstance(slot, Node):
                conflict = slot.prefix_conflict_pos(key)
                if conflict < 0:
                    node = slot
                    depth += 1
                    continue
                # The key leaves the sub-node's prefix at `conflict`:
                # splice a new node at that bit position between `node`
                # and `slot`.
                mid = self._new_split_node(node, key, conflict)
                slot.infix_len = conflict - 1 - slot.post_len
                mid.put_slot(
                    mid.address_of(slot.prefix),
                    slot,
                    self._dims,
                    self._hc_mode,
                    self._hysteresis,
                )
                mid.put_slot(
                    mid.address_of(key),
                    Entry(key, value),
                    self._dims,
                    self._hc_mode,
                    self._hysteresis,
                )
                node.put_slot(
                    address, mid, self._dims, self._hc_mode,
                    self._hysteresis,
                )
                self._size += 1
                if obs:
                    self._probe_write(depth + 1, created=1, inserted=True)
                return None
            # Slot holds a postfix (Entry).
            entry: Entry = slot
            if entry.key == key:
                previous = entry.value
                entry.value = value
                if obs:
                    self._probe_write(depth, created=0, inserted=False)
                return previous
            conflict = _diff_pos(entry.key, key)
            mid = self._new_split_node(node, key, conflict)
            mid.put_slot(
                mid.address_of(entry.key),
                entry,
                self._dims,
                self._hc_mode,
                self._hysteresis,
            )
            mid.put_slot(
                mid.address_of(key),
                Entry(key, value),
                self._dims,
                self._hc_mode,
                self._hysteresis,
            )
            node.put_slot(
                address, mid, self._dims, self._hc_mode, self._hysteresis
            )
            self._size += 1
            if obs:
                self._probe_write(depth + 1, created=1, inserted=True)
            return None

    @staticmethod
    def _probe_write(depth: int, created: int, inserted: bool) -> None:
        """Publish one write descent's probe data (enabled-only path)."""
        _probes.write_nodes_visited.inc(depth)
        _probes.write_slots_scanned.inc(depth)
        if created:
            _probes.tree_nodes_created.inc(created)
        if inserted:
            _probes.insert_depth.observe(depth)

    def _new_split_node(
        self, parent: Node, key: Tuple[int, ...], conflict_pos: int
    ) -> Node:
        """Create the sub-node splitting at bit position ``conflict_pos``."""
        if _rt.enabled:
            _recorder.record("split", level=conflict_pos)
        return Node(
            post_len=conflict_pos,
            infix_len=parent.post_len - 1 - conflict_pos,
            prefix=masked_prefix(key, conflict_pos),
        )

    def get(self, key: Sequence[int], default: Any = None) -> Any:
        """Return the value stored for ``key``, or ``default``."""
        spec = self._spec
        if spec is not None and not _rt.enabled:
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            root = self._root
            if root is None:
                return default
            entry = spec.find_entry(root, checked)
            return default if entry is None else entry.value
        key = self._check_key(key)
        if _rt.enabled:
            _probes.ops_get.inc()
            t0 = _perf_counter()
            entry = self._find_entry_counted(key)
            _heat.record(
                key, self._width, "get", _perf_counter() - t0
            )
        else:
            entry = self._find_entry(key)
        if entry is None:
            return default
        return entry.value

    def contains(self, key: Sequence[int]) -> bool:
        """Point query (paper Section 3.5): does ``key`` exist?"""
        spec = self._spec
        if spec is not None and not _rt.enabled:
            checked = spec.check_key(key) if self._uniform else None
            if checked is None:
                checked = self._check_key(key)
            root = self._root
            if root is None:
                return False
            return spec.find_entry(root, checked) is not None
        key = self._check_key(key)
        if _rt.enabled:
            _probes.ops_contains.inc()
            _heat.record(key, self._width, "contains")
            return self._find_entry_counted(key) is not None
        return self._find_entry(key) is not None

    def get_many(
        self,
        keys: Sequence[Sequence[int]],
        default: Any = None,
        presorted: bool = False,
    ) -> List[Any]:
        """Batched :meth:`get`: one value per key, in input order.

        Equivalent to ``[self.get(k, default) for k in keys]`` but the
        batch is validated in one pass, z-order-sorted, and walked with
        shared descent paths (see :mod:`repro.core.batch`).  Pass
        ``presorted=True`` for batches already in z-order to skip the
        internal sort (results are correct under any order).

        >>> tree = PHTree(dims=2, width=4)
        >>> tree.put((1, 8), "a")
        >>> tree.get_many([(1, 8), (2, 2)], default="?")
        ['a', '?']
        """
        return batch_mod.get_many(self, keys, default, presorted)

    def contains_many(
        self, keys: Sequence[Sequence[int]]
    ) -> List[bool]:
        """Batched :meth:`contains`: one bool per key, in input order."""
        return batch_mod.contains_many(self, keys)

    def query_many(
        self,
        boxes: Sequence[Tuple[Sequence[int], Sequence[int]]],
        use_masks: bool = True,
    ) -> List[List[Tuple[Tuple[int, ...], Any]]]:
        """Batched :meth:`query`: one materialised result list per
        ``(box_min, box_max)`` pair, in input order.

        Each list equals ``list(self.query(lo, hi))`` (same entries,
        same z-order), but the tree is traversed once for the whole
        batch (see :mod:`repro.core.batch`).
        """
        return batch_mod.query_many(self, boxes, use_masks)

    def _find_entry(self, key: Tuple[int, ...]) -> Optional[Entry]:
        node = self._root
        while node is not None:
            slot = node.get_slot(node.address_of(key))
            if slot is None:
                return None
            if isinstance(slot, Node):
                if not slot.matches_prefix(key):
                    return None
                node = slot
                continue
            return slot if slot.key == key else None
        return None

    def _find_entry_counted(self, key: Tuple[int, ...]) -> Optional[Entry]:
        """Instrumented twin of :meth:`_find_entry` (only runs with
        observability enabled): same descent, plus point-descent
        counters -- one node and one container probe per level."""
        nodes = 0
        found: Optional[Entry] = None
        node = self._root
        while node is not None:
            nodes += 1
            slot = node.get_slot(node.address_of(key))
            if slot is None:
                break
            if isinstance(slot, Node):
                if not slot.matches_prefix(key):
                    break
                node = slot
                continue
            if slot.key == key:
                found = slot
            break
        _probes.point_nodes_visited.inc(nodes)
        _probes.point_slots_scanned.inc(nodes)
        return found

    def remove(self, key: Sequence[int], default: Any = _MISSING) -> Any:
        """Delete ``key`` and return its value.

        Raises :class:`KeyError` when the key is absent, unless ``default``
        is given.  At most two nodes are touched: the one losing the entry,
        plus possibly its now-superfluous self being merged away.
        """
        key = self._check_key(key)
        obs = _rt.enabled
        if obs:
            _probes.ops_remove.inc()
            _heat.record(key, self._width, "remove")
        parent: Optional[Node] = None
        parent_address = -1
        depth = 1
        node = self._root
        while node is not None:
            address = node.address_of(key)
            slot = node.get_slot(address)
            if slot is None:
                break
            if isinstance(slot, Node):
                if not slot.matches_prefix(key):
                    break
                parent = node
                parent_address = address
                node = slot
                depth += 1
                continue
            if slot.key != key:
                break
            node.remove_slot(
                address, self._dims, self._hc_mode, self._hysteresis
            )
            self._size -= 1
            self._merge_if_underfull(node, parent, parent_address)
            if obs:
                _probes.write_nodes_visited.inc(depth)
                _probes.write_slots_scanned.inc(depth)
            return slot.value
        if default is _MISSING:
            raise KeyError(f"key not found: {key}")
        return default

    def _merge_if_underfull(
        self,
        node: Node,
        parent: Optional[Node],
        parent_address: int,
    ) -> None:
        """Collapse ``node`` when deletion left it with fewer than two
        slots (non-root nodes always carry >= 2 sub-references)."""
        if parent is None:
            # The root is allowed any occupancy; drop it only when empty.
            if node.num_slots() == 0:
                self._root = None
                if _rt.enabled:
                    _probes.tree_nodes_merged.inc()
                    _recorder.record("merge")
            return
        count = node.num_slots()
        if count >= 2:
            return
        if count == 0:
            # Cannot happen: a non-root node had >= 2 slots before the
            # removal of a single entry.
            raise AssertionError("non-root node lost its last two slots")
        _, survivor = node.container.single_item()
        if isinstance(survivor, Node):
            survivor.infix_len += node.infix_len + 1
        if _rt.enabled:
            _probes.tree_nodes_merged.inc()
            _recorder.record("merge")
        parent.put_slot(
            parent_address,
            survivor,
            self._dims,
            self._hc_mode,
            self._hysteresis,
        )

    def update_key(
        self, old_key: Sequence[int], new_key: Sequence[int]
    ) -> None:
        """Move an entry to a new position (remove + insert).

        Raises :class:`KeyError` when ``old_key`` is absent and
        :class:`ValueError` when ``new_key`` already exists.
        """
        new_key = self._check_key(new_key)
        if _rt.enabled:
            _probes.ops_update_key.inc()
        if self.contains(new_key):
            if tuple(old_key) == new_key:
                return
            raise ValueError(f"target key already present: {new_key}")
        value = self.remove(old_key)
        self.put(new_key, value)

    # -- iteration and queries ----------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Iterate all ``(key, value)`` pairs in z-order."""
        if self._root is None:
            return iter(())
        return iter_subtree(self._root)

    def keys(self) -> Iterator[Tuple[int, ...]]:
        """Iterate all keys in z-order."""
        for key, _ in self.items():
            yield key

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return self.keys()

    def query(
        self,
        box_min: Sequence[int],
        box_max: Sequence[int],
        use_masks: bool = True,
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Range query: iterate entries in the inclusive box
        ``[box_min, box_max]`` (paper Section 3.5).

        ``use_masks=False`` selects the mask-less reference traversal (for
        the ablation benchmark); results are then unordered.
        """
        box_min = self._check_key(box_min)
        box_max = self._check_key(box_max)
        if _rt.enabled:
            _probes.ops_query.inc()
            if use_masks:
                it = range_iter(
                    self._root, box_min, box_max, self._spec
                )
            else:
                it = naive_range_iter(self._root, box_min, box_max)
            return _heat.timed_iter(
                it, box_min, self._width, "query"
            )
        if use_masks:
            return range_iter(self._root, box_min, box_max, self._spec)
        return naive_range_iter(self._root, box_min, box_max)

    def query_all(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> List[Tuple[Tuple[int, ...], Any]]:
        """Materialised :meth:`query` result."""
        return list(self.query(box_min, box_max))

    def query_approx(
        self,
        box_min: Sequence[int],
        box_max: Sequence[int],
        slack_bits: int,
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Approximate range query (reference [17] of the paper).

        Returns a *superset* of the exact result: postfix checks are
        skipped at granularities below ``2**slack_bits``, so extra points
        within ``2**slack_bits - 1`` of the box may be included.  Faster
        on dense data; ``slack_bits=0`` is exactly :meth:`query`.
        """
        from repro.core.range_query import approx_range_iter

        box_min = self._check_key(box_min)
        box_max = self._check_key(box_max)
        if _rt.enabled:
            _probes.ops_query_approx.inc()
            return _heat.timed_iter(
                approx_range_iter(
                    self._root, box_min, box_max, slack_bits, self._spec
                ),
                box_min,
                self._width,
                "query",
            )
        return approx_range_iter(
            self._root, box_min, box_max, slack_bits, self._spec
        )

    def _morton_key(self):
        """The kNN z-order tiebreak: the tree's specialized unrolled
        Morton kernel when available (identical codes on every stored
        key, pinned by the property tests), else the generic closure."""
        spec = self._spec
        if spec is not None:
            return spec.interleave
        return knn_mod.morton_tiebreak(self._width)

    def count(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> int:
        """Number of entries in the inclusive box (no materialisation)."""
        return sum(1 for _ in self.query(box_min, box_max))

    def knn(
        self, key: Sequence[int], n: int = 1
    ) -> List[Tuple[Tuple[int, ...], Any]]:
        """Return the ``n`` nearest entries to ``key`` by Euclidean
        distance in integer key space, nearest first; equidistant
        entries come in z-order (so the result is a pure function of
        the stored key set).
        """
        key = self._check_key(key)
        obs = _rt.enabled
        if obs:
            _probes.ops_knn.inc()
            t0 = _perf_counter()
        result = [
            (found_key, value)
            for _, found_key, value in knn_mod.knn_iter(
                self._root,
                n,
                knn_mod.squared_euclidean_int(key),
                knn_mod.squared_euclidean_region_int(key),
                self._morton_key(),
            )
        ]
        if obs:
            _heat.record(
                key, self._width, "knn", _perf_counter() - t0
            )
        return result

    def nearest_iter(
        self, key: Sequence[int]
    ) -> Iterator[Tuple[Tuple[int, ...], Any]]:
        """Lazily iterate *all* entries by ascending Euclidean distance
        (an unbounded kNN -- stop whenever you have enough)."""
        key = self._check_key(key)
        if _rt.enabled:
            _probes.ops_knn.inc()
            _heat.record(key, self._width, "knn")
        for _, found_key, value in knn_mod.knn_iter(
            self._root,
            len(self),
            knn_mod.squared_euclidean_int(key),
            knn_mod.squared_euclidean_region_int(key),
            self._morton_key(),
        ):
            yield found_key, value

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Remove all entries."""
        self._root = None
        self._size = 0

    def nodes(self) -> Iterator[Node]:
        """Iterate all nodes (pre-order); used by stats and memory model."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            for _, slot in node.items():
                if isinstance(slot, Node):
                    stack.append(slot)

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on
        violation.  Used heavily by the property-based tests.
        """
        if self._root is None:
            if self._size != 0:
                raise AssertionError("empty root but non-zero size")
            return
        if self._root.post_len != self._width - 1:
            raise AssertionError("root must sit at post_len == width - 1")
        if self._root.infix_len != 0:
            raise AssertionError("root must have an empty infix")
        total = self._count_and_check(self._root, None)
        if total != self._size:
            raise AssertionError(
                f"size bookkeeping off: counted {total}, stored {self._size}"
            )

    def _count_and_check(self, node: Node, parent: Optional[Node]) -> int:
        if parent is not None:
            if node.num_slots() < 2:
                raise AssertionError(
                    f"non-root node with {node.num_slots()} slots"
                )
            expected_infix = parent.post_len - 1 - node.post_len
            if node.infix_len != expected_infix:
                raise AssertionError(
                    f"infix_len {node.infix_len} != expected "
                    f"{expected_infix}"
                )
            if not (0 <= node.post_len < parent.post_len):
                raise AssertionError("post_len must shrink downwards")
        shift = node.post_len + 1
        for value in node.prefix:
            if shift < self._width + 1 and value & ((1 << shift) - 1):
                raise AssertionError("prefix has dirty low bits")
        total = 0
        for address, slot in node.items():
            if isinstance(slot, Node):
                if not node_prefix_consistent(node, slot, address):
                    raise AssertionError("child prefix disagrees with path")
                total += self._count_and_check(slot, node)
            else:
                if node.address_of(slot.key) != address:
                    raise AssertionError("entry stored at wrong address")
                if not node.matches_prefix(slot.key):
                    raise AssertionError("entry outside node region")
                total += 1
        return total


def node_prefix_consistent(
    parent: Node, child: Node, address: int
) -> bool:
    """Check that a child's full prefix extends the parent's prefix plus
    the parent-level address bits."""
    k = len(parent.prefix)
    shift = parent.post_len + 1
    for dim in range(k):
        if (child.prefix[dim] >> shift) != (parent.prefix[dim] >> shift):
            return False
        address_bit = (address >> (k - 1 - dim)) & 1
        if (child.prefix[dim] >> parent.post_len) & 1 != address_bit:
            return False
    return True


def _diff_pos(a: Sequence[int], b: Sequence[int]) -> int:
    """Most significant bit position at which two equal-length keys differ
    in any dimension."""
    conflict = -1
    for va, vb in zip(a, b):
        diff = va ^ vb
        if diff:
            pos = diff.bit_length() - 1
            if pos > conflict:
                conflict = pos
    if conflict < 0:
        raise ValueError("keys are identical")
    return conflict
