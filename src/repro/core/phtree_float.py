"""Floating-point facade over the PH-tree (paper Section 3.3).

:class:`PHTreeF` stores k-dimensional ``double`` points.  Coordinates are
converted to sortable unsigned 64-bit integers with
:func:`repro.encoding.ieee.encode_double`; because the conversion is a
strict order isomorphism, point and range semantics carry over unchanged and
results are decoded transparently on the way out.

The kNN search runs in decoded double space: node regions are clamped into
the finite-double code range before decoding so that region lower bounds
stay valid even when a subtree's bit-range spans non-finite IEEE patterns.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core import knn as knn_mod
from repro.core.phtree import PHTree
from repro.encoding.ieee import (
    decode_double,
    decode_point,
    encode_double,
    encode_point,
)

__all__ = ["PHTreeF"]

_MISSING = object()

_CODE_NEG_INF = encode_double(float("-inf"))
_CODE_POS_INF = encode_double(float("inf"))


class PHTreeF:
    """A k-dimensional PH-tree over IEEE-754 double coordinates.

    Mirrors the :class:`~repro.core.phtree.PHTree` API with float keys.
    NaN coordinates are rejected; ``-0.0`` is folded into ``0.0`` (as in the
    paper's conversion function).

    >>> tree = PHTreeF(dims=2)
    >>> tree.put((0.5, 0.25), "a")
    >>> tree.get((0.5, 0.25))
    'a'
    >>> [key for key, _ in tree.query((0.0, 0.0), (1.0, 1.0))]
    [(0.5, 0.25)]
    """

    def __init__(
        self,
        dims: int,
        hc_mode: str = "auto",
        hc_hysteresis: float = 0.0,
        specialize: bool = True,
    ) -> None:
        self._tree = PHTree(
            dims=dims,
            width=64,
            hc_mode=hc_mode,
            hc_hysteresis=hc_hysteresis,
            specialize=specialize,
        )

    # -- basic properties --------------------------------------------------

    @classmethod
    def from_int_tree(cls, tree: PHTree) -> "PHTreeF":
        """Wrap an existing 64-bit integer tree whose keys are encoded
        doubles (e.g. one restored by
        :func:`repro.core.serialize.deserialize_tree`)."""
        if tree.width != 64:
            raise ValueError(
                "float facade requires a 64-bit tree, got width="
                f"{tree.width}"
            )
        facade = cls.__new__(cls)
        facade._tree = tree
        return facade

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._tree.dims

    @property
    def int_tree(self) -> PHTree:
        """The underlying integer-keyed tree (for stats / memory model)."""
        return self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def __contains__(self, key: Sequence[float]) -> bool:
        return self.contains(key)

    # -- point operations ----------------------------------------------------

    def put(self, key: Sequence[float], value: Any = None) -> Any:
        """Insert or update; returns the previous value or None."""
        return self._tree.put(encode_point(key), value)

    def get(self, key: Sequence[float], default: Any = None) -> Any:
        """Value stored at ``key``, or ``default``."""
        return self._tree.get(encode_point(key), default)

    def contains(self, key: Sequence[float]) -> bool:
        """Point query: does ``key`` exist?"""
        return self._tree.contains(encode_point(key))

    def remove(self, key: Sequence[float], default: Any = _MISSING) -> Any:
        """Delete ``key``; KeyError when absent unless ``default`` given."""
        if default is _MISSING:
            return self._tree.remove(encode_point(key))
        return self._tree.remove(encode_point(key), default)

    def update_key(
        self, old_key: Sequence[float], new_key: Sequence[float]
    ) -> None:
        """Move an entry to new float coordinates."""
        self._tree.update_key(encode_point(old_key), encode_point(new_key))

    # -- iteration and queries ------------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        """Iterate ``(key, value)`` pairs in encoded z-order."""
        for key, value in self._tree.items():
            yield decode_point(key), value

    def keys(self) -> Iterator[Tuple[float, ...]]:
        """Iterate float keys."""
        for key, _ in self.items():
            yield key

    def __iter__(self) -> Iterator[Tuple[float, ...]]:
        return self.keys()

    def query(
        self,
        box_min: Sequence[float],
        box_max: Sequence[float],
        use_masks: bool = True,
    ) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        """Range query over the inclusive float box (Section 3.5)."""
        encoded_min = encode_point(box_min)
        encoded_max = encode_point(box_max)
        for key, value in self._tree.query(
            encoded_min, encoded_max, use_masks=use_masks
        ):
            yield decode_point(key), value

    def query_all(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> List[Tuple[Tuple[float, ...], Any]]:
        """Materialised :meth:`query` result."""
        return list(self.query(box_min, box_max))

    def knn(
        self, key: Sequence[float], n: int = 1
    ) -> List[Tuple[Tuple[float, ...], Any]]:
        """``n`` nearest stored points by Euclidean distance on doubles."""
        query = tuple(float(v) for v in key)
        for v in query:
            if math.isnan(v):
                raise ValueError("NaN cannot be used as a kNN query point")

        def point_distance(int_key: Sequence[int]) -> float:
            total = 0.0
            for q, code in zip(query, int_key):
                stored = decode_double(code)
                if q == stored:
                    # Equal coordinates contribute 0; subtracting would
                    # give NaN for matching infinities (inf - inf).
                    continue
                d = q - stored
                total += d * d
            return total

        def region_distance(
            lower: Sequence[int], upper: Sequence[int]
        ) -> float:
            total = 0.0
            for q, lo_code, hi_code in zip(query, lower, upper):
                # Clamp into the finite/infinite double range: codes beyond
                # encode(+-inf) are NaN patterns that no stored key can
                # have, so shrinking to the valid range keeps the bound a
                # true lower bound.
                lo = decode_double(max(lo_code, _CODE_NEG_INF))
                hi = decode_double(min(hi_code, _CODE_POS_INF))
                if q < lo:
                    d = lo - q
                elif q > hi:
                    d = q - hi
                else:
                    continue
                total += d * d
            return total

        return [
            (decode_point(found_key), value)
            for _, found_key, value in knn_mod.knn_iter(
                self._tree.root,
                n,
                point_distance,
                region_distance,
                knn_mod.morton_tiebreak(64),
            )
        ]

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Remove all entries."""
        self._tree.clear()

    def check_invariants(self) -> None:
        """Delegate structural validation to the integer tree."""
        self._tree.check_invariants()
