"""Window (range) queries over a PH-tree (paper Section 3.5).

A range query takes an inclusive axis-aligned box given by its 'lower left'
and 'upper right' corner and yields all stored ``(key, value)`` pairs inside
it.  Traversal is depth-first; inside each node the ``m_L``/``m_U`` masks
restrict the visited hypercube addresses to the slots that can possibly
intersect the query, using the successor computation to skip over invalid
address ranges in a single operation.

The production engine is the iterative kernel in :mod:`repro.core.kernel`
(explicit frame stack, inlined masks, allocation-free slot stepping).  Two
reference engines remain for ablation and the perf trajectory:

- :func:`generator_range_iter` / :func:`generator_approx_range_iter`: the
  seed implementation (one generator object per visited node), kept as the
  baseline that ``repro.bench.trajectory`` measures the kernel against,
- :func:`naive_range_iter`: a deliberately mask-less traversal used by the
  ablation benchmark (``benchmarks/bench_ablation_masks.py``) to quantify
  what the masks buy.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.core.kernel import range_scan
from repro.core.masks import (
    compute_masks,
    key_in_box,
    node_intersects_box,
)
from repro.core.node import Entry, Node

__all__ = [
    "approx_range_iter",
    "generator_approx_range_iter",
    "generator_range_iter",
    "naive_range_iter",
    "range_iter",
]


def range_iter(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
    spec: Any = None,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Yield all ``(key, value)`` pairs within the inclusive box.

    Results are produced in z-order (ascending interleaved bit-string
    order), which is the node traversal order; output is bit-identical
    to the reference engines (same entries, same order).  ``spec``
    optionally selects the tree's per-(k, width) specialized kernel
    (same results, same order -- see :mod:`repro.core.specialize`).
    """
    return range_scan(root, box_min, box_max, 0, spec)


def approx_range_iter(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int,
    spec: Any = None,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Approximate range query (reference [17]; paper Section 2 calls it
    'a desirable future extension').

    Trades accuracy near the query edges for fewer visited nodes: any
    node whose region spans at most ``2**slack_bits`` per dimension and
    intersects the query is accepted wholesale, without postfix checks.
    The result is a superset of the exact result; every extra point lies
    within ``2**slack_bits - 1`` of the box in each dimension.
    ``slack_bits=0`` degenerates to the exact query.
    """
    if slack_bits < 0:
        raise ValueError(f"slack_bits must be >= 0, got {slack_bits}")
    return range_scan(root, box_min, box_max, slack_bits, spec)


# ---------------------------------------------------------------------------
# Reference engines (ablation + perf-trajectory baselines)
# ---------------------------------------------------------------------------


def _node_inside_box(
    node: Node, box_min: Sequence[int], box_max: Sequence[int]
) -> bool:
    """True when the node's whole region lies inside the query box, in
    which case every entry below it matches without further checks (the
    'node lies completely inside the query range' fast path of Section
    3.5)."""
    free = (1 << (node.post_len + 1)) - 1
    for dim, node_lo in enumerate(node.prefix):
        if node_lo < box_min[dim] or (node_lo | free) > box_max[dim]:
            return False
    return True


def _yield_subtree(node: Node):
    """Yield every entry below ``node``, in z-order, without checks.

    Recursion depth is bounded by the tree depth (<= w)."""
    for _, slot in node.items():
        if isinstance(slot, Node):
            yield from _yield_subtree(slot)
        else:
            yield slot.key, slot.value


def generator_range_iter(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """The seed window-query engine: a stack of per-node generators.

    Functionally identical to :func:`range_iter` (same entries, same
    order); kept as the baseline the iterative kernel is benchmarked
    against in ``repro.bench.trajectory``, and as a correctness oracle
    for the property tests.
    """
    if root is None:
        return
    for dim in range(len(box_min)):
        if box_min[dim] > box_max[dim]:
            return
    if not node_intersects_box(root, box_min, box_max):
        return
    # Each stack frame is an in-flight mask-range iterator over one node.
    mask_lower, mask_upper = compute_masks(root, box_min, box_max)
    stack = [root.container.items_in_mask_range(mask_lower, mask_upper)]
    while stack:
        try:
            _, slot = next(stack[-1])
        except StopIteration:
            stack.pop()
            continue
        if isinstance(slot, Node):
            if _node_inside_box(slot, box_min, box_max):
                # Fast path (Section 3.5): the node is fully covered, so
                # every entry below matches -- no masks, no key checks.
                yield from _yield_subtree(slot)
            elif node_intersects_box(slot, box_min, box_max):
                mask_lower, mask_upper = compute_masks(
                    slot, box_min, box_max
                )
                stack.append(
                    slot.container.items_in_mask_range(
                        mask_lower, mask_upper
                    )
                )
        else:
            entry: Entry = slot
            if key_in_box(entry.key, box_min, box_max):
                yield entry.key, entry.value


def generator_approx_range_iter(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int,
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """The seed approximate-query engine (see :func:`approx_range_iter`).

    Kept as the reference the iterative kernel's approximate mode is
    property-tested against.
    """
    if slack_bits < 0:
        raise ValueError(f"slack_bits must be >= 0, got {slack_bits}")
    if root is None:
        return
    for dim in range(len(box_min)):
        if box_min[dim] > box_max[dim]:
            return
    if not node_intersects_box(root, box_min, box_max):
        return
    mask_lower, mask_upper = compute_masks(root, box_min, box_max)
    stack = [root.container.items_in_mask_range(mask_lower, mask_upper)]
    while stack:
        try:
            _, slot = next(stack[-1])
        except StopIteration:
            stack.pop()
            continue
        if isinstance(slot, Node):
            if _node_inside_box(slot, box_min, box_max) or (
                slot.post_len + 1 <= slack_bits
                and node_intersects_box(slot, box_min, box_max)
            ):
                yield from _yield_subtree(slot)
            elif node_intersects_box(slot, box_min, box_max):
                mask_lower, mask_upper = compute_masks(
                    slot, box_min, box_max
                )
                stack.append(
                    slot.container.items_in_mask_range(
                        mask_lower, mask_upper
                    )
                )
        else:
            entry: Entry = slot
            # Exact containment is relaxed by the slack tolerance (with
            # slack_bits=0 this is the exact key_in_box check).
            if _near_box(entry.key, box_min, box_max, slack_bits):
                yield entry.key, entry.value


def _near_box(
    key: Sequence[int],
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int,
) -> bool:
    """Containment check with ``2**slack_bits - 1`` tolerance per axis."""
    slack = (1 << slack_bits) - 1
    for dim, value in enumerate(key):
        if value < box_min[dim] - slack or value > box_max[dim] + slack:
            return False
    return True


def naive_range_iter(
    root: Optional[Node],
    box_min: Sequence[int],
    box_max: Sequence[int],
) -> Iterator[Tuple[Tuple[int, ...], Any]]:
    """Mask-less reference traversal: visits every slot of every node whose
    region intersects the query box.

    Functionally identical to :func:`range_iter`; exists to measure the
    benefit of the paper's mask-guided address iteration.
    """
    if root is None:
        return
    for dim in range(len(box_min)):
        if box_min[dim] > box_max[dim]:
            return
    stack = [root]
    while stack:
        node = stack.pop()
        if not node_intersects_box(node, box_min, box_max):
            continue
        for _, slot in node.items():
            if isinstance(slot, Node):
                stack.append(slot)
            elif key_in_box(slot.key, box_min, box_max):
                yield slot.key, slot.value
