"""Bit-stream serialisation of PH-trees (paper Section 3.4, reference [9]).

The PH-tree serialises "most of the data of each node into a single
bit-string": values occupy exactly the number of bits they need, prefixes
are shared, postfixes are truncated to their real length.  This module
implements that layout for whole trees -- nodes are written depth-first,
each as::

    [post_len: 8] [infix bits: infix_len * k] [repr flag: 1]
    [slot count: k+1] ( [address: k] [type: 1] [payload] )*

where an entry payload is ``post_len * k`` postfix bits plus the value
codec's bits, and a sub-node payload is the recursively embedded child.

Because slots are written in ascending address order and the tree's
structure is determined only by its key set, two trees holding the same
keys serialise to identical bytes regardless of their construction history
-- the test suite uses this as the order-independence oracle.

Three magic numbers share this byte-stream family:

- ``PHT1`` (this module): mutable-tree round-trip via
  :func:`serialize_tree` / :func:`deserialize_tree`,
- ``PHF1`` (:mod:`repro.core.frozen`): the same node layout behind a
  read-only header, queried in place without materialising nodes,
- ``PHL1`` (:mod:`repro.learned.index`): an *optional* learned-index
  trailer appended after the ``PHF1`` payload (zero-padded to an 8-byte
  boundary).  ``freeze(..., learned=True)`` writes it;
  ``FrozenPHTree`` attaches it zero-copy when present and ignores it
  otherwise, so a ``PHF1`` stream with a trailer is still a valid plain
  frozen stream to older readers -- the header's bit length bounds the
  payload, and anything past it is opt-in.

Value codecs (:class:`NoneValueCodec`, :class:`U64ValueCodec`) are shared
across all three: the codec's ``bits`` contract is what lets the frozen
reader and the learned trailer's value-position array skip entries
without decoding them.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from repro.core.hypercube import HCContainer, LHCContainer
from repro.core.node import Entry, Node
from repro.core.phtree import PHTree
from repro.encoding.bitbuffer import BitBuffer

__all__ = [
    "NoneValueCodec",
    "U64ValueCodec",
    "deserialize_tree",
    "serialize_tree",
]

_MAGIC = b"PHT1"


class NoneValueCodec:
    """Codec for set semantics: all values must be None, zero bits used."""

    bits = 0

    @staticmethod
    def encode(value: Any) -> int:
        """Validate that the value is None; contributes zero bits."""
        if value is not None:
            raise ValueError(
                "NoneValueCodec can only serialise None values; "
                "pass a value codec matching your payload"
            )
        return 0

    @staticmethod
    def decode(raw: int) -> Any:
        """All values decode to None under set semantics."""
        return None


class U64ValueCodec:
    """Codec for unsigned 64-bit integer values."""

    bits = 64

    @staticmethod
    def encode(value: Any) -> int:
        """Validate and pass through an unsigned 64-bit integer."""
        if not isinstance(value, int) or not 0 <= value < (1 << 64):
            raise ValueError(f"value must be a u64 integer, got {value!r}")
        return value

    @staticmethod
    def decode(raw: int) -> Any:
        """Return the stored integer unchanged."""
        return raw


def serialize_tree(tree: PHTree, value_codec: Any = NoneValueCodec) -> bytes:
    """Serialise ``tree`` into a self-describing byte string."""
    k = tree.dims
    w = tree.width
    if w > 256:
        raise ValueError(
            f"the serialised format stores post_len in 8 bits; "
            f"width {w} > 256 is not representable"
        )
    buf = BitBuffer()
    if tree.root is not None:
        _write_node(buf, tree.root, parent_post_len=w, k=k,
                    value_codec=value_codec)
    header = _MAGIC + struct.pack(
        ">HHQQ", k, w, len(tree), buf.bit_length
    )
    return header + buf.to_bytes()


def deserialize_tree(
    data: bytes,
    value_codec: Any = NoneValueCodec,
    hc_mode: str = "auto",
) -> PHTree:
    """Rebuild a PH-tree from :func:`serialize_tree` output.

    The stored HC/LHC flags are honoured, so the rebuilt tree is
    byte-identical under re-serialisation.
    """
    if data[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not a serialised PH-tree (bad magic)")
    offset = len(_MAGIC)
    if len(data) < offset + struct.calcsize(">HHQQ"):
        raise ValueError("truncated PH-tree header")
    k, w, size, bit_length = struct.unpack_from(">HHQQ", data, offset)
    offset += struct.calcsize(">HHQQ")
    tree = PHTree(dims=k, width=w, hc_mode=hc_mode)
    if size == 0:
        if bit_length:
            raise ValueError("empty tree with non-empty node stream")
        return tree
    buf = BitBuffer.from_bytes(data[offset:], bit_length)
    root, consumed = _read_node(
        buf, 0, parent_post_len=w, parent_prefix=(0,) * k,
        parent_address=0, k=k, value_codec=value_codec,
    )
    if consumed != bit_length:
        raise ValueError(
            f"trailing bits in node stream: read {consumed} of {bit_length}"
        )
    if tree.layout == "arena":
        # The arena engine re-records the decoded graph into its slabs
        # (representation flags preserved, so re-serialisation stays
        # byte-identical).
        tree._adopt_root(root, size)
    else:
        tree._root = root
        tree._size = size
    return tree


def _write_node(
    buf: BitBuffer,
    node: Node,
    parent_post_len: int,
    k: int,
    value_codec: Any,
) -> None:
    buf.append(node.post_len, 8)
    infix_len = parent_post_len - 1 - node.post_len
    if infix_len != node.infix_len:
        raise AssertionError(
            f"inconsistent infix_len: stored {node.infix_len}, "
            f"derived {infix_len}"
        )
    if infix_len:
        shift = node.post_len + 1
        mask = (1 << infix_len) - 1
        for value in node.prefix:
            buf.append((value >> shift) & mask, infix_len)
    buf.append(1 if node.container.is_hc else 0, 1)
    buf.append(node.num_slots(), k + 1)
    post_bits = node.post_len
    post_mask = (1 << post_bits) - 1
    for address, slot in node.items():
        buf.append(address, k)
        if isinstance(slot, Node):
            buf.append(1, 1)
            _write_node(buf, slot, node.post_len, k, value_codec)
        else:
            buf.append(0, 1)
            if post_bits:
                for value in slot.key:
                    buf.append(value & post_mask, post_bits)
            # Encode unconditionally: zero-bit codecs still validate that
            # the value is representable (silently dropping a value would
            # corrupt the round trip).
            buf.append(value_codec.encode(slot.value), value_codec.bits)


def _read_node(
    buf: BitBuffer,
    pos: int,
    parent_post_len: int,
    parent_prefix: Tuple[int, ...],
    parent_address: int,
    k: int,
    value_codec: Any,
) -> Tuple[Node, int]:
    post_len = buf.read(pos, 8)
    pos += 8
    infix_len = parent_post_len - 1 - post_len
    if infix_len < 0:
        raise ValueError("corrupt stream: child post_len above parent")
    # Reassemble the full prefix: parent prefix bits, then the address bit
    # the child occupies in the parent, then the infix bits.  For the root
    # call parent_post_len == w and parent_address == 0, so no spurious
    # bit w is ever set.
    prefix = []
    shift = post_len + 1
    for dim in range(k):
        address_bit = (parent_address >> (k - 1 - dim)) & 1
        prefix.append(
            parent_prefix[dim] | (address_bit << parent_post_len)
        )
    if infix_len:
        new_prefix = []
        mask = (1 << infix_len) - 1
        for dim in range(k):
            infix = buf.read(pos, infix_len)
            pos += infix_len
            new_prefix.append(prefix[dim] | (infix << shift))
        prefix = new_prefix
    node = Node(post_len=post_len, infix_len=infix_len,
                prefix=tuple(prefix))
    is_hc = buf.read(pos, 1) == 1
    pos += 1
    count = buf.read(pos, k + 1)
    pos += k + 1
    container: Any = HCContainer(k) if is_hc else LHCContainer()
    n_sub = 0
    n_post = 0
    post_bits = post_len
    for _ in range(count):
        address = buf.read(pos, k)
        pos += k
        is_sub = buf.read(pos, 1) == 1
        pos += 1
        if is_sub:
            child, pos = _read_node(
                buf, pos, post_len, tuple(prefix), address, k, value_codec
            )
            container.put(address, child)
            n_sub += 1
        else:
            key = []
            for dim in range(k):
                postfix = buf.read(pos, post_bits) if post_bits else 0
                pos += post_bits
                address_bit = (address >> (k - 1 - dim)) & 1
                key.append(
                    prefix[dim] | (address_bit << post_len) | postfix
                )
            value: Any = None
            if value_codec.bits:
                value = value_codec.decode(buf.read(pos, value_codec.bits))
                pos += value_codec.bits
            container.put(address, Entry(tuple(key), value))
            n_post += 1
    node.container = container
    node._n_sub = n_sub
    node._n_post = n_post
    return node, pos
