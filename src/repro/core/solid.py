"""PHTreeSolid: axis-aligned boxes in a PH-tree (SAM on top of PAM).

The paper positions the PH-tree as a point access method and notes that
space access methods "can also be used to store points by using regions
with size 0" but not vice versa (§2).  The converse trick -- used by the
authors' later implementations -- stores each k-dimensional box as one
*2k-dimensional point* ``(min_1..min_k, max_1..max_k)``.  Box queries
then become ordinary window queries in the doubled space:

- **intersection** with query box ``[qlo, qhi]``: every stored box with
  ``min_d <= qhi_d`` and ``max_d >= qlo_d`` -- a window over
  ``min in [domain_lo, qhi]`` × ``max in [qlo, domain_hi]``;
- **containment** (stored box inside the query): a window over
  ``min in [qlo, qhi]`` × ``max in [qlo, qhi]``.

All structural guarantees of the point tree carry over unchanged.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.phtree import PHTree
from repro.encoding.ieee import decode_point, encode_point

__all__ = ["PHTreeSolidF"]

Box = Tuple[Tuple[float, ...], Tuple[float, ...]]

_MISSING = object()

# Encoded-domain extremes (finite doubles).
_DOMAIN_LO = float("-inf")
_DOMAIN_HI = float("inf")


class PHTreeSolidF:
    """A k-dimensional box index over float coordinates.

    >>> solid = PHTreeSolidF(dims=2)
    >>> solid.put((0.0, 0.0), (1.0, 1.0), "unit square")
    >>> [v for _, _, v in solid.query_intersect((0.5, 0.5), (2.0, 2.0))]
    ['unit square']
    >>> [v for _, _, v in solid.query_intersect((2.0, 2.0), (3.0, 3.0))]
    []
    """

    def __init__(self, dims: int, hc_mode: str = "auto") -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        self._dims = dims
        self._tree = PHTree(dims=2 * dims, width=64, hc_mode=hc_mode)

    # -- basics ------------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Dimensionality of the stored boxes (not of the point tree)."""
        return self._dims

    @property
    def point_tree(self) -> PHTree:
        """The underlying 2k-dimensional point tree."""
        return self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def _encode_box(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> Tuple[int, ...]:
        box_min = tuple(float(v) for v in box_min)
        box_max = tuple(float(v) for v in box_max)
        if len(box_min) != self._dims or len(box_max) != self._dims:
            raise ValueError(
                f"box corners must have {self._dims} dimensions"
            )
        for lo, hi in zip(box_min, box_max):
            if lo > hi:
                raise ValueError(
                    f"degenerate box: min {lo} above max {hi}"
                )
        return encode_point(box_min) + encode_point(box_max)

    @staticmethod
    def _decode_box(key: Tuple[int, ...]) -> Box:
        k = len(key) // 2
        return decode_point(key[:k]), decode_point(key[k:])

    # -- updates -------------------------------------------------------------------

    def put(
        self,
        box_min: Sequence[float],
        box_max: Sequence[float],
        value: Any = None,
    ) -> Any:
        """Insert a box (or update its value); returns the previous
        value."""
        return self._tree.put(self._encode_box(box_min, box_max), value)

    def remove(
        self,
        box_min: Sequence[float],
        box_max: Sequence[float],
        default: Any = _MISSING,
    ) -> Any:
        """Delete a box; KeyError when absent unless ``default`` given."""
        key = self._encode_box(box_min, box_max)
        if default is _MISSING:
            return self._tree.remove(key)
        return self._tree.remove(key, default)

    def contains(
        self, box_min: Sequence[float], box_max: Sequence[float]
    ) -> bool:
        """Exact-match lookup of a stored box."""
        return self._tree.contains(self._encode_box(box_min, box_max))

    def get(
        self,
        box_min: Sequence[float],
        box_max: Sequence[float],
        default: Any = None,
    ) -> Any:
        """Value of a stored box, or ``default``."""
        return self._tree.get(self._encode_box(box_min, box_max), default)

    # -- queries ----------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Tuple[float, ...],
                                      Tuple[float, ...], Any]]:
        """Iterate all boxes as ``(min, max, value)``."""
        for key, value in self._tree.items():
            box_min, box_max = self._decode_box(key)
            yield box_min, box_max, value

    def query_intersect(
        self, query_min: Sequence[float], query_max: Sequence[float]
    ) -> Iterator[Tuple[Tuple[float, ...], Tuple[float, ...], Any]]:
        """All stored boxes intersecting the query box (inclusive
        touching counts as intersection)."""
        query_min = tuple(float(v) for v in query_min)
        query_max = tuple(float(v) for v in query_max)
        window_lo = encode_point((_DOMAIN_LO,) * self._dims) + (
            encode_point(query_min)
        )
        window_hi = encode_point(query_max) + encode_point(
            (_DOMAIN_HI,) * self._dims
        )
        for key, value in self._tree.query(window_lo, window_hi):
            box_min, box_max = self._decode_box(key)
            yield box_min, box_max, value

    def query_contained(
        self, query_min: Sequence[float], query_max: Sequence[float]
    ) -> Iterator[Tuple[Tuple[float, ...], Tuple[float, ...], Any]]:
        """All stored boxes lying entirely inside the query box."""
        query_min = tuple(float(v) for v in query_min)
        query_max = tuple(float(v) for v in query_max)
        window_lo = encode_point(query_min) + encode_point(query_min)
        window_hi = encode_point(query_max) + encode_point(query_max)
        for key, value in self._tree.query(window_lo, window_hi):
            box_min, box_max = self._decode_box(key)
            yield box_min, box_max, value

    def query_point(
        self, point: Sequence[float]
    ) -> Iterator[Tuple[Tuple[float, ...], Tuple[float, ...], Any]]:
        """All stored boxes covering ``point`` (a stabbing query)."""
        return self.query_intersect(point, point)

    def check_invariants(self) -> None:
        """Delegate structural validation to the point tree."""
        self._tree.check_invariants()
