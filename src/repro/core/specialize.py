"""Per-(k, width) specialized hot-path kernels.

Every PH-tree operation bottoms out in the same handful of bit
primitives -- hypercube-address extraction, the ``m_L``/``m_U`` mask
arithmetic of Section 3.5, Morton interleaving -- and in pure Python the
generic implementations re-derive shifts, masks, and loop bounds from
``k`` and ``width`` on every call even though both are fixed for the
lifetime of a tree.

This module removes that per-call overhead by *generating* the hot
functions once per ``(k, width)`` shape: the per-dimension loops are
unrolled into straight-line code, the byte lookup tables of
:mod:`repro.encoding.lut` are bound as locals/globals of the generated
code, and all constants (``full = 2**k - 1``, byte shifts of the spread
and compact plans, the root ``post_len``) are baked in as literals.  The
generated functions are exact drop-in twins of the generic engines:

- :attr:`Specialization.find_entry` / :attr:`Specialization.put` mirror
  the point descent of :class:`~repro.core.phtree.PHTree` (the generic
  methods remain as the instrumented and fallback paths),
- :attr:`Specialization.range_scan_plain` /
  :attr:`Specialization.range_scan_instrumented` mirror the flat
  traversal loop of :mod:`repro.core.kernel` line for line -- same
  stack discipline, same mode machine, same probe counters -- with the
  per-dimension mask fusion unrolled,
- :attr:`Specialization.get_many_plain` /
  :attr:`Specialization.get_many_instrumented` mirror the merge-join of
  :mod:`repro.core.batch`,
- :attr:`Specialization.interleave` / :attr:`Specialization.deinterleave`
  / :attr:`Specialization.zkey` are the LUT-driven Morton kernels (the
  kNN tiebreak and batch sort keys),
- :attr:`Specialization.arena_find` / :attr:`Specialization.arena_put` /
  :attr:`Specialization.arena_remove` are the blind-PATRICIA point
  kernels over the :mod:`repro.core.arena` slab layout,
- :attr:`Specialization.arena_range_scan_plain` (+ instrumented twin) /
  :attr:`Specialization.arena_get_many_plain` (+ twin) /
  :attr:`Specialization.arena_knn` are the slab *scan* kernels: the
  same frame machines as the object twins, but each visited node's
  slot window is hoisted into locals with one ``array`` slice per node
  (a single C-loop conversion) instead of boxing a fresh PyLong per
  ``words[i]`` read -- the trick that closes the arena scan gap.

Bit-identical outputs are enforced by the property tests in
``tests/core/test_specialize.py`` and ``tests/obs/test_spec_parity.py``
(results, result *order*, and instrumented probe counts all pinned
against the generic engines).

Specializations are cached in a bounded LRU registry keyed by
``(k, width)`` (:func:`get_spec`), so long-lived servers handling many
tree shapes do not leak generated code: the registry evicts least
recently used shapes beyond :func:`registry_cap`.  Eviction never breaks
live trees -- a :class:`Specialization` is a self-contained bundle of
closures and every tree holds a strong reference to its own.
"""

from __future__ import annotations

import heapq
import threading
from bisect import bisect_left
from struct import Struct
from collections import OrderedDict
from typing import Any, Optional, Tuple

from repro.core.node import Entry, Node
from repro.encoding.lut import compact_plan, spread_plan, spread_table
from repro.obs import probes as _probes

__all__ = [
    "MAX_SPECIALIZED_DIMS",
    "Specialization",
    "clear_registry",
    "get_spec",
    "registry_cap",
    "registry_size",
    "set_registry_cap",
]

#: Beyond this dimensionality the unrolled code would outgrow its
#: benefit; :func:`get_spec` returns None and callers keep the generic
#: loop-based engines.
MAX_SPECIALIZED_DIMS = 32

#: Returned by :attr:`Specialization.arena_remove` when the key is
#: absent (any object, including None, can be a stored value, so the
#: miss needs a private out-of-band token).
ARENA_REMOVE_MISS = object()

# ---------------------------------------------------------------------------
# Plan-cache accounting (shared by every generated arena scan kernel)
# ---------------------------------------------------------------------------

#: ``[hits, misses, invalidations]`` per generated read kernel.  Misses
#: and invalidations are counted unconditionally (both sit on cold
#: paths); hits are counted only by the *instrumented* twins so the
#: plain kernels stay increment-free per node visit.
PLAN_CACHE_WINDOW = [0, 0, 0]
PLAN_CACHE_GET_MANY = [0, 0, 0]

_plan_cache_events = _probes.registry.gauge(
    "repro_plan_cache_events",
    "Plan-cache activity of the generated arena scan kernels "
    "(hit counting needs obs enabled; misses/invalidations are "
    "always counted).",
    labelnames=("kernel", "event"),
)


def _collect_plan_cache() -> None:
    for kernel, counts in (
        ("window", PLAN_CACHE_WINDOW),
        ("get_many", PLAN_CACHE_GET_MANY),
    ):
        for event, value in zip(
            ("hit", "miss", "invalidation"), counts
        ):
            _plan_cache_events.labels(kernel, event).set(value)


_probes.registry.add_collector("plan_cache", _collect_plan_cache)


def reset_plan_cache_counts() -> None:
    """Zero the plan-cache aggregates (``repro.obs.reset_all``)."""
    for counts in (PLAN_CACHE_WINDOW, PLAN_CACHE_GET_MANY):
        counts[0] = counts[1] = counts[2] = 0


def _plan_invalidated(pc: list, entries: int) -> None:
    """Epoch flush observed by a generated kernel: count it and leave a
    flight-recorder breadcrumb (rare -- once per mutation batch)."""
    pc[2] += 1
    from repro.obs import recorder as _recorder

    _recorder.record("plan_cache_invalidation", entries=entries)


# ---------------------------------------------------------------------------
# Source emission helpers (k-unrolled code fragments)
# ---------------------------------------------------------------------------


def _unpack(prefix: str, source: str, k: int) -> str:
    """``p0, p1, p2 = source`` (with the k == 1 trailing comma)."""
    names = ", ".join(f"{prefix}{d}" for d in range(k))
    if k == 1:
        names += ","
    return f"{names} = {source}"


def _addr_expr(k: int, post: str, v: str = "v") -> str:
    """Hypercube address of the unpacked key at bit position ``post``."""
    if k == 1:
        return f"({v}0 >> {post}) & 1"
    parts = []
    for d in range(k):
        shift = k - 1 - d
        if shift:
            parts.append(f"((({v}{d} >> {post}) & 1) << {shift})")
        else:
            parts.append(f"(({v}{d} >> {post}) & 1)")
    return " | ".join(parts)


def _mismatch_expr(k: int, shift: str, v: str = "v", p: str = "p") -> str:
    """Non-zero iff the key leaves the prefix above ``shift`` (the OR of
    per-dimension XORs, shifted once; its bit_length encodes the
    conflict)."""
    xors = " | ".join(f"({v}{d} ^ {p}{d})" for d in range(k))
    return f"((({xors})) >> {shift})"


def _morton_expr(k: int, width: int, v: str = "v") -> str:
    """Full Morton code of the unpacked key via the byte spread table."""
    if k == 1:
        return f"{v}0"
    terms = []
    for in_shift, _table, out_shift in spread_plan(k, width):
        for d in range(k):
            total = out_shift + (k - 1 - d)
            byte = f"{v}{d} & 255" if in_shift == 0 else (
                f"({v}{d} >> {in_shift}) & 255"
            )
            term = f"_st[{byte}]"
            if total:
                term += f" << {total}"
            terms.append(term)
    return " | ".join(terms)


def _zkey_expr(k: int, width: int, v: str = "v") -> str:
    """Approximate z-order sort key (top byte per dimension), matching
    :func:`repro.core.batch.z_sort_key`."""
    shift = width - 8 if width > 8 else 0
    terms = []
    for d in range(k):
        byte = f"{v}{d} & 255" if shift == 0 else f"({v}{d} >> {shift}) & 255"
        term = f"_st[{byte}]"
        if k - 1 - d:
            term += f" << {k - 1 - d}"
        terms.append(term)
    return " | ".join(terms)


def _classify_child(
    k: int, pad: str, instr: bool, reject_counter: str = "c_noderej"
) -> str:
    """Fused intersection / coverage / mask computation for a child node
    (the unrolled twin of the kernel's ``zip(slot.prefix, bmin, bmax)``
    loop); leaves ``cml``/``cmh``/``inside`` set, ``continue``s the
    enclosing loop on a miss."""
    lines = [f"{pad}inside = True"]
    for d in range(k):
        lines.append(f"{pad}nhi = p{d} | cfree")
        lines.append(f"{pad}lo = bl{d}")
        lines.append(f"{pad}hi = bh{d}")
        lines.append(f"{pad}if hi < p{d} or lo > nhi:")
        if instr:
            lines.append(f"{pad}    {reject_counter} += 1")
        lines.append(f"{pad}    continue")
        lines.append(f"{pad}if p{d} < lo or nhi > hi:")
        lines.append(f"{pad}    inside = False")
        lines.append(f"{pad}if lo < p{d}:")
        lines.append(f"{pad}    lo = p{d}")
        lines.append(f"{pad}if hi > nhi:")
        lines.append(f"{pad}    hi = nhi")
        if d == 0:
            lines.append(f"{pad}cml = (lo >> cpost) & 1")
            lines.append(f"{pad}cmh = (hi >> cpost) & 1")
        else:
            lines.append(f"{pad}cml = (cml << 1) | ((lo >> cpost) & 1)")
            lines.append(f"{pad}cmh = (cmh << 1) | ((hi >> cpost) & 1)")
    return "\n".join(lines)


def _classify_root(k: int, pad: str) -> str:
    """Root mask computation (miss returns: the root is never flushed)."""
    lines = []
    for d in range(k):
        lines.append(f"{pad}nhi = p{d} | free")
        lines.append(f"{pad}lo = bl{d}")
        lines.append(f"{pad}hi = bh{d}")
        lines.append(f"{pad}if hi < p{d} or lo > nhi:")
        lines.append(f"{pad}    return")
        lines.append(f"{pad}if lo < p{d}:")
        lines.append(f"{pad}    lo = p{d}")
        lines.append(f"{pad}if hi > nhi:")
        lines.append(f"{pad}    hi = nhi")
        if d == 0:
            lines.append(f"{pad}ml = (lo >> post) & 1")
            lines.append(f"{pad}mh = (hi >> post) & 1")
        else:
            lines.append(f"{pad}ml = (ml << 1) | ((lo >> post) & 1)")
            lines.append(f"{pad}mh = (mh << 1) | ((hi >> post) & 1)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Generated function sources
# ---------------------------------------------------------------------------


def _emit_check_key(k: int, width: int) -> str:
    types = " and ".join(
        f"v{d}.__class__ is int" for d in range(k)
    )
    acc = " | ".join(f"v{d}" for d in range(k))
    return f"""\
def check_key(key):
    if key.__class__ is not tuple:
        try:
            key = tuple(key)
        except TypeError:
            return None
    if len(key) != {k}:
        return None
    {_unpack('v', 'key', k)}
    if {types}:
        acc = {acc}
        if acc >= 0 and not (acc >> {width}):
            return key
    return None
"""


def _emit_point_helpers(k: int, width: int) -> str:
    return f"""\
def hc_address(key, post):
    {_unpack('v', 'key', k)}
    return {_addr_expr(k, 'post')}


def interleave(key):
    {_unpack('v', 'key', k)}
    return {_morton_expr(k, width)}


def deinterleave(code):
{_emit_deinterleave_body(k, width)}

def zkey(key):
    {_unpack('v', 'key', k)}
    return {_zkey_expr(k, width)}
"""


def _emit_deinterleave_body(k: int, width: int) -> str:
    if k == 1:
        return "    return (code,)\n"
    lines = []
    for d in range(k):
        shift = k - 1 - d
        src = "code" if shift == 0 else f"(code >> {shift})"
        terms = []
        for j, (in_shift, _table, out_shift) in enumerate(
            compact_plan(k, width)
        ):
            byte = (
                f"{src} & 255"
                if in_shift == 0
                else f"({src} >> {in_shift}) & 255"
            )
            term = f"_ct{j}[{byte}]"
            if out_shift:
                term += f" << {out_shift}"
            terms.append(term)
        lines.append(f"    v{d} = " + " | ".join(terms))
    tup = ", ".join(f"v{d}" for d in range(k))
    if k == 1:
        tup += ","
    lines.append(f"    return ({tup})")
    return "\n".join(lines) + "\n"


def _emit_find_entry(k: int) -> str:
    return f"""\
def find_entry(root, key):
    {_unpack('v', 'key', k)}
    node = root
    node_cls = Node
    while True:
        post = node.post_len
        a = {_addr_expr(k, 'post')}
        cont = node.container
        if cont.is_hc:
            slot = cont._slots[a]
            if slot is None:
                return None
        else:
            addrs = cont._addresses
            pos = bisect_left(addrs, a)
            if pos >= len(addrs) or addrs[pos] != a:
                return None
            slot = cont._slots[pos]
        if slot.__class__ is node_cls:
            shift = slot.post_len + 1
            {_unpack('p', 'slot.prefix', k)}
            if {_mismatch_expr(k, 'shift')}:
                return None
            node = slot
            continue
        return slot if slot.key == key else None
"""


def _emit_put(k: int, width: int) -> str:
    root_post = width - 1
    zeros = ", ".join("0" for _ in range(k))
    if k == 1:
        zeros += ","
    return f"""\
def put(tree, key, value):
    {_unpack('v', 'key', k)}
    node = tree._root
    dims = {k}
    hc_mode = tree._hc_mode
    hyst = tree._hysteresis
    if node is None:
        node = Node({root_post}, 0, ({zeros}))
        node.put_slot(
            {_addr_expr(k, str(root_post))},
            Entry(key, value), dims, hc_mode, hyst,
        )
        tree._root = node
        tree._size = 1
        return None
    node_cls = Node
    while True:
        post = node.post_len
        a = {_addr_expr(k, 'post')}
        cont = node.container
        if cont.is_hc:
            slot = cont._slots[a]
        else:
            addrs = cont._addresses
            pos = bisect_left(addrs, a)
            slot = (
                cont._slots[pos]
                if pos < len(addrs) and addrs[pos] == a
                else None
            )
        if slot is None:
            node.put_slot(a, Entry(key, value), dims, hc_mode, hyst)
            tree._size += 1
            return None
        if slot.__class__ is node_cls:
            shift = slot.post_len + 1
            {_unpack('p', 'slot.prefix', k)}
            diff = {_mismatch_expr(k, 'shift')}
            if not diff:
                node = slot
                continue
            conflict = diff.bit_length() - 1 + shift
            mid = tree._new_split_node(node, key, conflict)
            slot.infix_len = conflict - 1 - slot.post_len
            mid.put_slot(
                hc_address(slot.prefix, conflict), slot,
                dims, hc_mode, hyst,
            )
            mid.put_slot(
                {_addr_expr(k, 'conflict')}, Entry(key, value),
                dims, hc_mode, hyst,
            )
            node.put_slot(a, mid, dims, hc_mode, hyst)
            tree._size += 1
            return None
        entry = slot
        ekey = entry.key
        if ekey == key:
            previous = entry.value
            entry.value = value
            return previous
        {_unpack('e', 'ekey', k)}
        diff = {" | ".join(f"(v{d} ^ e{d})" for d in range(k))}
        conflict = diff.bit_length() - 1
        mid = tree._new_split_node(node, key, conflict)
        mid.put_slot(
            {_addr_expr(k, 'conflict', 'e')}, entry, dims, hc_mode, hyst,
        )
        mid.put_slot(
            {_addr_expr(k, 'conflict')}, Entry(key, value),
            dims, hc_mode, hyst,
        )
        node.put_slot(a, mid, dims, hc_mode, hyst)
        tree._size += 1
        return None
"""


def _emit_arena_find(k: int) -> str:
    """Unrolled point descent over the arena slab layout (see
    :mod:`repro.core.arena` for the header/record format; the numeric
    literals below are the header field extractions).  Blind PATRICIA
    descent: no infix checks on the way down, the full-key comparison
    at the reached entry settles membership.  Returns the entry record
    offset, or -1."""
    entry_test = " and ".join(
        f"entries[eoff + {d}] == v{d}" if d else "entries[eoff] == v0"
        for d in range(k)
    )
    return f"""\
def arena_find(tree, key):
    {_unpack('v', 'key', k)}
    arena = tree._arena
    words = arena.words
    off = tree._root_off
    if not off:
        return -1
    h = words[off]
    while True:
        post = h & 63
        a = {_addr_expr(k, 'post')}
        if h >= 16384:
            # LHC with cap >= 4 (upper levels, visited on every walk):
            # HC headers carry cap_log 0, so they always test below.
            base = off + {2 + k}
            cap = 1 << ((h >> 13) & 63)
            end = base + cap
            if words[end - 1] == cap - 1:
                # Address-complete table: ``cap`` sorted distinct
                # addresses ending in ``cap - 1`` are exactly 0..cap-1,
                # so the address row is the identity -- index directly.
                if a < cap:
                    ref = words[end + a]
                else:
                    return -1
            else:
                pos = bisect_left(words, a, base, end)
                if pos < end and words[pos] == a:
                    ref = words[pos + cap]
                else:
                    return -1
        elif h & 4096:
            ref = words[off + {2 + k} + a]
        else:
            # cap_log == 1: the two-slot table every split starts with.
            base = off + {2 + k}
            if words[base] == a:
                ref = words[base + 2]
            elif words[base + 1] == a:
                ref = words[base + 3]
            else:
                return -1
        if not ref:
            return -1
        if ref & 1:
            off = ref >> 1
            h = words[off]
            continue
        eoff = ref >> 1
        entries = arena.entries
        if {entry_test}:
            return eoff
        return -1
"""


def _emit_arena_put(k: int, width: int) -> str:
    """Unrolled write descent over the arena slab layout.  The descent
    is *blind* (PATRICIA-style, like ``arena_find``): per-level infix
    checks are skipped and a single full comparison at the bottom -- the
    reached entry's key, or the reached node's prefix when the slot is
    empty -- recovers the highest conflicting bit.  A conflict below the
    reached node splits right there; a conflict above it hands off to
    ``tree._put_above`` for a short second pass.  Structural mutations
    delegate to the shared slab helpers (``_put_new_entry`` / ``_split``
    / ``_replace_value``), which reallocate blocks and patch the parent
    ref word at ``pidx``."""
    prefix_loads = "\n".join(
        f"    p{d} = words[off + {2 + d}]" for d in range(k)
    )
    prefix_diff = " | ".join(f"(v{d} ^ p{d})" for d in range(k))
    entry_loads = "\n".join(
        f"        e{d} = entries[eoff + {d}]"
        if d
        else "        e0 = entries[eoff]"
        for d in range(k)
    )
    entry_diff = " | ".join(f"(v{d} ^ e{d})" for d in range(k))
    return f"""\
def arena_put(tree, key, value):
    {_unpack('v', 'key', k)}
    off = tree._root_off
    if not off:
        return tree._put_root(key, value)
    arena = tree._arena
    words = arena.words
    pidx = -1
    h = words[off]
    while True:
        post = h & 63
        a = {_addr_expr(k, 'post')}
        if h >= 16384:
            # LHC with cap >= 4 (upper levels, visited on every walk):
            # HC headers carry cap_log 0, so they always test below.
            base = off + {2 + k}
            cap = 1 << ((h >> 13) & 63)
            end = base + cap
            if words[end - 1] == cap - 1:
                # Address-complete table: the address row is the
                # identity (see ``arena_find``) -- index directly.  A
                # miss (a >= cap) inserts after every present address.
                if a < cap:
                    idx = end + a
                    ref = words[idx]
                else:
                    pos = end
                    break
            else:
                pos = bisect_left(words, a, base, end)
                if pos < end and words[pos] == a:
                    idx = pos + cap
                    ref = words[idx]
                else:
                    break
        elif h & 4096:
            idx = off + {2 + k} + a
            ref = words[idx]
            if not ref:
                pos = idx
                break
        else:
            # cap_log == 1: the two-slot table every split starts with.
            base = off + {2 + k}
            b0 = words[base]
            if b0 == a:
                idx = base + 2
                ref = words[idx]
            else:
                b1 = words[base + 1]
                if b1 == a:
                    idx = base + 3
                    ref = words[idx]
                else:
                    pos = base if b0 > a else (base + 1 if b1 > a else base + 2)
                    break
        if ref & 1:
            off = ref >> 1
            pidx = idx
            h = words[off]
            continue
        eoff = ref >> 1
        entries = arena.entries
{entry_loads}
        diff = {entry_diff}
        if not diff:
            return tree._replace_value(eoff, value)
        conflict = diff.bit_length() - 1
        if conflict < post:
            return tree._split_entry(
                off, pidx, idx, h, ref,
                {_addr_expr(k, 'conflict', 'e')},
                {_addr_expr(k, 'conflict')},
                key, value, conflict,
            )
        return tree._put_above(key, value, conflict)
    # Empty slot: settle the skipped infix checks against this node's
    # prefix (it encodes the whole path above ``post``).
    shift = post + 1
{prefix_loads}
    diff = ({prefix_diff}) >> shift
    if not diff:
        return tree._put_new_entry(off, pidx, h, pos, a, key, value)
    return tree._put_above(key, value, diff.bit_length() - 1 + shift)
"""


def _emit_range_scan(k: int, instr: bool) -> str:
    """The unrolled twin of ``repro.core.kernel._range_scan_plain`` (or,
    with ``instr``, of ``_range_scan_instrumented``): same flat loop,
    same frame tuples, same mode machine and counter placement -- only
    the per-dimension zip-loops are replaced by straight-line code."""
    name = "range_scan_instrumented" if instr else "range_scan_plain"
    full = (1 << k) - 1
    I = "    " if instr else ""  # noqa: E741 - template indent shim

    lines = [f"def {name}(root, box_min, box_max, slack_bits=0):"]
    emit = lines.append
    emit("    if root is None:")
    emit("        return")
    emit(f"    {_unpack('bl', 'box_min', k)}")
    emit(f"    {_unpack('bh', 'box_max', k)}")
    emit(
        "    if "
        + " or ".join(f"bl{d} > bh{d}" for d in range(k))
        + ":"
    )
    emit("        return")
    emit("    node_cls = Node")
    emit("    if slack_bits > 0:")
    emit("        slack = (1 << slack_bits) - 1")
    for d in range(k):
        emit(f"        cl{d} = bl{d} - slack")
        emit(f"        ch{d} = bh{d} + slack")
    emit("    else:")
    for d in range(k):
        emit(f"        cl{d} = bl{d}")
        emit(f"        ch{d} = bh{d}")
    emit("")
    emit("    post = root.post_len")
    emit("    free = (1 << (post + 1)) - 1")
    emit(f"    {_unpack('p', 'root.prefix', k)}")
    emit(_classify_root(k, "    "))
    emit("    cont = root.container")
    emit("    slots = cont._slots")
    emit("    limit = len(slots)")
    emit("    if cont.is_hc:")
    emit("        addrs = None")
    emit(f"        if ml == 0 and mh == {full}:")
    emit("            mode = 2")
    emit("            cur = 0")
    emit("        else:")
    emit("            mode = 1")
    emit("            cur = ml")
    emit("    else:")
    emit("        addrs = cont._addresses")
    emit(f"        if ml == 0 and mh == {full}:")
    emit("            mode = 2")
    emit("            cur = 0")
    emit("        else:")
    emit("            mode = 1")
    emit("            cur = bisect_left(addrs, ml)")
    emit("")
    if instr:
        emit("    c_nodes = 1")
        emit("    c_hc = 1 if cont.is_hc else 0")
        emit("    c_frames = 0")
        emit("    c_slots = 0")
        emit("    c_flush = 0")
        emit("    c_plain = 1 if mode == 2 else 0")
        emit("    c_maskrej = 0")
        emit("    c_noderej = 0")
        emit("    c_postdrop = 0")
        emit("    c_entries = 0")
        emit("")
    emit("    stack = []")
    emit("    pop = stack.pop")
    emit("    push = stack.append")
    emit("")
    if instr:
        emit("    try:")

    body = []
    b = body.append
    b("while True:")
    b("    if mode == 1:")
    b("        if addrs is None:")
    b("            if cur < 0:")
    b("                if not stack:")
    b("                    return")
    b("                slots, addrs, cur, ml, mh, mode, limit = pop()")
    b("                continue")
    b("            a = cur")
    b("            cur = -1 if a >= mh else ((((a | ~mh) + 1) & mh) | ml)")
    b("            slot = slots[a]")
    if instr:
        b("            c_slots += 1")
    b("            if slot is None:")
    b("                continue")
    b("        else:")
    b("            if cur >= limit:")
    b("                if not stack:")
    b("                    return")
    b("                slots, addrs, cur, ml, mh, mode, limit = pop()")
    b("                continue")
    b("            a = addrs[cur]")
    b("            if a > mh:")
    b("                if not stack:")
    b("                    return")
    b("                slots, addrs, cur, ml, mh, mode, limit = pop()")
    b("                continue")
    b("            slot = slots[cur]")
    b("            cur += 1")
    if instr:
        b("            c_slots += 1")
    b("            if (a | ml) != a or (a & mh) != a:")
    if instr:
        b("                c_maskrej += 1")
    b("                continue")
    b("    else:")
    b("        if cur >= limit:")
    b("            if not stack:")
    b("                return")
    b("            slots, addrs, cur, ml, mh, mode, limit = pop()")
    b("            continue")
    b("        slot = slots[cur]")
    b("        cur += 1")
    if instr:
        b("        c_slots += 1")
    b("        if slot is None:")
    b("            continue")
    b("")
    b("    if slot.__class__ is node_cls:")
    b("        if mode == 0:")
    b("            push((slots, addrs, cur, ml, mh, mode, limit))")
    b("            cont = slot.container")
    b("            slots = cont._slots")
    b("            addrs = None")
    b("            cur = 0")
    b("            limit = len(slots)")
    if instr:
        b("            c_frames += 1")
        b("            c_nodes += 1")
        b("            if cont.is_hc:")
        b("                c_hc += 1")
    b("            continue")
    b("        cpost = slot.post_len")
    b("        cfree = (1 << (cpost + 1)) - 1")
    b(f"        {_unpack('p', 'slot.prefix', k)}")
    b(_classify_child(k, "        ", instr))
    b("        push((slots, addrs, cur, ml, mh, mode, limit))")
    b("        cont = slot.container")
    b("        slots = cont._slots")
    b("        limit = len(slots)")
    if instr:
        b("        c_frames += 1")
        b("        c_nodes += 1")
        b("        if cont.is_hc:")
        b("            c_hc += 1")
    b("        if inside or cpost < slack_bits:")
    b("            addrs = None")
    b("            mode = 0")
    b("            cur = 0")
    if instr:
        b("            c_flush += 1")
    b("        elif cont.is_hc:")
    b("            addrs = None")
    b(f"            if cml == 0 and cmh == {full}:")
    b("                mode = 2")
    b("                cur = 0")
    if instr:
        b("                c_plain += 1")
    b("            else:")
    b("                mode = 1")
    b("                ml = cml")
    b("                mh = cmh")
    b("                cur = cml")
    b("        else:")
    b("            addrs = cont._addresses")
    b(f"            if cml == 0 and cmh == {full}:")
    b("                mode = 2")
    b("                cur = 0")
    if instr:
        b("                c_plain += 1")
    b("            else:")
    b("                mode = 1")
    b("                ml = cml")
    b("                mh = cmh")
    b("                cur = bisect_left(addrs, cml)")
    b("        continue")
    b("")
    b("    if mode == 0:")
    if instr:
        b("        c_entries += 1")
    b("        yield slot.key, slot.value")
    b("    else:")
    b("        key = slot.key")
    b(f"        {_unpack('v', 'key', k)}")
    b(
        "        if "
        + " or ".join(f"v{d} < cl{d} or v{d} > ch{d}" for d in range(k))
        + ":"
    )
    if instr:
        b("            c_postdrop += 1")
        b("            pass")
    else:
        b("            pass")
    b("        else:")
    if instr:
        b("            c_entries += 1")
    b("            yield key, slot.value")

    pad = "        " if instr else "    "
    for chunk in body:
        for line in chunk.split("\n"):
            emit(pad + line if line else "")
    if instr:
        emit("    finally:")
        emit("        _probes.record_range_scan(")
        emit("            c_nodes, c_hc, c_frames, c_slots, c_flush,")
        emit("            c_plain, c_maskrej, c_noderej, c_postdrop,")
        emit("            c_entries,")
        emit("        )")
    return "\n".join(lines) + "\n"


def _emit_get_many(k: int, instr: bool) -> str:
    """The unrolled twin of ``repro.core.batch._get_many_plain`` /
    ``_get_many_instrumented`` (same merge-join walk, path frames carry
    the prefix unpacked)."""
    name = "get_many_instrumented" if instr else "get_many_plain"
    frame = ", ".join(["node", "shift"] + [f"p{d}" for d in range(k)])
    lines = [f"def {name}(tree, keys, default=None, presorted=False):"]
    emit = lines.append
    emit("    checked, codes = _prepare(tree, keys, not presorted)")
    emit("    n = len(checked)")
    if instr:
        emit("    _probes.ops_get_many.inc()")
        emit("    _probes.batch_keys_get.inc(n)")
    emit("    results = [default] * n")
    emit("    root = tree._root")
    emit("    if root is None or n == 0:")
    emit("        return results")
    emit("    if presorted:")
    emit("        order = range(n)")
    emit("    else:")
    emit("        order = sorted(range(n), key=codes.__getitem__)")
    emit("")
    if instr:
        emit("    c_nodes = 1")
        emit("    c_slots = 0")
    emit("    node_cls = Node")
    emit("    path = [(root, root.post_len + 1) + root.prefix]")
    emit("    push = path.append")
    emit("    pop = path.pop")
    emit(f"    {frame} = path[0]")
    emit("    for i in order:")
    emit("        key = checked[i]")
    emit(f"        {_unpack('v', 'key', k)}")
    emit(f"        while {_mismatch_expr(k, 'shift')}:")
    emit("            pop()")
    emit(f"            {frame} = path[-1]")
    emit("        while True:")
    if instr:
        emit("            c_slots += 1")
    emit("            post = shift - 1")
    emit(f"            a = {_addr_expr(k, 'post')}")
    emit("            cont = node.container")
    emit("            if cont.is_hc:")
    emit("                slot = cont._slots[a]")
    emit("            else:")
    emit("                addrs = cont._addresses")
    emit("                pos = bisect_left(addrs, a)")
    emit("                slot = (")
    emit("                    cont._slots[pos]")
    emit("                    if pos < len(addrs) and addrs[pos] == a")
    emit("                    else None")
    emit("                )")
    emit("            if slot is None:")
    emit("                break")
    emit("            if slot.__class__ is node_cls:")
    emit("                cshift = slot.post_len + 1")
    emit(f"                {_unpack('q', 'slot.prefix', k)}")
    emit(
        "                if "
        + _mismatch_expr(k, "cshift", "v", "q")
        + ":"
    )
    emit("                    break")
    emit("                node = slot")
    emit("                shift = cshift")
    for d in range(k):
        emit(f"                p{d} = q{d}")
    emit(f"                push(({frame}))")
    if instr:
        emit("                c_nodes += 1")
    emit("                continue")
    emit("            if slot.key == key:")
    emit("                results[i] = slot.value")
    emit("            break")
    if instr:
        emit("    _probes.batch_nodes_visited.inc(c_nodes)")
        emit("    _probes.batch_slots_scanned.inc(c_slots)")
    emit("    return results")
    return "\n".join(lines) + "\n"


def _entry_tuple(k: int, e: str = "e") -> str:
    """``(entries[e], entries[e + 1], ...)`` with the k == 1 comma."""
    parts = [
        f"entries[{e} + {d}]" if d else f"entries[{e}]" for d in range(k)
    ]
    return "(" + ", ".join(parts) + ("," if k == 1 else "") + ")"


def _plan_build_lines(k: int, off: str, pad: str, pc: str) -> list:
    """Emit the cold-path node-plan build for ``off`` into ``f`` and
    memoise it in ``cache``.

    A *plan* is the node-static half of a read-kernel frame::

        (post_len, limit, refs, addrs, lut, p0 .. p{k-1})

    ``refs`` is the slot-ref window hoisted to a plain list with one
    ``array`` slice + ``tolist`` (a single C loop, no per-read PyLong
    boxing); ``addrs`` is the live LHC address row as a list, or None
    for an HC node (whose ``refs`` is the full ``2**k`` direct table).
    ``lut`` is the point-probe index: None for HC (probe with a direct
    ``refs[a]`` subscript) and ``dict(zip(addrs, refs))`` for LHC --
    one C hash probe per level instead of bisect + two subscripts + a
    compare.  Plans are cached per node offset in ``tree._plan_cache``
    and invalidated wholesale by the tree's mutation epoch, so scans
    and batch lookups over a quiescent tree decode each node's header
    and slot table exactly once across *all* subsequent calls.
    """
    hc_slots = 1 << k
    if k == 1:
        hc_tail = f", words[{off} + 2])"
        lhc_tail = hc_tail
    else:
        hc_tail = f") + uk(words, ({off} + 2) << 3)"
        lhc_tail = hc_tail
    return [
        f"{pad}h = words[{off}]",
        f"{pad}base = {off} + {2 + k}",
        f"{pad}if h & 4096:",
        f"{pad}    f = (h & 63, {hc_slots}, "
        f"words[base : base + {hc_slots}].tolist(), None, None{hc_tail}",
        f"{pad}else:",
        f"{pad}    c = words[{off} + 1]",
        f"{pad}    nn = (c & 2097151) + ((c >> 21) & 2097151)",
        f"{pad}    rbase = base + (1 << ((h >> 13) & 63))",
        f"{pad}    rr = words[rbase : rbase + nn].tolist()",
        f"{pad}    aa = words[base : base + nn].tolist()",
        f"{pad}    f = (h & 63, nn, rr, aa, dict(zip(aa, rr)){lhc_tail}",
        f"{pad}cache[{off}] = f",
        f"{pad}{pc}[1] += 1",
    ]


def _emit_cache_preamble(emit, pc: str) -> None:
    """Epoch check shared by the cached read kernels: any mutation since
    the cache was filled invalidates every plan at once.  A non-empty
    flush counts as one invalidation (``_plan_invalidated`` also drops
    a flight-recorder event); the fast path stays one compare."""
    emit("    cache = tree._plan_cache")
    emit("    if tree._plan_epoch != tree._mut_epoch:")
    emit("        if cache:")
    emit(f"            _plan_invalidated({pc}, len(cache))")
    emit("            cache.clear()")
    emit("        tree._plan_epoch = tree._mut_epoch")


def _emit_arena_range_scan(k: int, instr: bool) -> str:
    """The unrolled slab twin of ``repro.core.kernel.arena_range_scan``:
    same flat mode machine (masked / plain-scan / flush), same z-order
    output and counter placement -- but each visited node's slot window
    comes from the epoch-invalidated *plan cache* (see
    :func:`_plan_build_lines`): the first visit hoists the ref/address
    rows to plain lists with one ``array`` slice each, every later
    visit -- in this query or any subsequent one on a quiescent tree --
    is a dict hit.  Frames carry ``(refs, addrs, cur, ml, mh, mode,
    limit)`` exactly like the object kernel's (``addrs`` may be a live
    list in non-masked modes; only mode 1 consults it)."""
    name = (
        "arena_range_scan_instrumented"
        if instr
        else "arena_range_scan_plain"
    )
    full = (1 << k) - 1

    lines = [f"def {name}(tree, box_min, box_max, slack_bits=0):"]
    emit = lines.append
    emit("    root = tree._root_off")
    emit("    if not root:")
    emit("        return")
    emit("    arena = tree._arena")
    emit("    words = arena.words")
    emit("    entries = arena.entries")
    emit("    values = arena.values")
    if k > 1:
        emit("    uk = _ukey")
    emit(f"    {_unpack('bl', 'box_min', k)}")
    emit(
        "    if "
        + " or ".join(f"bl{d} > box_max[{d}]" for d in range(k))
        + ":"
    )
    emit("        return")
    emit(f"    {_unpack('bh', 'box_max', k)}")
    emit("    if slack_bits > 0:")
    emit("        slack = (1 << slack_bits) - 1")
    for d in range(k):
        emit(f"        cl{d} = bl{d} - slack")
        emit(f"        ch{d} = bh{d} + slack")
    emit("    else:")
    for d in range(k):
        emit(f"        cl{d} = bl{d}")
        emit(f"        ch{d} = bh{d}")
    emit("")
    _emit_cache_preamble(emit, "_pcw")
    emit("    f = cache.get(root)")
    emit("    if f is None:")
    for ln in _plan_build_lines(k, "root", "        ", "_pcw"):
        emit(ln)
    if instr:
        emit("    else:")
        emit("        _pcw[0] += 1")
    frame_names = "post, limit, refs, addrs, _lut, " + ", ".join(
        f"p{d}" for d in range(k)
    )
    emit(f"    {frame_names} = f")
    emit("    free = (1 << (post + 1)) - 1")
    emit(_classify_root(k, "    "))
    emit(f"    if ml == 0 and mh == {full}:")
    emit("        mode = 2")
    emit("        cur = 0")
    emit("    elif addrs is None:")
    emit("        mode = 1")
    emit("        cur = ml")
    emit("    else:")
    emit("        mode = 1")
    emit("        cur = bisect_left(addrs, ml)")
    emit("")
    if instr:
        emit("    c_nodes = 1")
        emit("    c_hc = 1 if addrs is None else 0")
        emit("    c_frames = 0")
        emit("    c_slots = 0")
        emit("    c_flush = 0")
        emit("    c_plain = 1 if mode == 2 else 0")
        emit("    c_maskrej = 0")
        emit("    c_noderej = 0")
        emit("    c_postdrop = 0")
        emit("    c_entries = 0")
        emit("")
    emit("    stack = []")
    emit("    pop = stack.pop")
    emit("    push = stack.append")
    emit("")
    if instr:
        emit("    try:")

    body = []
    b = body.append
    b("while True:")
    b("    if mode == 1:")
    b("        if addrs is None:")
    b("            if cur < 0:")
    b("                if not stack:")
    b("                    return")
    b("                refs, addrs, cur, ml, mh, mode, limit = pop()")
    b("                continue")
    b("            a = cur")
    b("            cur = -1 if a >= mh else ((((a | ~mh) + 1) & mh) | ml)")
    b("            ref = refs[a]")
    if instr:
        b("            c_slots += 1")
    b("            if not ref:")
    b("                continue")
    b("        else:")
    b("            if cur >= limit:")
    b("                if not stack:")
    b("                    return")
    b("                refs, addrs, cur, ml, mh, mode, limit = pop()")
    b("                continue")
    b("            a = addrs[cur]")
    b("            if a > mh:")
    b("                if not stack:")
    b("                    return")
    b("                refs, addrs, cur, ml, mh, mode, limit = pop()")
    b("                continue")
    b("            ref = refs[cur]")
    b("            cur += 1")
    if instr:
        b("            c_slots += 1")
    b("            if (a | ml) != a or (a & mh) != a:")
    if instr:
        b("                c_maskrej += 1")
    b("                continue")
    b("    else:")
    b("        if cur >= limit:")
    b("            if not stack:")
    b("                return")
    b("            refs, addrs, cur, ml, mh, mode, limit = pop()")
    b("            continue")
    b("        ref = refs[cur]")
    b("        cur += 1")
    if instr:
        b("        c_slots += 1")
    b("        if not ref:")
    b("            continue")
    b("")
    b("    if ref & 1:")
    b("        child = ref >> 1")
    b("        f = cache.get(child)")
    b("        if f is None:")
    for ln in _plan_build_lines(k, "child", "            ", "_pcw"):
        b(ln)
    if instr:
        b("        else:")
        b("            _pcw[0] += 1")
    b("        if mode == 0:")
    b("            push((refs, addrs, cur, ml, mh, mode, limit))")
    b(
        f"            cpost, limit, refs, addrs, _lut, "
        f"{_unpack_names('p', k)} = f"
    )
    b("            cur = 0")
    if instr:
        b("            if addrs is None:")
        b("                c_hc += 1")
        b("            c_frames += 1")
        b("            c_nodes += 1")
    b("            continue")
    b(
        f"        cpost, climit, crefs, caddrs, _lut, "
        f"{_unpack_names('p', k)} = f"
    )
    b("        cfree = (1 << (cpost + 1)) - 1")
    b(_classify_child(k, "        ", instr))
    b("        push((refs, addrs, cur, ml, mh, mode, limit))")
    b("        limit = climit")
    b("        refs = crefs")
    if instr:
        b("        if caddrs is None:")
        b("            c_hc += 1")
        b("        c_frames += 1")
        b("        c_nodes += 1")
    b("        if inside or cpost < slack_bits:")
    b("            addrs = caddrs")
    b("            mode = 0")
    b("            cur = 0")
    if instr:
        b("            c_flush += 1")
    b("        elif caddrs is None:")
    b("            addrs = None")
    b(f"            if cml == 0 and cmh == {full}:")
    b("                mode = 2")
    b("                cur = 0")
    if instr:
        b("                c_plain += 1")
    b("            else:")
    b("                mode = 1")
    b("                ml = cml")
    b("                mh = cmh")
    b("                cur = cml")
    b("        else:")
    b("            addrs = caddrs")
    b(f"            if cml == 0 and cmh == {full}:")
    b("                mode = 2")
    b("                cur = 0")
    if instr:
        b("                c_plain += 1")
    b("            else:")
    b("                mode = 1")
    b("                ml = cml")
    b("                mh = cmh")
    b("                cur = bisect_left(caddrs, cml)")
    b("        continue")
    b("")
    b("    e = ref >> 1")
    b("    if mode == 0:")
    if instr:
        b("        c_entries += 1")
    b(f"        vref = entries[e + {k}]")
    if k == 1:
        b("        yield (entries[e],), values[vref]")
    else:
        # One Struct C call builds the key tuple; beats k boxed
        # array subscripts on every flushed entry.
        b("        yield uk(entries, e << 3), values[vref]")
    b("    else:")
    for d in range(k):
        b(
            f"        e{d} = entries[e + {d}]"
            if d
            else "        e0 = entries[e]"
        )
    b(
        "        if "
        + " or ".join(f"e{d} < cl{d} or e{d} > ch{d}" for d in range(k))
        + ":"
    )
    if instr:
        b("            c_postdrop += 1")
        b("            pass")
    else:
        b("            pass")
    b("        else:")
    if instr:
        b("            c_entries += 1")
    b(f"            vref = entries[e + {k}]")
    key_tuple = (
        "(" + ", ".join(f"e{d}" for d in range(k))
        + ("," if k == 1 else "") + ")"
    )
    b(
        f"            yield {key_tuple}, ("
        "values[vref])"
    )

    pad = "        " if instr else "    "
    for chunk in body:
        for line in chunk.split("\n"):
            emit(pad + line if line else "")
    if instr:
        emit("    finally:")
        emit("        _probes.record_range_scan(")
        emit("            c_nodes, c_hc, c_frames, c_slots, c_flush,")
        emit("            c_plain, c_maskrej, c_noderej, c_postdrop,")
        emit("            c_entries,")
        emit("        )")
    return "\n".join(lines) + "\n"


def _unpack_names(prefix: str, k: int) -> str:
    return ", ".join(f"{prefix}{d}" for d in range(k))


def _emit_arena_get_many(k: int, instr: bool) -> str:
    """The unrolled slab twin of ``repro.core.batch.arena_get_many``:
    the same z-sorted merge-join, but path frames *are* the cached node
    plans of :func:`_plan_build_lines` -- an HC probe is one direct
    list subscript, an LHC probe one C dict hash hit against the plan's
    ``lut`` (cheaper than bisect + two subscripts + a compare), and on
    a quiescent tree repeated batches skip header decoding altogether
    via ``tree._plan_cache``.  Entry keys are read as one
    ``Struct.unpack_from`` tuple (one C call instead of k boxed
    ``array`` subscripts) and compared whole."""
    name = (
        "arena_get_many_instrumented" if instr else "arena_get_many_plain"
    )
    frame = "post, lim, refs, addrs, lut, " + ", ".join(
        f"p{d}" for d in range(k)
    )
    lines = [f"def {name}(tree, keys, default=None, presorted=False):"]
    emit = lines.append
    emit("    checked, codes = _prepare(tree, keys, not presorted)")
    emit("    n = len(checked)")
    if instr:
        emit("    _probes.ops_get_many.inc()")
        emit("    _probes.batch_keys_get.inc(n)")
    emit("    results = [default] * n")
    emit("    root = tree._root_off")
    emit("    if not root or n == 0:")
    emit("        return results")
    emit("    if presorted:")
    emit("        order = range(n)")
    emit("    else:")
    emit("        order = sorted(range(n), key=codes.__getitem__)")
    emit("")
    emit("    arena = tree._arena")
    emit("    words = arena.words")
    emit("    entries = arena.entries")
    emit("    values = arena.values")
    if k > 1:
        emit("    uk = _ukey")
    _emit_cache_preamble(emit, "_pcg")
    if instr:
        emit("    c_nodes = 1")
        emit("    c_slots = 0")
    emit("    f = cache.get(root)")
    emit("    if f is None:")
    for ln in _plan_build_lines(k, "root", "        ", "_pcg"):
        emit(ln)
    if instr:
        emit("    else:")
        emit("        _pcg[0] += 1")
    emit(f"    {frame} = f")
    emit("    path = [f]")
    emit("    push = path.append")
    emit("    pop = path.pop")
    emit("    for i in order:")
    emit("        key = checked[i]")
    emit(f"        {_unpack('v', 'key', k)}")
    emit(f"        while {_mismatch_expr(k, 'post')} > 1:")
    emit("            pop()")
    emit(f"            {frame} = path[-1]")
    emit("        while True:")
    if instr:
        emit("            c_slots += 1")
    emit(f"            a = {_addr_expr(k, 'post')}")
    emit("            if lut is None:")
    emit("                ref = refs[a]")
    emit("                if not ref:")
    emit("                    break")
    emit("            else:")
    emit("                ref = lut.get(a)")
    emit("                if ref is None:")
    emit("                    break")
    emit("            if ref & 1:")
    emit("                child = ref >> 1")
    emit("                f = cache.get(child)")
    emit("                if f is None:")
    for ln in _plan_build_lines(
        k, "child", "                    ", "_pcg"
    ):
        emit(ln)
    if instr:
        emit("                else:")
        emit("                    _pcg[0] += 1")
    qs = ", ".join(f"q{d}" for d in range(k))
    emit(f"                cpost, clim, crefs, caddrs, clut, {qs} = f")
    emit(
        "                if "
        + _mismatch_expr(k, "cpost", "v", "q")
        + " > 1:"
    )
    emit("                    break")
    emit("                post = cpost")
    emit("                lim = clim")
    emit("                refs = crefs")
    emit("                addrs = caddrs")
    emit("                lut = clut")
    for d in range(k):
        emit(f"                p{d} = q{d}")
    emit("                push(f)")
    if instr:
        emit("                c_nodes += 1")
    emit("                continue")
    emit("            e = ref >> 1")
    if k == 1:
        emit("            if entries[e] == v0:")
    else:
        emit("            if uk(entries, e << 3) == key:")
    emit(f"                results[i] = values[entries[e + {k}]]")
    emit("            break")
    if instr:
        emit("    _probes.batch_nodes_visited.inc(c_nodes)")
        emit("    _probes.batch_slots_scanned.inc(c_slots)")
    emit("    return results")
    return "\n".join(lines) + "\n"


def _emit_arena_remove(k: int) -> str:
    """Unrolled blind-descent delete over the arena slab layout: the
    same PATRICIA discipline as ``arena_find`` (no per-level infix
    checks; the full-key comparison at the reached entry settles
    membership), tracking the parent chain needed by the in-slab
    LHC shift/merge helpers.  On a hit the structural mutation is
    delegated to ``tree._remove_hit`` (ref removal, free-list
    recycling, underfull merge); a miss returns the shared ``_miss``
    sentinel so the caller can apply its default/raise semantics."""
    entry_test = " and ".join(
        f"entries[eoff + {d}] == v{d}" if d else "entries[eoff] == v0"
        for d in range(k)
    )
    return f"""\
def arena_remove(tree, key):
    {_unpack('v', 'key', k)}
    off = tree._root_off
    if not off:
        return _miss
    arena = tree._arena
    words = arena.words
    pidx = -1
    poff = 0
    pa = -1
    ppidx = -1
    h = words[off]
    while True:
        post = h & 63
        a = {_addr_expr(k, 'post')}
        if h >= 16384:
            # LHC with cap >= 4; identity-table fast path (see
            # ``arena_find``).
            base = off + {2 + k}
            cap = 1 << ((h >> 13) & 63)
            end = base + cap
            if words[end - 1] == cap - 1:
                if a >= cap:
                    return _miss
                idx = end + a
                ref = words[idx]
            else:
                pos = bisect_left(words, a, base, end)
                if pos < end and words[pos] == a:
                    idx = pos + cap
                    ref = words[idx]
                else:
                    return _miss
        elif h & 4096:
            idx = off + {2 + k} + a
            ref = words[idx]
        else:
            # cap_log == 1: the two-slot table every split starts with.
            base = off + {2 + k}
            if words[base] == a:
                idx = base + 2
            elif words[base + 1] == a:
                idx = base + 3
            else:
                return _miss
            ref = words[idx]
        if not ref:
            return _miss
        if ref & 1:
            poff = off
            pa = a
            ppidx = pidx
            pidx = idx
            off = ref >> 1
            h = words[off]
            continue
        eoff = ref >> 1
        entries = arena.entries
        if {entry_test}:
            return tree._remove_hit(off, pidx, eoff, idx, poff, pa, ppidx)
        return _miss
"""


def _emit_arena_knn(k: int, width: int) -> str:
    """Unrolled best-first kNN over the arena slabs: the expansion twin
    of ``repro.core.knn.arena_knn_iter`` with the integer point/region
    distance kernels and the Morton tiebreak inlined (no per-push
    closure calls), each expanded node's ref run hoisted with one
    slice.  Push order, distances and z-tiebreaks are identical to the
    generic engine, so ties resolve identically; returns the
    ``[(key, value), ...]`` list ``ArenaPHTree.knn`` materialises."""

    def region_dist(pad: str, acc: str) -> str:
        out = []
        for d in range(k):
            out.append(f"{pad}hi = p{d} | cfree")
            out.append(f"{pad}if q{d} < p{d}:")
            out.append(f"{pad}    t = p{d} - q{d}")
            out.append(f"{pad}    {acc} += t * t")
            out.append(f"{pad}elif q{d} > hi:")
            out.append(f"{pad}    t = q{d} - hi")
            out.append(f"{pad}    {acc} += t * t")
        return "\n".join(out)

    point_dist = "\n".join(
        f"                    t = q{d} - e{d}\n"
        f"                    cdist += t * t"
        for d in range(k)
    )
    entry_loads = "\n".join(
        f"                    e{d} = entries[e + {d}]"
        if d
        else "                    e0 = entries[e]"
        for d in range(k)
    )
    out_tuple = (
        "(" + ", ".join(f"entries[e + {d}]" if d else "entries[e]"
                        for d in range(k))
        + ("," if k == 1 else "") + ")"
    )
    return f"""\
def arena_knn(tree, query, n):
    out = []
    root = tree._root_off
    if n <= 0 or not root:
        return out
    {_unpack('q', 'query', k)}
    arena = tree._arena
    words = arena.words
    entries = arena.entries
    values = arena.values
    cfree = (1 << ((words[root] & 63) + 1)) - 1
{_unpack_prefix_lines(k, 'root', '    ')}
    dist = 0
{region_dist('    ', 'dist')}
    heap = [(dist, {_morton_expr(k, width, 'p')}, 0, (root << 1) | 1)]
    tb = 1
    produced = 0
    push = _heappush
    pop = _heappop
    while heap:
        dist, _z, _t, ref = pop(heap)
        if ref & 1:
            off = ref >> 1
            h = words[off]
            base = off + {2 + k}
            if h & 4096:
                refs = words[base : base + {1 << k}].tolist()
            else:
                c = words[off + 1]
                nslots = (c & 2097151) + ((c >> 21) & 2097151)
                rbase = base + (1 << ((h >> 13) & 63))
                refs = words[rbase : rbase + nslots].tolist()
            for cref in refs:
                if not cref:
                    continue
                if cref & 1:
                    child = cref >> 1
                    cfree = (1 << ((words[child] & 63) + 1)) - 1
{_unpack_prefix_lines(k, 'child', '                    ')}
                    cdist = 0
{region_dist('                    ', 'cdist')}
                    push(heap, (cdist, {_morton_expr(k, width, 'p')}, tb, cref))
                else:
                    e = cref >> 1
{entry_loads}
                    cdist = 0
{point_dist}
                    push(heap, (cdist, {_morton_expr(k, width, 'e')}, tb, cref))
                tb += 1
        else:
            e = ref >> 1
            vref = entries[e + {k}]
            out.append(({out_tuple}, values[vref]))
            produced += 1
            if produced >= n:
                return out
    return out
"""


def _unpack_prefix_lines(k: int, off: str, pad: str) -> str:
    """``p0 = words[off + 2]; ...`` prefix loads at indent ``pad``."""
    return "\n".join(
        f"{pad}p{d} = words[{off} + {2 + d}]" for d in range(k)
    )


# ---------------------------------------------------------------------------
# The Specialization bundle and its factory
# ---------------------------------------------------------------------------


class Specialization:
    """The per-(k, width) bundle of generated hot-path functions.

    Self-contained: holds only closures over the byte tables plus the
    shape constants, so a bundle keeps working after the registry evicts
    its cache slot (live trees hold strong references).
    """

    __slots__ = (
        "k",
        "width",
        "full",
        "check_key",
        "hc_address",
        "interleave",
        "deinterleave",
        "zkey",
        "find_entry",
        "put",
        "arena_find",
        "arena_put",
        "arena_remove",
        "arena_knn",
        "range_scan_plain",
        "range_scan_instrumented",
        "get_many_plain",
        "get_many_instrumented",
        "arena_range_scan_plain",
        "arena_range_scan_instrumented",
        "arena_get_many_plain",
        "arena_get_many_instrumented",
        "source",
    )

    def __init__(self, k: int, width: int) -> None:
        self.k = k
        self.width = width
        self.full = (1 << k) - 1
        source = "\n".join(
            [
                _emit_check_key(k, width),
                _emit_point_helpers(k, width),
                _emit_find_entry(k),
                _emit_put(k, width),
                _emit_arena_find(k),
                _emit_arena_put(k, width),
                _emit_range_scan(k, instr=False),
                _emit_range_scan(k, instr=True),
                _emit_get_many(k, instr=False),
                _emit_get_many(k, instr=True),
                _emit_arena_range_scan(k, instr=False),
                _emit_arena_range_scan(k, instr=True),
                _emit_arena_get_many(k, instr=False),
                _emit_arena_get_many(k, instr=True),
                _emit_arena_remove(k),
                _emit_arena_knn(k, width),
            ]
        )
        self.source = source
        namespace: dict = {
            "Node": Node,
            "Entry": Entry,
            "bisect_left": bisect_left,
            "_probes": _probes,
            "_st": spread_table(k),
            "_prepare": _batch_prepare,
            "_heappush": heapq.heappush,
            "_heappop": heapq.heappop,
            "_miss": ARENA_REMOVE_MISS,
            "_pcw": PLAN_CACHE_WINDOW,
            "_pcg": PLAN_CACHE_GET_MANY,
            "_plan_invalidated": _plan_invalidated,
            # One C call reads k (or k+1) consecutive slab words as a
            # ready tuple; the slabs are native 64-bit arrays so "=Q"
            # matches the array('Q') item layout exactly.
            "_ukey": Struct(f"={k}Q").unpack_from,
        }
        for j, (_in, table, _out) in enumerate(compact_plan(k, width)):
            namespace[f"_ct{j}"] = table
        code = compile(source, f"<specialize k={k} width={width}>", "exec")
        exec(code, namespace)
        self.check_key = namespace["check_key"]
        self.hc_address = namespace["hc_address"]
        self.interleave = namespace["interleave"]
        self.deinterleave = namespace["deinterleave"]
        self.zkey = namespace["zkey"]
        self.find_entry = namespace["find_entry"]
        self.put = namespace["put"]
        self.arena_find = namespace["arena_find"]
        self.arena_put = namespace["arena_put"]
        self.arena_remove = namespace["arena_remove"]
        self.arena_knn = namespace["arena_knn"]
        self.range_scan_plain = namespace["range_scan_plain"]
        self.range_scan_instrumented = namespace["range_scan_instrumented"]
        self.get_many_plain = namespace["get_many_plain"]
        self.get_many_instrumented = namespace["get_many_instrumented"]
        self.arena_range_scan_plain = namespace["arena_range_scan_plain"]
        self.arena_range_scan_instrumented = namespace[
            "arena_range_scan_instrumented"
        ]
        self.arena_get_many_plain = namespace["arena_get_many_plain"]
        self.arena_get_many_instrumented = namespace[
            "arena_get_many_instrumented"
        ]

    def __repr__(self) -> str:
        return f"Specialization(k={self.k}, width={self.width})"


def _batch_prepare(tree: Any, keys: Any, want_codes: bool):
    """Late-bound bridge to :func:`repro.core.batch._prepare` (the batch
    module imports nothing from here, so the import is cycle-free but
    deferred to avoid import-order surprises)."""
    global _batch_prepare
    from repro.core.batch import _prepare

    _batch_prepare = _prepare
    return _prepare(tree, keys, want_codes)


# ---------------------------------------------------------------------------
# Bounded LRU registry
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()
_REGISTRY: "OrderedDict[Tuple[int, int], Specialization]" = OrderedDict()
_CAP = 64


def get_spec(k: int, width: int) -> Optional[Specialization]:
    """The cached specialization for ``(k, width)``, building (and
    caching, LRU-bounded) on first use.

    Returns None for shapes outside the specializable range
    (``k > MAX_SPECIALIZED_DIMS``); callers then keep the generic
    engines.
    """
    if k < 1:
        raise ValueError(f"dims must be >= 1, got {k}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if k > MAX_SPECIALIZED_DIMS:
        return None
    key = (k, width)
    with _LOCK:
        spec = _REGISTRY.get(key)
        if spec is not None:
            _REGISTRY.move_to_end(key)
            return spec
    built = Specialization(k, width)
    with _LOCK:
        if _CAP == 0:
            # Caching disabled: hand the fresh build straight back.
            return built
        spec = _REGISTRY.get(key)
        if spec is not None:
            # Raced with another builder; keep the first.
            _REGISTRY.move_to_end(key)
            return spec
        _REGISTRY[key] = built
        while len(_REGISTRY) > _CAP:
            _REGISTRY.popitem(last=False)
    return built


def registry_size() -> int:
    """Number of currently cached specializations."""
    with _LOCK:
        return len(_REGISTRY)


def registry_cap() -> int:
    """Maximum number of cached specializations."""
    return _CAP


def set_registry_cap(cap: int) -> None:
    """Resize the registry (evicting LRU entries if shrinking).

    A cap of 0 disables caching entirely: the registry is emptied and
    :func:`get_spec` builds specializations on demand without retaining
    them.  Negative caps are rejected.
    """
    global _CAP
    if cap < 0:
        raise ValueError(f"registry cap must be >= 0, got {cap}")
    with _LOCK:
        _CAP = cap
        while len(_REGISTRY) > _CAP:
            _REGISTRY.popitem(last=False)


def clear_registry() -> None:
    """Drop every cached specialization (live trees keep theirs)."""
    with _LOCK:
        _REGISTRY.clear()
