"""Tree statistics backing the paper's space analysis (Sections 3.4, 4.3.5,
Table 3).

:func:`collect_stats` walks a PH-tree once and gathers the quantities the
paper reasons about: node count, entry-to-node ratio ``r_e/n``, HC vs LHC
prevalence, depth, prefix-sharing savings and the exact serialised size of
every node under the paper's bit-stream layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.hypercube import hc_bits, lhc_bits
from repro.core.node import Node
from repro.core.phtree import PHTree

__all__ = ["TreeStats", "collect_stats", "node_serialized_bits"]

# Fixed per-node header in the serialised stream: post_len and infix_len,
# eight bits each (w <= 64 fits comfortably), plus the HC/LHC flag.
NODE_HEADER_BITS = 8 + 8 + 1


def node_serialized_bits(node: Node, k: int, value_bits: int = 0) -> int:
    """Exact size in bits of one node's serialised image.

    Header + infix (``infix_len * k`` bits, Section 3.4 prefix sharing) +
    the slot table in whichever representation the node currently uses.
    """
    n_sub, n_post = node.slot_counts()
    payload = node.postfix_payload_bits(k, value_bits)
    if node.container.is_hc:
        table = hc_bits(k, n_sub, n_post, payload)
    else:
        table = lhc_bits(k, n_sub, n_post, payload)
    return NODE_HEADER_BITS + node.infix_len * k + table


@dataclass
class TreeStats:
    """Aggregate statistics of one PH-tree."""

    n_entries: int = 0
    n_nodes: int = 0
    n_hc_nodes: int = 0
    n_lhc_nodes: int = 0
    max_depth: int = 0
    total_infix_bits: int = 0
    total_serialized_bits: int = 0
    depth_histogram: Dict[int, int] = field(default_factory=dict)
    node_size_bits: List[int] = field(default_factory=list)

    @property
    def entry_to_node_ratio(self) -> float:
        """The paper's ``r_e/n = n / n_node`` (Section 3.4)."""
        if self.n_nodes == 0:
            return 0.0
        return self.n_entries / self.n_nodes

    @property
    def total_serialized_bytes(self) -> int:
        """Sum of per-node byte images (each node rounded up separately,
        as nodes are serialised individually)."""
        return sum((bits + 7) // 8 for bits in self.node_size_bits)

    @property
    def serialized_bytes_per_entry(self) -> float:
        """Serialised bytes divided by entry count."""
        if self.n_entries == 0:
            return 0.0
        return self.total_serialized_bytes / self.n_entries

    @property
    def hc_fraction(self) -> float:
        """Fraction of nodes using the HC representation."""
        if self.n_nodes == 0:
            return 0.0
        return self.n_hc_nodes / self.n_nodes


def collect_stats(tree: PHTree, value_bits: int = 0) -> TreeStats:
    """Walk ``tree`` and compute its :class:`TreeStats`.

    ``value_bits`` sets how many bits each entry's value occupies in the
    serialised image (0 for set semantics, 32 for a JVM value reference).
    """
    stats = TreeStats(n_entries=len(tree))
    root = tree.root
    if root is None:
        return stats
    k = tree.dims
    stack = [(root, 1)]
    while stack:
        node, depth = stack.pop()
        stats.n_nodes += 1
        if node.container.is_hc:
            stats.n_hc_nodes += 1
        else:
            stats.n_lhc_nodes += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        stats.depth_histogram[depth] = (
            stats.depth_histogram.get(depth, 0) + 1
        )
        stats.total_infix_bits += node.infix_len * k
        bits = node_serialized_bits(node, k, value_bits)
        stats.node_size_bits.append(bits)
        stats.total_serialized_bits += bits
        for _, slot in node.items():
            if isinstance(slot, Node):
                stack.append((slot, depth + 1))
    return stats
