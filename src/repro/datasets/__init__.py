"""Datasets of the paper's evaluation (Section 4.2).

- :func:`repro.datasets.cube.generate_cube` -- the CUBE dataset: uniform
  points in [0,1)^k.
- :func:`repro.datasets.cluster.generate_cluster` -- the CLUSTER dataset: a
  line of evenly spaced tiny clusters along the x-axis, offset 0.5 (or 0.4,
  Section 4.3.6) in all other dimensions.
- :func:`repro.datasets.tiger.generate_tiger` -- the substitute for the
  TIGER/Line 2010 dataset: synthetic county poly-lines over the continental
  US bounding box (the real 18.4M-point census extract is not available
  offline; see DESIGN.md for the substitution rationale).

All generators are deterministic given a seed.
"""

from repro.datasets.cluster import generate_cluster
from repro.datasets.cube import generate_cube
from repro.datasets.rng import dedupe_points, make_rng
from repro.datasets.tiger import generate_tiger

__all__ = [
    "dedupe_points",
    "generate_cluster",
    "generate_cube",
    "generate_tiger",
    "make_dataset",
    "make_rng",
]


def make_dataset(name, n, dims, seed=0):
    """Dataset factory keyed by the paper's names.

    ``name`` is one of ``"CUBE"``, ``"CLUSTER"`` (offset 0.5),
    ``"CLUSTER0.4"``, ``"CLUSTER0.5"`` or ``"TIGER"`` (dims forced to 2).
    """
    if name == "CUBE":
        return generate_cube(n, dims, seed=seed)
    if name in ("CLUSTER", "CLUSTER0.5"):
        return generate_cluster(n, dims, offset=0.5, seed=seed)
    if name == "CLUSTER0.4":
        return generate_cluster(n, dims, offset=0.4, seed=seed)
    if name == "TIGER":
        if dims != 2:
            raise ValueError("the TIGER dataset is two-dimensional")
        return generate_tiger(n, seed=seed)
    raise ValueError(
        f"unknown dataset {name!r}; one of CUBE, CLUSTER, CLUSTER0.4, "
        f"CLUSTER0.5, TIGER"
    )
