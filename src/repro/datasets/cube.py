"""The CUBE dataset (paper Section 4.2, Figure 6a).

Up to 10^8 points distributed uniformly at random in ``[0.0, 1.0)``,
independently in every dimension, as 64-bit doubles.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.datasets.rng import make_rng

__all__ = ["generate_cube"]

Point = Tuple[float, ...]


def generate_cube(n: int, dims: int, seed: int = 0) -> List[Point]:
    """Generate ``n`` uniform points in ``[0, 1)**dims``.

    >>> pts = generate_cube(5, 3, seed=1)
    >>> len(pts), len(pts[0])
    (5, 3)
    >>> all(0.0 <= v < 1.0 for p in pts for v in p)
    True
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    rng = make_rng(seed)
    uniform = rng.random
    return [
        tuple(uniform() for _ in range(dims)) for _ in range(n)
    ]
