"""Deterministic random-number helpers for dataset generation.

The paper notes "all points are generated randomly, however all tests use
the same set of randomly generated data" (Section 4.2).  Every generator in
this package therefore derives its randomness from an explicit seed so that
any experiment can be reproduced bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

__all__ = ["dedupe_points", "make_rng", "stable_subseed"]

Point = Tuple[float, ...]


def make_rng(seed: int) -> random.Random:
    """A dedicated :class:`random.Random` for one generator run."""
    return random.Random(seed)


def stable_subseed(seed: int, *parts: object) -> int:
    """Derive a child seed from ``seed`` and arbitrary labels.

    Independent of ``PYTHONHASHSEED`` (uses the repr of the parts, not
    ``hash``), so dataset streams remain reproducible across processes.
    """
    text = f"{seed}|" + "|".join(repr(p) for p in parts)
    value = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (1 << 64)
    return value


def dedupe_points(points: Iterable[Point]) -> List[Point]:
    """Drop duplicate points, preserving first-seen order.

    Mirrors the paper's TIGER preprocessing ("we removed all duplicates",
    Section 4.2).
    """
    seen = set()
    unique = []
    for point in points:
        if point not in seen:
            seen.add(point)
            unique.append(point)
    return unique
