"""Synthetic substitute for the TIGER/Line 2010 KML dataset (Section 4.2).

The paper extracts 18.4 million unique 2D points from the US Census
Bureau's TIGER/Line poly-lines of mainland-USA counties.  That dataset is
not redistributable inside this offline reproduction, so this module
generates a synthetic stand-in that preserves the three characteristics the
paper's analysis relies on:

1. **Strong spatial skew** -- points concentrate along poly-lines (roads,
   boundaries) whose density varies by "county"; large empty areas remain.
2. **Fixed-exponent coordinate range** -- coordinates lie in the TIGER
   bounding box (about -125 <= x <= -65, 24 <= y <= 50), where doubles of
   the same sign share exponents over long runs, enabling the deep prefix
   sharing that makes the PH-tree shine on this dataset.
3. **County-ordered loading** -- points are emitted county after county,
   "where different counties have very different data distribution
   properties" (Section 4.3.1), which is what made the kD-trees' loading
   performance irregular.

Duplicates are removed, as in the paper's preprocessing.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.datasets.rng import make_rng, stable_subseed

__all__ = ["TIGER_BBOX", "generate_tiger"]

Point = Tuple[float, float]

#: Mainland-USA bounding box of the paper's extract (Section 4.2).
TIGER_BBOX = (-125.0, -65.0, 24.0, 50.0)

# Grid of synthetic "counties": loosely matches the ~3k counties of the
# real dataset in spirit; scaled down so small generations still span
# several counties.
_GRID_COLS = 24
_GRID_ROWS = 10


def generate_tiger(
    n: int,
    seed: int = 0,
    grid_cols: int = _GRID_COLS,
    grid_rows: int = _GRID_ROWS,
) -> List[Point]:
    """Generate ``n`` unique synthetic TIGER-like 2D points.

    Counties are cells of a ``grid_cols x grid_rows`` grid over the TIGER
    bounding box.  Each county receives a log-normal density weight and a
    county-specific vertex spacing; its points are sampled along random
    poly-lines (random-walk segments clamped to the county).  Points are
    returned county by county.

    >>> pts = generate_tiger(100, seed=3)
    >>> len(pts)
    100
    >>> all(-125 <= x <= -65 and 24 <= y <= 50 for x, y in pts)
    True
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    x_min, x_max, y_min, y_max = TIGER_BBOX
    cell_w = (x_max - x_min) / grid_cols
    cell_h = (y_max - y_min) / grid_rows
    n_cells = grid_cols * grid_rows

    # County density weights: log-normal, like real population/road skew.
    weight_rng = make_rng(stable_subseed(seed, "weights"))
    weights = [
        math.exp(weight_rng.gauss(0.0, 1.2)) for _ in range(n_cells)
    ]
    total_weight = sum(weights)

    points: List[Point] = []
    seen = set()
    for cell in range(n_cells):
        if len(points) >= n:
            break
        quota = round(n * weights[cell] / total_weight)
        if cell == n_cells - 1:
            quota = n - len(points)  # absorb rounding drift
        quota = min(quota, n - len(points))
        if quota <= 0:
            continue
        col, row = cell % grid_cols, cell // grid_cols
        cx_min = x_min + col * cell_w
        cy_min = y_min + row * cell_h
        rng = make_rng(stable_subseed(seed, "county", cell))
        # County-specific poly-line characteristics.
        step = cell_w * rng.uniform(0.002, 0.02)
        segment_len = rng.randint(20, 200)
        x = cx_min + rng.random() * cell_w
        y = cy_min + rng.random() * cell_h
        remaining = quota
        steps_left = 0
        heading = 0.0
        while remaining > 0:
            if steps_left == 0:
                # Start a new poly-line somewhere in the county.
                x = cx_min + rng.random() * cell_w
                y = cy_min + rng.random() * cell_h
                heading = rng.uniform(0.0, 2.0 * math.pi)
                steps_left = segment_len
            heading += rng.gauss(0.0, 0.35)
            x += step * math.cos(heading)
            y += step * math.sin(heading)
            # Clamp to the county so counties stay distinct regions.
            x = min(max(x, cx_min), cx_min + cell_w)
            y = min(max(y, cy_min), cy_min + cell_h)
            steps_left -= 1
            point = (x, y)
            if point in seen:
                continue
            seen.add(point)
            points.append(point)
            remaining -= 1
    # Rounding may leave a small shortfall; top up with scattered points.
    topup = make_rng(stable_subseed(seed, "topup"))
    while len(points) < n:
        point = (
            x_min + topup.random() * (x_max - x_min),
            y_min + topup.random() * (y_max - y_min),
        )
        if point not in seen:
            seen.add(point)
            points.append(point)
    return points
