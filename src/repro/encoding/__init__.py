"""Bit-level encoding substrate used by the PH-tree and its baselines.

This package contains the low-level machinery the paper builds on:

- :mod:`repro.encoding.bits` -- word-level bit helpers (extraction, masks,
  common-prefix computations).
- :mod:`repro.encoding.ieee` -- the IEEE-754 ``double`` to sortable integer
  conversion of Section 3.3 of the paper, plus its inverse.
- :mod:`repro.encoding.interleave` -- Morton/z-order bit interleaving used by
  the critical-bit-tree baselines (references [13, 17] of the paper).
- :mod:`repro.encoding.bitbuffer` -- an append/insert/read bit-stream buffer
  implementing the "single bit-string per node" storage of reference [9].
"""

from repro.encoding.bits import (
    bit_at,
    common_prefix_len,
    high_bits_mask,
    low_bits_mask,
    most_significant_diff_bit,
    set_bit,
)
from repro.encoding.bitbuffer import BitBuffer
from repro.encoding.ieee import (
    decode_double,
    decode_point,
    encode_double,
    encode_point,
)
from repro.encoding.interleave import deinterleave, interleave

__all__ = [
    "BitBuffer",
    "bit_at",
    "common_prefix_len",
    "decode_double",
    "decode_point",
    "deinterleave",
    "encode_double",
    "encode_point",
    "high_bits_mask",
    "interleave",
    "low_bits_mask",
    "most_significant_diff_bit",
    "set_bit",
]
