"""An append/insert/read bit-stream buffer ("tightly packed" storage).

The PH-tree serialises most of the data of each node into a single bit-string
(paper Section 3.4, following reference [9], "Tightly Packed Tries").  This
module provides that bit-string as a first-class object: values occupy
exactly the number of bits they require, and the buffer supports the
operations the PH-tree node needs:

- ``append`` / ``read`` of fixed-width unsigned fields,
- ``insert`` and ``remove`` of bit ranges in the middle of the stream (the
  LHC shift-right on insert and shift-left on delete from Sections 3.6 and
  4.3.4),
- export to/import from ``bytes`` for persistence,
- an exact ``bit_length`` for the memory model.

Bit addressing is stream order: bit index 0 is the first bit written.  Fields
are stored MSB-first, matching the paper's figures where values are written
top-down from the first bit.
"""

from __future__ import annotations

__all__ = ["BitBuffer", "BitReader"]


class BitReader:
    """Random-access bit reads over an immutable ``bytes`` stream.

    Unlike :class:`BitBuffer` (whose integer backing makes every read cost
    O(stream length)), a reader extracts fields by slicing only the bytes
    that overlap the field -- O(field width) per read.  This is what makes
    querying a frozen, byte-packed PH-tree practical.

    >>> reader = BitReader(bytes([0b10110000]), 4)
    >>> reader.read(0, 4)
    11
    """

    __slots__ = ("_data", "_bit_length")

    def __init__(self, data: bytes, bit_length: int) -> None:
        if bit_length < 0 or bit_length > len(data) * 8:
            raise ValueError(
                f"bit_length {bit_length} inconsistent with "
                f"{len(data)} bytes"
            )
        self._data = data
        self._bit_length = bit_length

    @property
    def bit_length(self) -> int:
        """Number of addressable bits."""
        return self._bit_length

    def read(self, pos: int, n_bits: int) -> int:
        """Read the unsigned ``n_bits`` field starting at bit ``pos``."""
        if n_bits < 0:
            raise ValueError(f"field width must be non-negative: {n_bits}")
        if not 0 <= pos <= self._bit_length - n_bits:
            raise IndexError(
                f"cannot read [{pos}, {pos + n_bits}) from "
                f"{self._bit_length}-bit stream"
            )
        if n_bits == 0:
            return 0
        first = pos >> 3
        last = (pos + n_bits - 1) >> 3
        window = int.from_bytes(self._data[first:last + 1], "big")
        drop = 7 - ((pos + n_bits - 1) & 7)
        return (window >> drop) & ((1 << n_bits) - 1)

    def read_bit(self, pos: int) -> int:
        """Read a single bit."""
        return self.read(pos, 1)


class BitBuffer:
    """A growable bit-string supporting mid-stream insertion and removal.

    >>> buf = BitBuffer()
    >>> buf.append(0b0010, 4)
    >>> buf.read(0, 4)
    2
    >>> buf.insert(0, 0b1, 1)
    >>> buf.read(0, 5)
    18
    """

    __slots__ = ("_data", "_length")

    def __init__(self, data: int = 0, length: int = 0) -> None:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if data < 0 or (length < data.bit_length()):
            raise ValueError(
                f"data {data} does not fit into declared length {length}"
            )
        self._data = data
        self._length = length

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def bit_length(self) -> int:
        """Number of bits currently stored."""
        return self._length

    @property
    def byte_length(self) -> int:
        """Number of bytes needed to hold the stream (rounded up)."""
        return (self._length + 7) // 8

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitBuffer):
            return NotImplemented
        return self._length == other._length and self._data == other._data

    def __hash__(self) -> int:
        return hash((self._length, self._data))

    def __repr__(self) -> str:
        if self._length == 0:
            return "BitBuffer('')"
        return f"BitBuffer('{format(self._data, f'0{self._length}b')}')"

    # -- writing -----------------------------------------------------------

    def append(self, value: int, n_bits: int) -> None:
        """Append ``value`` as an unsigned ``n_bits``-wide field."""
        self._check_field(value, n_bits)
        self._data = (self._data << n_bits) | value
        self._length += n_bits

    def insert(self, pos: int, value: int, n_bits: int) -> None:
        """Insert ``value`` as an ``n_bits`` field starting at bit ``pos``.

        All bits at ``pos`` and beyond shift right (towards the end of the
        stream) by ``n_bits`` -- this is the LHC insert shift.
        """
        self._check_field(value, n_bits)
        if not 0 <= pos <= self._length:
            raise IndexError(
                f"insert position {pos} outside stream of {self._length} bits"
            )
        tail_len = self._length - pos
        tail = self._data & ((1 << tail_len) - 1)
        head = self._data >> tail_len
        self._data = (((head << n_bits) | value) << tail_len) | tail
        self._length += n_bits

    def remove(self, pos: int, n_bits: int) -> int:
        """Remove ``n_bits`` starting at ``pos`` and return them as an int.

        All later bits shift left (towards the start) -- the LHC delete
        shift.
        """
        if n_bits < 0:
            raise ValueError(f"field width must be non-negative: {n_bits}")
        if not 0 <= pos <= self._length - n_bits:
            raise IndexError(
                f"cannot remove [{pos}, {pos + n_bits}) from "
                f"{self._length}-bit stream"
            )
        tail_len = self._length - pos - n_bits
        tail = self._data & ((1 << tail_len) - 1)
        removed = (self._data >> tail_len) & ((1 << n_bits) - 1)
        head = self._data >> (tail_len + n_bits)
        self._data = (head << tail_len) | tail
        self._length -= n_bits
        return removed

    def overwrite(self, pos: int, value: int, n_bits: int) -> None:
        """Replace the ``n_bits`` field at ``pos`` in place."""
        self._check_field(value, n_bits)
        if not 0 <= pos <= self._length - n_bits:
            raise IndexError(
                f"cannot overwrite [{pos}, {pos + n_bits}) in "
                f"{self._length}-bit stream"
            )
        shift = self._length - pos - n_bits
        mask = ((1 << n_bits) - 1) << shift
        self._data = (self._data & ~mask) | (value << shift)

    def clear(self) -> None:
        """Reset the buffer to the empty stream."""
        self._data = 0
        self._length = 0

    # -- reading -----------------------------------------------------------

    def read(self, pos: int, n_bits: int) -> int:
        """Read the unsigned ``n_bits`` field starting at bit ``pos``."""
        if n_bits < 0:
            raise ValueError(f"field width must be non-negative: {n_bits}")
        if not 0 <= pos <= self._length - n_bits:
            raise IndexError(
                f"cannot read [{pos}, {pos + n_bits}) from "
                f"{self._length}-bit stream"
            )
        shift = self._length - pos - n_bits
        return (self._data >> shift) & ((1 << n_bits) - 1)

    def read_bit(self, pos: int) -> int:
        """Read a single bit at stream position ``pos``."""
        return self.read(pos, 1)

    # -- conversion --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the stream MSB-first, zero-padded to a byte boundary."""
        if self._length == 0:
            return b""
        pad = (8 - self._length % 8) % 8
        return (self._data << pad).to_bytes(self.byte_length, "big")

    @classmethod
    def from_bytes(cls, raw: bytes, bit_length: int) -> "BitBuffer":
        """Inverse of :func:`to_bytes`; ``bit_length`` strips the padding."""
        if bit_length < 0 or bit_length > len(raw) * 8:
            raise ValueError(
                f"bit_length {bit_length} inconsistent with {len(raw)} bytes"
            )
        pad = len(raw) * 8 - bit_length
        data = int.from_bytes(raw, "big") >> pad
        return cls(data, bit_length)

    def to_binary_string(self) -> str:
        """Render the stream as a '0'/'1' string in stream order."""
        if self._length == 0:
            return ""
        return format(self._data, f"0{self._length}b")

    def copy(self) -> "BitBuffer":
        """Return an independent copy of this buffer."""
        return BitBuffer(self._data, self._length)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _check_field(value: int, n_bits: int) -> None:
        if n_bits < 0:
            raise ValueError(f"field width must be non-negative: {n_bits}")
        if value < 0:
            raise ValueError(f"fields are unsigned, got {value}")
        if value >> n_bits:
            raise ValueError(f"value {value} does not fit into {n_bits} bits")
