"""Word-level bit manipulation helpers.

All functions in this module operate on arbitrary-precision Python integers
interpreted as fixed-width unsigned words.  Bit positions follow the
convention used throughout this code base (and the original PH-tree Java
implementation): *position* ``p`` refers to the bit with value ``2**p``, i.e.
position 0 is the least significant bit and position ``w - 1`` is the most
significant bit of a ``w``-bit value.

The paper's *bit-depth* ``z_b`` (1-based, counting from the most significant
bit; Section 3.1) relates to our positions via ``pos = w - z_b``.
"""

from __future__ import annotations

__all__ = [
    "bit_at",
    "bit_depth_to_pos",
    "clear_bit",
    "common_prefix_len",
    "high_bits_mask",
    "low_bits_mask",
    "most_significant_diff_bit",
    "pos_to_bit_depth",
    "set_bit",
    "to_binary_string",
]


def bit_at(value: int, pos: int) -> int:
    """Return the bit of ``value`` at position ``pos`` (0 or 1).

    >>> bit_at(0b0100, 2)
    1
    >>> bit_at(0b0100, 1)
    0
    """
    if pos < 0:
        raise ValueError(f"bit position must be non-negative, got {pos}")
    return (value >> pos) & 1


def set_bit(value: int, pos: int) -> int:
    """Return ``value`` with the bit at position ``pos`` set to 1."""
    if pos < 0:
        raise ValueError(f"bit position must be non-negative, got {pos}")
    return value | (1 << pos)


def clear_bit(value: int, pos: int) -> int:
    """Return ``value`` with the bit at position ``pos`` cleared to 0."""
    if pos < 0:
        raise ValueError(f"bit position must be non-negative, got {pos}")
    return value & ~(1 << pos)


def low_bits_mask(n_bits: int) -> int:
    """Return a mask with the ``n_bits`` least significant bits set.

    >>> bin(low_bits_mask(3))
    '0b111'
    >>> low_bits_mask(0)
    0
    """
    if n_bits < 0:
        raise ValueError(f"mask width must be non-negative, got {n_bits}")
    return (1 << n_bits) - 1


def high_bits_mask(n_bits: int, width: int) -> int:
    """Return a ``width``-bit mask with the ``n_bits`` *most* significant
    bits set.

    >>> bin(high_bits_mask(2, 8))
    '0b11000000'
    """
    if not 0 <= n_bits <= width:
        raise ValueError(
            f"need 0 <= n_bits <= width, got n_bits={n_bits} width={width}"
        )
    return low_bits_mask(n_bits) << (width - n_bits)


def most_significant_diff_bit(a: int, b: int) -> int:
    """Return the position of the most significant bit where ``a`` and ``b``
    differ.

    Raises :class:`ValueError` when ``a == b`` since no differing bit exists.

    >>> most_significant_diff_bit(0b1000, 0b1010)
    1
    """
    diff = a ^ b
    if diff == 0:
        raise ValueError("values are equal; no differing bit")
    return diff.bit_length() - 1


def common_prefix_len(a: int, b: int, width: int) -> int:
    """Return the number of leading bits (from the most significant bit of a
    ``width``-bit word) that ``a`` and ``b`` share.

    >>> common_prefix_len(0b1100, 0b1101, 4)
    3
    >>> common_prefix_len(0, 0, 4)
    4
    """
    diff = a ^ b
    if diff == 0:
        return width
    msb = diff.bit_length() - 1
    if msb >= width:
        raise ValueError(
            f"values do not fit the declared width {width}: diff msb {msb}"
        )
    return width - 1 - msb


def pos_to_bit_depth(pos: int, width: int) -> int:
    """Convert a 0-based LSB position into the paper's 1-based bit-depth.

    >>> pos_to_bit_depth(63, 64)
    1
    >>> pos_to_bit_depth(0, 64)
    64
    """
    if not 0 <= pos < width:
        raise ValueError(f"need 0 <= pos < width, got pos={pos} width={width}")
    return width - pos


def bit_depth_to_pos(bit_depth: int, width: int) -> int:
    """Convert the paper's 1-based bit-depth into a 0-based LSB position."""
    if not 1 <= bit_depth <= width:
        raise ValueError(
            f"need 1 <= bit_depth <= width, got {bit_depth} width={width}"
        )
    return width - bit_depth


def to_binary_string(value: int, width: int) -> str:
    """Render ``value`` as a fixed-width binary string (MSB first).

    >>> to_binary_string(2, 4)
    '0010'
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >> width:
        raise ValueError(f"value {value} does not fit into {width} bits")
    return format(value, f"0{width}b")
