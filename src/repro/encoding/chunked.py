"""Chunked bit-stream buffer (paper Outlook, item 1).

The paper: "currently all node-data is stored in a single bit-string
which makes insert and delete operations slow for k > 8.  Splitting these
bit-strings into sizeable chunks would improve update performance.  At
the same time, the chunk size could be chosen so that a chunk fits on a
disk-page."

:class:`ChunkedBitBuffer` implements that design: the stream is a list of
bounded chunks, so a mid-stream insert shifts only the bits of one chunk
(plus an occasional chunk split) instead of the whole stream.  The class
mirrors the :class:`~repro.encoding.bitbuffer.BitBuffer` interface, and
``benchmarks/bench_ablation_chunks.py`` measures the update-cost
difference the paper predicts.
"""

from __future__ import annotations

from typing import List

from repro.encoding.bitbuffer import BitBuffer

__all__ = ["ChunkedBitBuffer"]

#: Default chunk capacity: 4096 bytes, a common disk-page size (the
#: paper's suggestion).
DEFAULT_CHUNK_BITS = 4096 * 8


class ChunkedBitBuffer:
    """A bit stream stored as a sequence of bounded chunks.

    Functionally equivalent to :class:`BitBuffer`; inserts and removals
    touch only one chunk (O(chunk) instead of O(stream)).

    >>> buf = ChunkedBitBuffer(chunk_bits=16)
    >>> for i in range(10):
    ...     buf.append(i % 4, 2)
    >>> buf.read(0, 4)
    1
    >>> buf.bit_length
    20
    """

    __slots__ = ("_chunks", "_chunk_bits")

    def __init__(self, chunk_bits: int = DEFAULT_CHUNK_BITS) -> None:
        if chunk_bits < 8:
            raise ValueError(
                f"chunk capacity must be >= 8 bits, got {chunk_bits}"
            )
        self._chunk_bits = chunk_bits
        self._chunks: List[BitBuffer] = [BitBuffer()]

    # -- introspection -------------------------------------------------------

    @property
    def bit_length(self) -> int:
        """Total number of bits stored."""
        return sum(c.bit_length for c in self._chunks)

    def __len__(self) -> int:
        return self.bit_length

    @property
    def chunk_count(self) -> int:
        """Number of chunks currently in use."""
        return len(self._chunks)

    @property
    def chunk_bits(self) -> int:
        """Configured chunk capacity in bits."""
        return self._chunk_bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChunkedBitBuffer):
            return NotImplemented
        return self.to_binary_string() == other.to_binary_string()

    def __repr__(self) -> str:
        return (
            f"ChunkedBitBuffer(bits={self.bit_length}, "
            f"chunks={len(self._chunks)})"
        )

    # -- locating ---------------------------------------------------------------

    def _locate(self, pos: int) -> "tuple[int, int]":
        """Map a global bit position to (chunk index, offset in chunk).

        A position equal to the total length maps past the last chunk's
        end (for appends/inserts at the tail).
        """
        remaining = pos
        last = len(self._chunks) - 1
        for index, chunk in enumerate(self._chunks):
            if remaining < chunk.bit_length:
                return index, remaining
            if remaining == chunk.bit_length and index == last:
                # End of stream: valid only for appends/inserts.
                return index, remaining
            # Position sits at or past this chunk's end: move on (a
            # boundary position belongs to the start of the next chunk).
            remaining -= chunk.bit_length
        return last, self._chunks[last].bit_length

    def _split_if_full(self, index: int) -> None:
        chunk = self._chunks[index]
        if chunk.bit_length <= self._chunk_bits:
            return
        half = chunk.bit_length // 2
        right_bits = chunk.bit_length - half
        right_value = chunk.read(half, right_bits)
        right = BitBuffer(right_value, right_bits)
        left_value = chunk.read(0, half)
        self._chunks[index] = BitBuffer(left_value, half)
        self._chunks.insert(index + 1, right)

    # -- writing -------------------------------------------------------------------

    def append(self, value: int, n_bits: int) -> None:
        """Append a field at the end of the stream."""
        last = self._chunks[-1]
        last.append(value, n_bits)
        self._split_if_full(len(self._chunks) - 1)

    def insert(self, pos: int, value: int, n_bits: int) -> None:
        """Insert a field at global bit position ``pos``.

        Only the chunk containing ``pos`` is shifted -- the operation the
        paper's chunking proposal accelerates.
        """
        if not 0 <= pos <= self.bit_length:
            raise IndexError(
                f"insert position {pos} outside {self.bit_length}-bit "
                f"stream"
            )
        index, offset = self._locate(pos)
        self._chunks[index].insert(offset, value, n_bits)
        self._split_if_full(index)

    def remove(self, pos: int, n_bits: int) -> int:
        """Remove a field starting at global position ``pos``.

        May span chunk boundaries; each affected chunk shifts only its
        own bits.
        """
        if n_bits < 0:
            raise ValueError(f"field width must be non-negative: {n_bits}")
        if not 0 <= pos <= self.bit_length - n_bits:
            raise IndexError(
                f"cannot remove [{pos}, {pos + n_bits}) from "
                f"{self.bit_length}-bit stream"
            )
        removed = 0
        taken = 0
        while taken < n_bits:
            index, offset = self._locate(pos)
            chunk = self._chunks[index]
            take = min(n_bits - taken, chunk.bit_length - offset)
            removed = (removed << take) | chunk.remove(offset, take)
            taken += take
            if chunk.bit_length == 0 and len(self._chunks) > 1:
                self._chunks.pop(index)
        return removed

    # -- reading ---------------------------------------------------------------------

    def read(self, pos: int, n_bits: int) -> int:
        """Read a field starting at global position ``pos``."""
        if n_bits < 0:
            raise ValueError(f"field width must be non-negative: {n_bits}")
        if not 0 <= pos <= self.bit_length - n_bits:
            raise IndexError(
                f"cannot read [{pos}, {pos + n_bits}) from "
                f"{self.bit_length}-bit stream"
            )
        result = 0
        taken = 0
        while taken < n_bits:
            index, offset = self._locate(pos + taken)
            chunk = self._chunks[index]
            take = min(n_bits - taken, chunk.bit_length - offset)
            result = (result << take) | chunk.read(offset, take)
            taken += take
        return result

    # -- conversion --------------------------------------------------------------------

    def to_binary_string(self) -> str:
        """The whole stream as a '0'/'1' string."""
        return "".join(c.to_binary_string() for c in self._chunks)

    def to_bitbuffer(self) -> BitBuffer:
        """Flatten into a monolithic :class:`BitBuffer`."""
        flat = BitBuffer()
        for chunk in self._chunks:
            if chunk.bit_length:
                flat.append(chunk.read(0, chunk.bit_length),
                            chunk.bit_length)
        return flat
