"""IEEE-754 ``double`` to sortable unsigned integer conversion (paper §3.3).

The PH-tree only understands bit-strings which it sorts as unsigned
integers.  To store floating point values the paper applies a conversion
``c(double) -> long`` with the *sortability* property::

    c(f1) > c(f2)  <=>  f1 > f2        (with -0.0 folded into 0.0)

The paper's Java reference implementation is::

    long c(double value) {
        if (value == -0.0) { value = 0.0; }
        if (value < 0.0) {
            long lb = Double.doubleToRawLongBits(value);
            return (~lb) | (1L << 63);
        }
        return Double.doubleToRawLongBits(value);
    }

Note that the Java version maps negative values into the *upper* half of the
unsigned 64-bit range when interpreted as unsigned (because it sets bit 63
after complementing), which keeps ordering only when longs are compared as
*signed* values.  The PH-tree compares bit-strings as unsigned integers, so
this module uses the standard unsigned-sortable variant of the same
transformation:

- non-negative doubles: raw bits with the sign bit set
  (``raw | 2**63``), mapping them to the upper half,
- negative doubles: bitwise complement of the raw bits (``~raw``), mapping
  them to the lower half in reversed (i.e. correct ascending) order.

This is a strict order isomorphism from doubles (sans NaN, with -0.0 folded)
onto a subset of ``[0, 2**64)`` and is exactly what the paper's conversion
achieves for signed comparison.  Both variants are exposed; the signed Java
variant is provided for the Table 4 bit-pattern reproduction.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable, Sequence, Tuple

__all__ = [
    "decode_double",
    "decode_point",
    "encode_double",
    "encode_point",
    "java_double_to_long_bits",
    "java_sortable_long",
    "raw_bits",
    "raw_bits_to_double",
]

_U64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def raw_bits(value: float) -> int:
    """Return the raw IEEE-754 binary64 bit pattern of ``value`` as an
    unsigned 64-bit integer (``Double.doubleToRawLongBits`` in Java,
    interpreted unsigned).
    """
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def raw_bits_to_double(bits: int) -> float:
    """Inverse of :func:`raw_bits`."""
    if not 0 <= bits <= _U64:
        raise ValueError(f"bit pattern out of 64-bit range: {bits}")
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def java_double_to_long_bits(value: float) -> int:
    """``Double.doubleToRawLongBits`` returning a *signed* Java long.

    Used to reproduce the exact integers in Table 4 of the paper.
    """
    bits = raw_bits(value)
    return bits - (1 << 64) if bits & _SIGN_BIT else bits


def java_sortable_long(value: float) -> int:
    """The paper's conversion function verbatim, returning a signed long.

    >>> java_sortable_long(0.5) == java_double_to_long_bits(0.5)
    True
    """
    if value == 0.0:
        # Folds -0.0 into +0.0 (Java: `value == -0.0` is true for both).
        value = 0.0
    if value < 0.0:
        lb = raw_bits(value)
        unsigned = ((~lb) & _U64) | _SIGN_BIT
        return unsigned - (1 << 64) if unsigned & _SIGN_BIT else unsigned
    return java_double_to_long_bits(value)


def encode_double(value: float) -> int:
    """Convert ``value`` into an unsigned 64-bit sortable integer.

    The result preserves ordering under unsigned integer comparison:
    ``encode_double(a) < encode_double(b)`` iff ``a < b`` (with ``-0.0``
    treated as ``0.0``).  NaN is rejected since it has no place in a total
    order.

    >>> encode_double(1.0) > encode_double(0.5) > encode_double(0.0)
    True
    >>> encode_double(-0.5) < encode_double(0.0)
    True
    >>> encode_double(-0.0) == encode_double(0.0)
    True
    """
    if math.isnan(value):
        raise ValueError("NaN cannot be stored in a PH-tree")
    if value == 0.0:
        value = 0.0
    bits = raw_bits(value)
    if value < 0.0:
        return (~bits) & _U64
    return bits | _SIGN_BIT


def decode_double(code: int) -> float:
    """Inverse of :func:`encode_double`.

    >>> decode_double(encode_double(3.25))
    3.25
    >>> decode_double(encode_double(-1e-300))
    -1e-300
    """
    if not 0 <= code <= _U64:
        raise ValueError(f"encoded value out of 64-bit range: {code}")
    if code & _SIGN_BIT:
        return raw_bits_to_double(code & ~_SIGN_BIT)
    return raw_bits_to_double((~code) & _U64)


def encode_point(point: Iterable[float]) -> Tuple[int, ...]:
    """Encode every coordinate of a float point (see :func:`encode_double`).

    >>> encode_point([0.0, 1.0]) == (encode_double(0.0), encode_double(1.0))
    True
    """
    return tuple(encode_double(v) for v in point)


def decode_point(codes: Sequence[int]) -> Tuple[float, ...]:
    """Inverse of :func:`encode_point`."""
    return tuple(decode_double(c) for c in codes)
