"""Morton (z-order) bit interleaving.

The critical-bit-tree baselines of the paper (Section 4.1) store
k-dimensional entries by interleaving the ``k`` values of each entry into a
single bit-string in round-robin fashion, as proposed in references [13, 17].
The PH-tree itself does *not* interleave stored values (it keeps the k
bit-strings "in parallel", Section 3.2) but it interleaves one *bit layer* at
a time to form hypercube addresses; that per-layer operation lives in
:mod:`repro.core.node`.

The interleaved word layout is MSB-first round-robin: the most significant
bit of the result is the most significant bit of dimension 0, followed by the
most significant bit of dimension 1, etc.  This is the ordering that makes an
interleaved comparison equivalent to the PH-tree's hypercube-address
traversal order.

Both directions run on the shared byte lookup tables of
:mod:`repro.encoding.lut` (8 lookups per value instead of a per-bit
loop); :func:`interleave_naive` and :func:`deinterleave_naive` keep the
definitional per-bit implementations as test oracles, and the
per-(k, width) closures of :mod:`repro.core.specialize` unroll the same
table plans into straight-line code for the tree's hot paths.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.encoding.lut import compact_plan, spread_table

__all__ = [
    "deinterleave",
    "deinterleave_naive",
    "interleave",
    "interleave_naive",
    "spread",
]

# Back-compat alias: the byte spread table now lives in
# :mod:`repro.encoding.lut`, shared with the shard router and the
# specialization layer.
_spread_table = spread_table


def spread(value: int, k: int, width: int) -> int:
    """Spread a ``width``-bit value so bit ``i`` moves to ``i * k``.

    >>> bin(spread(0b111, 2, 3))
    '0b10101'
    """
    table = spread_table(k)
    result = 0
    for byte_index in range((width + 7) // 8):
        byte = (value >> (8 * byte_index)) & 0xFF
        if byte:
            result |= table[byte] << (8 * byte_index * k)
    return result


def interleave(values: Sequence[int], width: int) -> int:
    """Interleave ``k`` unsigned ``width``-bit values into one
    ``k * width``-bit Morton code.

    Uses byte-table bit spreading (8 lookups per value instead of a
    per-bit loop); :func:`interleave_naive` keeps the definitional
    implementation as a test oracle.

    >>> bin(interleave([0b11, 0b00], 2))
    '0b1010'
    >>> interleave([5], 8)
    5
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not values:
        raise ValueError("need at least one value to interleave")
    k = len(values)
    for i, v in enumerate(values):
        if v < 0 or v >> width:
            raise ValueError(
                f"value {v} at dimension {i} does not fit into {width} bits"
            )
    if k == 1:
        return values[0]
    code = 0
    shift = k - 1
    for v in values:
        if v:
            code |= spread(v, k, width) << shift
        shift -= 1
    return code


def interleave_naive(values: Sequence[int], width: int) -> int:
    """Definitional per-bit interleaving (the test oracle for
    :func:`interleave`).

    >>> interleave_naive([0b11, 0b00], 2) == interleave([0b11, 0b00], 2)
    True
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not values:
        raise ValueError("need at least one value to interleave")
    for i, v in enumerate(values):
        if v < 0 or v >> width:
            raise ValueError(
                f"value {v} at dimension {i} does not fit into {width} bits"
            )
    code = 0
    for pos in range(width - 1, -1, -1):
        for v in values:
            code = (code << 1) | ((v >> pos) & 1)
    return code


def deinterleave(code: int, k: int, width: int) -> Tuple[int, ...]:
    """Inverse of :func:`interleave`, via the byte compaction tables.

    Dimension ``d``'s bits sit at positions ``i * k + (k - 1 - d)`` of
    the code; shifting by ``k - 1 - d`` aligns them to stride-``k``
    offsets, which the precomputed :func:`~repro.encoding.lut.compact_plan`
    collects one byte at a time (8x fewer iterations than the per-bit
    oracle :func:`deinterleave_naive`).

    >>> deinterleave(0b1010, 2, 2)
    (3, 0)
    """
    if k <= 0:
        raise ValueError(f"dimension count must be positive, got {k}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if code < 0 or code >> (k * width):
        raise ValueError(
            f"code {code} does not fit into {k}x{width} interleaved bits"
        )
    if k == 1:
        return (code,)
    plan = compact_plan(k, width)
    values = []
    for d in range(k - 1, -1, -1):
        shifted = code >> d
        value = 0
        for in_shift, table, out_shift in plan:
            byte = (shifted >> in_shift) & 0xFF
            if byte:
                value |= table[byte] << out_shift
        values.append(value)
    return tuple(values)


def deinterleave_naive(code: int, k: int, width: int) -> Tuple[int, ...]:
    """Definitional per-bit de-interleaving (the test oracle for
    :func:`deinterleave`).

    >>> deinterleave_naive(0b1010, 2, 2)
    (3, 0)
    """
    if k <= 0:
        raise ValueError(f"dimension count must be positive, got {k}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if code < 0 or code >> (k * width):
        raise ValueError(
            f"code {code} does not fit into {k}x{width} interleaved bits"
        )
    values = [0] * k
    shift = k * width
    for pos in range(width - 1, -1, -1):
        for dim in range(k):
            shift -= 1
            values[dim] |= ((code >> shift) & 1) << pos
    return tuple(values)
