"""Byte-wise lookup tables for bit spreading and compaction.

Every Morton-code operation in the tree -- interleaving for the critbit
baselines and shard routing, the batch engine's z-order sort keys, the
kNN tiebreak codes, de-interleaving for the z-order utilities -- bottoms
out in one of two primitives:

- *spread*: move bit ``i`` of a value to position ``i * k`` (insert
  ``k - 1`` zero gaps between consecutive bits),
- *compact*: the inverse -- collect the bits at positions ``0, k, 2k,
  ...`` back into a contiguous value.

Doing either bit-by-bit costs ``width`` Python-level loop iterations per
value.  This module precomputes 256-entry byte tables so both become one
table lookup per *byte* (8x fewer iterations), shared process-wide:

- :func:`spread_table` -- ``table[b]`` is byte ``b`` spread with stride
  ``k`` (this is the table the batch z-sort keys and the
  :class:`~repro.parallel.router.ZShardRouter` shard keys share),
- :func:`compact_table` -- ``table[b]`` collects the bits of byte ``b``
  found at local positions ``phase, phase + k, phase + 2k, ...``.  The
  ``phase`` parameter handles byte boundaries that are not stride
  aligned: the byte at bit offset ``8 * i`` of a stride-``k`` bit string
  keeps its bits starting at local offset ``(-8 * i) % k``.

:func:`spread_plan` / :func:`compact_plan` bake the per-byte shifts for
a fixed ``(k, width)`` into tuples of ``(in_shift, table, out_shift)``
steps, which is the form the per-(k, width) specializations of
:mod:`repro.core.specialize` unroll into straight-line code.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

__all__ = [
    "compact_plan",
    "compact_table",
    "spread_plan",
    "spread_table",
]


@lru_cache(maxsize=128)
def spread_table(k: int) -> Tuple[int, ...]:
    """Byte lookup table: ``table[b]`` has the bits of ``b`` spread with
    ``k - 1`` zero gaps (bit ``i`` lands at position ``i * k``).

    >>> spread_table(2)[0b111]
    21
    """
    if k < 1:
        raise ValueError(f"stride k must be >= 1, got {k}")
    table = []
    for byte in range(256):
        spread_bits = 0
        for i in range(8):
            if byte & (1 << i):
                spread_bits |= 1 << (i * k)
        table.append(spread_bits)
    return tuple(table)


@lru_cache(maxsize=512)
def compact_table(k: int, phase: int = 0) -> Tuple[int, ...]:
    """Byte lookup table collecting the stride-``k`` bits of a byte.

    ``table[b]`` packs the bits of ``b`` at local positions ``phase,
    phase + k, phase + 2k, ...`` (ascending) into contiguous low bits.

    >>> compact_table(2)[0b010101]
    7
    >>> compact_table(2, phase=1)[0b101010]
    7
    """
    if k < 1:
        raise ValueError(f"stride k must be >= 1, got {k}")
    if not 0 <= phase < k:
        raise ValueError(f"phase must be in [0, {k}), got {phase}")
    table = []
    for byte in range(256):
        packed = 0
        out = 0
        pos = phase
        while pos < 8:
            packed |= ((byte >> pos) & 1) << out
            out += 1
            pos += k
        table.append(packed)
    return tuple(table)


@lru_cache(maxsize=256)
def spread_plan(
    k: int, width: int
) -> Tuple[Tuple[int, Tuple[int, ...], int], ...]:
    """Per-byte steps spreading a ``width``-bit value with stride ``k``.

    Each step is ``(in_shift, table, out_shift)``: the spread value is
    ``OR of table[(value >> in_shift) & 0xFF] << out_shift`` over all
    steps.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    table = spread_table(k)
    return tuple(
        (8 * i, table, 8 * i * k) for i in range((width + 7) // 8)
    )


@lru_cache(maxsize=256)
def compact_plan(
    k: int, width: int
) -> Tuple[Tuple[int, Tuple[int, ...], int], ...]:
    """Per-byte steps compacting stride-``k`` bits of a ``k * width``-bit
    string back into a ``width``-bit value.

    Each step is ``(in_shift, table, out_shift)``: the compacted value
    is ``OR of table[(bits >> in_shift) & 0xFF] << out_shift`` over all
    steps.  Byte ``i`` keeps its bits from local offset ``(-8i) % k``
    upward, and they land at output offset ``ceil(8i / k)``.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    steps = []
    for i in range((k * width + 7) // 8):
        phase = (-8 * i) % k
        if phase >= 8:
            # Stride so large the byte holds no stride-aligned bit.
            continue
        steps.append((8 * i, compact_table(k, phase), (8 * i + phase) // k))
    return tuple(steps)
