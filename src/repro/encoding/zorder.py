"""Z-order range arithmetic: BIGMIN/LITMAX (Tropf & Herzog 1981).

The paper notes that the CB trees' near-full-scan range queries are an
implementation limitation: "it is possible to provide more efficient
range queries" (§4.3.3).  The classic way is z-order skip-scanning: when
an ordered scan of Morton codes leaves the query box, BIGMIN computes the
*smallest* code greater than the current position that re-enters the box,
letting the scan skip the dead region entirely.

Definitions, for a box given by interleaved corner codes ``zmin``/``zmax``
(all in ``k * width``-bit Morton space):

- ``bigmin(zmin, zmax, zcode)``: smallest code ``> zcode`` whose
  de-interleaved point lies inside the box (None if no such code),
- ``litmax(zmin, zmax, zcode)``: largest code ``< zcode`` inside the box,
- ``z_in_box(code, zmin, zmax, k, width)``: per-dimension containment.

The bit-twiddling follows the standard algorithm: walk the interleaved
bits from the most significant; on a divergence between the current code
and the box, split the box at that bit using the LOAD operations, which
set/clear only the *same dimension's* lower bits.
"""

from __future__ import annotations

from typing import Optional

from repro.encoding.interleave import deinterleave

__all__ = ["bigmin", "litmax", "z_in_box"]


def _same_dim_lower_mask(position: int, k: int) -> int:
    """Bits of the same dimension strictly below ``position``."""
    mask = 0
    position -= k
    while position >= 0:
        mask |= 1 << position
        position -= k
    return mask


def _load_1000(value: int, position: int, k: int) -> int:
    """Set bit ``position``, zero the same dimension's lower bits."""
    return (value | (1 << position)) & ~_same_dim_lower_mask(position, k)


def _load_0111(value: int, position: int, k: int) -> int:
    """Clear bit ``position``, set the same dimension's lower bits."""
    return (value & ~(1 << position)) | _same_dim_lower_mask(position, k)


def z_in_box(
    code: int, zmin: int, zmax: int, k: int, width: int
) -> bool:
    """Per-dimension containment of an interleaved code in the box
    spanned by the interleaved corners ``zmin``/``zmax``.

    >>> from repro.encoding.interleave import interleave
    >>> lo, hi = interleave([1, 1], 4), interleave([3, 3], 4)
    >>> z_in_box(interleave([2, 2], 4), lo, hi, 2, 4)
    True
    >>> z_in_box(interleave([0, 2], 4), lo, hi, 2, 4)
    False
    """
    point = deinterleave(code, k, width)
    low = deinterleave(zmin, k, width)
    high = deinterleave(zmax, k, width)
    return all(
        lo <= v <= hi for v, lo, hi in zip(point, low, high)
    )


def bigmin(
    zmin: int, zmax: int, zcode: int, k: int, width: int
) -> Optional[int]:
    """Smallest Morton code ``> zcode`` inside the box, or None.

    ``zcode`` is typically a code just *outside* the box encountered by
    an ordered scan; the result is where the scan should resume.

    >>> from repro.encoding.interleave import interleave
    >>> lo, hi = interleave([1, 1], 3), interleave([5, 5], 3)
    >>> nxt = bigmin(lo, hi, interleave([7, 0], 3), 2, 3)
    >>> z_in_box(nxt, lo, hi, 2, 3)
    True
    """
    if zcode >= zmax:
        return None
    total = k * width
    result: Optional[int] = None
    current_min, current_max = zmin, zmax
    for position in range(total - 1, -1, -1):
        z_bit = (zcode >> position) & 1
        min_bit = (current_min >> position) & 1
        max_bit = (current_max >> position) & 1
        if z_bit == 0 and min_bit == 0 and max_bit == 0:
            continue
        if z_bit == 0 and min_bit == 0 and max_bit == 1:
            result = _load_1000(current_min, position, k)
            current_max = _load_0111(current_max, position, k)
        elif z_bit == 0 and min_bit == 1 and max_bit == 1:
            return current_min if current_min > zcode else result
        elif z_bit == 1 and min_bit == 0 and max_bit == 0:
            return result
        elif z_bit == 1 and min_bit == 0 and max_bit == 1:
            current_min = _load_1000(current_min, position, k)
        elif z_bit == 1 and min_bit == 1 and max_bit == 1:
            continue
        else:  # min_bit == 1 and max_bit == 0
            raise ValueError(
                "inconsistent box: zmin exceeds zmax at bit "
                f"{position}"
            )
    # zcode lies inside the box: the next code inside could be zcode+1,
    # but by contract the caller only asks from outside positions; fall
    # back to the accumulated split point.
    return result if result is not None and result > zcode else (
        current_min if current_min > zcode else result
    )


def litmax(
    zmin: int, zmax: int, zcode: int, k: int, width: int
) -> Optional[int]:
    """Largest Morton code ``< zcode`` inside the box, or None.

    The mirror image of :func:`bigmin`.
    """
    if zcode <= zmin:
        return None
    total = k * width
    result: Optional[int] = None
    current_min, current_max = zmin, zmax
    for position in range(total - 1, -1, -1):
        z_bit = (zcode >> position) & 1
        min_bit = (current_min >> position) & 1
        max_bit = (current_max >> position) & 1
        if z_bit == 1 and min_bit == 1 and max_bit == 1:
            continue
        if z_bit == 1 and min_bit == 0 and max_bit == 1:
            result = _load_0111(current_max, position, k)
            current_min = _load_1000(current_min, position, k)
        elif z_bit == 1 and min_bit == 0 and max_bit == 0:
            return current_max if current_max < zcode else result
        elif z_bit == 0 and min_bit == 1 and max_bit == 1:
            return result
        elif z_bit == 0 and min_bit == 0 and max_bit == 1:
            current_max = _load_0111(current_max, position, k)
        elif z_bit == 0 and min_bit == 0 and max_bit == 0:
            continue
        else:
            raise ValueError(
                "inconsistent box: zmin exceeds zmax at bit "
                f"{position}"
            )
    return result if result is not None and result < zcode else (
        current_max if current_max < zcode else result
    )
