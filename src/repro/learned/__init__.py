"""Learned z-address acceleration (ROADMAP: learned index layer).

Two model families over the z-sorted streams the rest of the codebase
already produces:

- :mod:`repro.learned.pla` / :mod:`repro.learned.index` -- a bounded-
  error piecewise-linear model from z-address to frozen-stream entry
  rank (FITing-Tree's shrinking cone), serialised as an optional
  trailer of the frozen byte format and attached zero-copy by
  :class:`repro.core.frozen.FrozenPHTree` and snapshot-pool workers.
- :mod:`repro.learned.cdf` / :mod:`repro.learned.router` -- a z-space
  CDF model producing skew-aware equi-mass shard cuts, the learned
  replacement for :class:`repro.parallel.router.ZShardRouter`'s fixed
  z-prefix splits (``ShardedPHTree(..., router="learned")``).

Both families share one contract: the model accelerates, it never
decides.  Every prediction is verified against exact structures, and
every error-bound violation falls back to the exact engine (counted by
the ``repro_learned_*`` probes).
"""

from repro.learned.index import LearnedZIndex
from repro.learned.pla import fit_segments, measure_errors

__all__ = ["LearnedZIndex", "fit_segments", "measure_errors"]
