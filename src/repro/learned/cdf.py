"""A z-space CDF model: where the mass actually sits on the z-curve.

:class:`repro.parallel.router.ZShardRouter` cuts z-space at *fixed*
z-prefix boundaries -- equal-volume, not equal-mass -- so a skewed key
distribution (CLUSTER centers confined to a corner, a hot tenant, a
time-ordered dimension) lands almost everything in a few shards.
:class:`ZCdfModel` is the skew-aware replacement: a piecewise-linear
cumulative distribution over one-dimensional z-space, built from
whatever evidence is at hand --

- an exact z-sorted sample (:meth:`from_sorted_zcodes`,
  :meth:`from_keys`): every observed z-code is a point mass, which is
  what ``ShardedPHTree.build`` feeds it (the bulk-load stream *is* the
  distribution);
- the observability layer's :class:`~repro.obs.heat.ZHeatMap`
  (:meth:`from_heatmap`): each z-prefix bucket becomes a uniform mass
  over its z-interval, so the router can re-cut from live traffic
  without touching the data.

The only question the router asks is :meth:`quantile`: "below which
z-code does fraction ``q`` of the mass sit?"  Equi-mass shard cuts are
then ``quantile(s / n_shards)`` for ``s = 1 .. n_shards - 1``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

from repro.encoding.interleave import interleave

__all__ = ["ZCdfModel"]


class ZCdfModel:
    """Piecewise-linear CDF over ``[0, 2^zbits)`` z-space.

    Stored as mass intervals ``(z_lo, z_hi_exclusive, weight)`` in
    ascending z order plus their cumulative prefix sums; a point mass
    is an interval of span 1.
    """

    __slots__ = ("zbits", "total", "_starts", "_intervals", "_cum")

    def __init__(
        self, zbits: int, intervals: Sequence[Tuple[int, int, float]]
    ) -> None:
        if zbits < 1:
            raise ValueError(f"zbits must be >= 1, got {zbits}")
        cleaned = [
            (lo, hi, float(w))
            for lo, hi, w in intervals
            if w > 0 and hi > lo
        ]
        cleaned.sort()
        self.zbits = zbits
        self._intervals = cleaned
        self._starts = [lo for lo, _, _ in cleaned]
        cum: List[float] = []
        running = 0.0
        for _, _, w in cleaned:
            running += w
            cum.append(running)
        self._cum = cum
        self.total = running

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_sorted_zcodes(
        cls, zcodes: Sequence[int], zbits: int
    ) -> "ZCdfModel":
        """Point-mass CDF from an ascending z-code stream (duplicates
        allowed; each occurrence is one unit of mass)."""
        intervals: List[Tuple[int, int, float]] = []
        i, n = 0, len(zcodes)
        while i < n:
            z = zcodes[i]
            j = i + 1
            while j < n and zcodes[j] == z:
                j += 1
            intervals.append((z, z + 1, float(j - i)))
            i = j
        return cls(zbits, intervals)

    @classmethod
    def from_keys(
        cls, keys: Sequence[Sequence[int]], dims: int, width: int
    ) -> "ZCdfModel":
        """Point-mass CDF from an (unsorted) key sample."""
        zs = sorted(interleave(key, width) for key in keys)
        return cls.from_sorted_zcodes(zs, dims * width)

    @classmethod
    def from_heatmap(
        cls, heat, dims: int, width: int
    ) -> "ZCdfModel":
        """Mass CDF from a :class:`~repro.obs.heat.ZHeatMap`: every
        bucket matching ``(dims, width)`` contributes its op count,
        spread uniformly over the bucket's z-interval."""
        intervals: List[Tuple[int, int, float]] = []
        for (k, w, code), bucket in heat._buckets.items():
            if k != dims or w != width:
                continue
            span_bits = (width - bucket.levels) * dims
            lo = code << span_bits
            intervals.append((lo, lo + (1 << span_bits), float(bucket.count)))
        return cls(dims * width, intervals)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._intervals)

    def mass_below(self, z: int) -> float:
        """Total mass at z-codes strictly below ``z``."""
        idx = bisect_right(self._starts, z) - 1
        if idx < 0:
            return 0.0
        before = self._cum[idx - 1] if idx else 0.0
        lo, hi, w = self._intervals[idx]
        if z >= hi:
            return self._cum[idx]
        return before + w * (z - lo) / (hi - lo)

    def quantile(self, q: float) -> int:
        """Smallest z-code with at least fraction ``q`` of the mass
        strictly below-or-at it (piecewise-linear interpolation inside
        mass intervals).  Clamped to ``[0, 2^zbits)``."""
        zmax = (1 << self.zbits) - 1
        if not self._intervals:
            return min(zmax, int(q * (zmax + 1)))
        if q <= 0.0:
            return self._intervals[0][0]
        if q >= 1.0:
            return min(zmax, self._intervals[-1][1])
        target = q * self.total
        # First interval whose cumulative mass reaches the target.
        lo_i, hi_i = 0, len(self._cum)
        while lo_i < hi_i:
            mid = (lo_i + hi_i) // 2
            if self._cum[mid] < target:
                lo_i = mid + 1
            else:
                hi_i = mid
        before = self._cum[lo_i - 1] if lo_i else 0.0
        z_lo, z_hi, w = self._intervals[lo_i]
        frac = (target - before) / w if w else 0.0
        z = z_lo + int(frac * (z_hi - z_lo))
        return min(zmax, max(0, z))

    def cuts(self, n_shards: int) -> List[int]:
        """``n_shards - 1`` ascending equi-mass z boundaries (the
        learned router's split points)."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        boundaries = [
            self.quantile(s / n_shards) for s in range(1, n_shards)
        ]
        for i in range(1, len(boundaries)):
            if boundaries[i] < boundaries[i - 1]:
                boundaries[i] = boundaries[i - 1]
        return boundaries
