"""LearnedZIndex: a bounded-error z-address -> stream-position model.

The frozen byte stream (:mod:`repro.core.frozen`) stores entries in
strict z-order, so the map ``z-code -> entry rank`` is a monotone step
function -- exactly the shape FITing-Tree's shrinking-cone segmentation
(:mod:`repro.learned.pla`) approximates.  This module packages the
fitted segments together with two flat arrays derived from the stream:

- ``zcodes[i]``  -- the i-th entry's full z-code (strictly ascending),
- ``valpos[i]``  -- the *bit* position of the i-th entry's value field
  inside the frozen node stream,

so a point lookup becomes *predict rank, binary-search a tiny window,
read the value bits* -- no descent -- and a window query becomes
*predict the scan start, then scan exactly*.

Everything is serialised as one trailer blob (:meth:`to_trailer`)
appended after the frozen node stream, and re-attached **zero-copy**
(:meth:`from_buffer`): the big arrays stay ``memoryview`` casts into
the caller's buffer (a ``bytes`` object or a shared-memory segment),
so :class:`~repro.parallel.executor.SnapshotPool` workers pay O(1) to
pick the model up.

Trailer layout (all fields native-endian, starting 8-byte aligned)::

    [magic "PHL1": 4] [zwords: u16] [flags: u16]
    [n: u64] [n_segments: u64] [eps: u64] [window_cap: u64]
    seg_starts : u64 * S          -- first entry rank of each segment
    seg_zs     : u64 * S * zwords -- first z-code of each segment (MSW first)
    seg_slopes : f64 * S
    seg_errs   : u64 * S          -- *measured* max |prediction - rank|
    zcodes     : u64 * n * zwords -- every entry's z-code (MSW first)
    valpos     : u64 * n          -- value-field bit offset per entry

The correctness contract: ``seg_errs`` holds errors measured with exact
integer comparisons after the float fit, so for any *present* z-code
the true rank provably lies within ``prediction +- err``; for an absent
probe between ranks ``p-1`` and ``p`` monotonicity bounds the insertion
point within ``prediction +- (err + 2)``.  A segment whose measured
error exceeds ``window_cap`` is *dead*: :meth:`find` refuses to answer
(callers fall back to the exact descent) and :meth:`seek` answers via a
plain full-range binary search, reporting the fallback.  The model is
an accelerator, never an oracle.
"""

from __future__ import annotations

import struct
from array import array
from bisect import bisect_left, bisect_right
from typing import Any, List, Optional, Sequence, Tuple

from repro.learned import pla

__all__ = ["LearnedZIndex", "TRAILER_MAGIC"]

TRAILER_MAGIC = b"PHL1"
_HEADER = "=4sHHQQQQ"
_HEADER_BYTES = struct.calcsize(_HEADER)  # 40

#: Default shrinking-cone target error (positions).  Small enough that
#: the verification window after a prediction is a handful of probes,
#: large enough that uniform data needs only a few segments.
DEFAULT_EPS = 64

#: Default cap on the *measured* per-segment error a reader will chase.
#: Segments worse than this are dead: point lookups fall back to the
#: exact descent, seeks to a full binary search.
DEFAULT_WINDOW_CAP = 512

FOUND = 0
ABSENT = -1
FALLBACK = -2


class LearnedZIndex:
    """Immutable learned model over one frozen segment's z-code stream.

    Build with :meth:`fit` (at freeze time, from plain lists), persist
    with :meth:`to_trailer`, re-attach with :meth:`from_buffer`.  After
    either construction the query surface is identical.
    """

    __slots__ = (
        "n",
        "zwords",
        "eps",
        "window_cap",
        "n_segments",
        "trailer_bytes",
        "_starts",
        "_segz",
        "_slopes",
        "_errs",
        "_z",
        "_valpos",
    )

    def __init__(
        self,
        *,
        n: int,
        zwords: int,
        eps: int,
        window_cap: int,
        starts: Sequence[int],
        segz: Sequence[int],
        slopes: Sequence[float],
        errs: Sequence[int],
        zcodes: Sequence[int],
        valpos: Sequence[int],
        trailer_bytes: int = 0,
    ) -> None:
        self.n = n
        self.zwords = zwords
        self.eps = eps
        self.window_cap = window_cap
        self.n_segments = len(starts)
        if not trailer_bytes:
            # Freshly fit (not attached): the serialised size is fully
            # determined by the shape, so report it without rendering.
            s = len(starts)
            trailer_bytes = _HEADER_BYTES + 8 * (
                s + s * zwords + s + s + n * zwords + n
            )
        self.trailer_bytes = trailer_bytes
        self._starts = starts
        self._segz = segz  # single-word per segment iff zwords == 1
        self._slopes = slopes
        self._errs = errs
        self._z = zcodes  # single-word per entry iff zwords == 1
        self._valpos = valpos

    # -- construction --------------------------------------------------------

    @classmethod
    def fit(
        cls,
        zcodes: List[int],
        valpos: List[int],
        zbits: int,
        eps: int = DEFAULT_EPS,
        window_cap: int = DEFAULT_WINDOW_CAP,
    ) -> "LearnedZIndex":
        """Fit the PLA over a strictly ascending z-code list and bind
        the per-entry value positions.  ``zbits`` is ``dims * width``
        (it fixes the serialised word count per z-code)."""
        if len(zcodes) != len(valpos):
            raise ValueError("zcodes and valpos length mismatch")
        if not zcodes:
            raise ValueError("cannot fit a learned index over zero entries")
        zwords = max(1, (zbits + 63) // 64)
        segments = pla.fit_segments(zcodes, eps)
        errors = pla.measure_errors(zcodes, segments)
        starts = [s for s, _ in segments]
        slopes = [m for _, m in segments]
        segz = [zcodes[s] for s in starts]
        if zwords == 1:
            zseq: Sequence[int] = zcodes
            segzseq: Sequence[int] = segz
        else:
            zseq = _MultiWordView(_pack_words(zcodes, zwords), zwords)
            segzseq = _MultiWordView(_pack_words(segz, zwords), zwords)
        return cls(
            n=len(zcodes),
            zwords=zwords,
            eps=eps,
            window_cap=window_cap,
            starts=starts,
            segz=segzseq,
            slopes=slopes,
            errs=errors,
            zcodes=zseq,
            valpos=valpos,
        )

    def to_trailer(self) -> bytes:
        """Serialise as the frozen-format trailer blob (no padding;
        the caller aligns the write position to 8 bytes)."""
        s = self.n_segments
        header = struct.pack(
            _HEADER,
            TRAILER_MAGIC,
            self.zwords,
            0,
            self.n,
            s,
            self.eps,
            self.window_cap,
        )
        parts = [header]
        parts.append(array("Q", self._starts).tobytes())
        parts.append(_words_bytes(self._segz, s, self.zwords))
        parts.append(array("d", self._slopes).tobytes())
        parts.append(array("Q", self._errs).tobytes())
        parts.append(_words_bytes(self._z, self.n, self.zwords))
        parts.append(array("Q", self._valpos).tobytes())
        return b"".join(parts)

    @classmethod
    def from_buffer(
        cls, data: memoryview, offset: int
    ) -> Optional["LearnedZIndex"]:
        """Zero-copy attach from ``data[offset:]``; ``None`` when no
        valid trailer starts there.  The returned index keeps
        ``memoryview`` casts into ``data`` -- the caller's buffer must
        outlive it (FrozenPHTree holds both)."""
        end = len(data)
        if offset < 0 or offset + _HEADER_BYTES > end:
            return None
        if bytes(data[offset : offset + 4]) != TRAILER_MAGIC:
            return None
        _, zwords, _flags, n, s, eps, window_cap = struct.unpack_from(
            _HEADER, data, offset
        )
        if n == 0 or s == 0 or zwords == 0:
            return None
        pos = offset + _HEADER_BYTES
        need = 8 * (s + s * zwords + s + s + n * zwords + n)
        if pos + need > end:
            return None

        def take(count: int, code: str) -> memoryview:
            nonlocal pos
            nbytes = count * 8
            view = data[pos : pos + nbytes].cast(code)
            pos += nbytes
            return view

        starts = take(s, "Q")
        segz_raw = take(s * zwords, "Q")
        slopes = take(s, "d")
        errs = take(s, "Q")
        z_raw = take(n * zwords, "Q")
        valpos = take(n, "Q")
        if zwords == 1:
            segz: Sequence[int] = segz_raw
            zseq: Sequence[int] = z_raw
        else:
            segz = _MultiWordView(segz_raw, zwords)
            zseq = _MultiWordView(z_raw, zwords)
        return cls(
            n=n,
            zwords=zwords,
            eps=eps,
            window_cap=window_cap,
            starts=starts,
            segz=segz,
            slopes=slopes,
            errs=errs,
            zcodes=zseq,
            valpos=valpos,
            trailer_bytes=pos - offset,
        )

    # -- queries -------------------------------------------------------------

    def z_at(self, i: int) -> int:
        """The i-th entry's z-code."""
        return self._z[i]

    def value_pos(self, i: int) -> int:
        """Bit offset of the i-th entry's value field in the node
        stream."""
        return self._valpos[i]

    def _segment_of(self, z: int) -> int:
        """Rightmost segment whose first z-code is <= z (may be -1)."""
        return bisect_right(self._segz, z) - 1

    def find(self, z: int) -> Tuple[int, int, int]:
        """Point probe: ``(status, rank, abs_err)``.

        status FOUND    -> ``rank`` is the entry's position (z present)
        status ABSENT   -> z is provably not in the stream
        status FALLBACK -> dead segment / float overflow; the caller
                           must use its exact engine.

        ``abs_err`` is the distance between the model's prediction and
        the resolved position (0 on FALLBACK).
        """
        j = self._segment_of(z)
        if j < 0:
            return ABSENT, 0, 0
        err = self._errs[j]
        if err > self.window_cap:
            return FALLBACK, 0, 0
        start = self._starts[j]
        end = (
            self._starts[j + 1] if j + 1 < self.n_segments else self.n
        )
        guess = pla.predict(start, self._slopes[j], self._segz[j], z)
        if guess is None:
            return FALLBACK, 0, 0
        # The true insertion point lies in [start, end] (the segment's
        # first z bounds z below, the next segment's first z above), so
        # clamping the prediction into the segment only moves it closer
        # -- the +-margin bracket survives, and the window can never
        # invert (a far-out-of-range prediction would otherwise leave
        # lo > hi and a bisect result outside the array).
        if guess < start:
            guess = start
        elif guess > end:
            guess = end
        margin = err + 2
        lo = guess - margin
        hi = guess + margin
        if lo < start:
            lo = start
        if hi > end:
            hi = end
        p = self._bisect_left(z, lo, hi)
        # The measured error makes the window provably bracketing; the
        # boundary check guards the proof (a violation means a model
        # bug, not a wrong answer -- it degrades to FALLBACK).
        if (p > lo or p == 0 or self._z[p - 1] < z) and (
            p < hi or p == self.n or self._z[p] >= z
        ):
            abs_err = guess - p if guess >= p else p - guess
            if p < self.n and self._z[p] == z:
                return FOUND, p, abs_err
            return ABSENT, p, abs_err
        return FALLBACK, 0, 0

    def seek(self, z: int) -> Tuple[int, int, bool]:
        """Scan-start probe: leftmost rank with ``z_at(rank) >= z``.

        Returns ``(rank, abs_err, fell_back)``.  Always exact: on a
        dead segment (or a violated window) it degrades to a full
        binary search over the z-code array and reports the fallback.
        """
        status, p, abs_err = self.find(z)
        if status != FALLBACK:
            return p, abs_err, False
        return self._bisect_left(z, 0, self.n), 0, True

    def _bisect_left(self, z: int, lo: int, hi: int) -> int:
        zs = self._z
        if type(zs) is _MultiWordView:
            while lo < hi:
                mid = (lo + hi) // 2
                if zs[mid] < z:
                    lo = mid + 1
                else:
                    hi = mid
            return lo
        return bisect_left(zs, z, lo, hi)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Model shape summary (for ``repro.tool query --explain`` and
        the validator)."""
        errs = list(self._errs)
        return {
            "entries": self.n,
            "segments": self.n_segments,
            "eps": self.eps,
            "window_cap": self.window_cap,
            "max_measured_err": max(errs) if errs else 0,
            "dead_segments": sum(1 for e in errs if e > self.window_cap),
            "trailer_bytes": self.trailer_bytes,
            "zwords": self.zwords,
        }


class _MultiWordView(Sequence):
    """Read-only big-int sequence over a flat u64 word array
    (most-significant word first), used when a z-code does not fit one
    word.  Supports ``len``/indexing, which is all the bisects need."""

    __slots__ = ("_words", "_zw")

    def __init__(self, words: Sequence[int], zwords: int) -> None:
        self._words = words
        self._zw = zwords

    def __len__(self) -> int:
        return len(self._words) // self._zw

    def __getitem__(self, i: int) -> int:
        if isinstance(i, slice):
            raise TypeError("_MultiWordView does not slice")
        zw = self._zw
        if i < 0:
            i += len(self)
        base = i * zw
        words = self._words
        acc = 0
        for w in range(base, base + zw):
            acc = (acc << 64) | words[w]
        return acc


def _pack_words(values: Sequence[int], zwords: int) -> "array":
    """Split each big int into ``zwords`` u64 words, MSW first."""
    mask = (1 << 64) - 1
    out = array("Q", bytes(0))
    for v in values:
        for w in range(zwords - 1, -1, -1):
            out.append((v >> (64 * w)) & mask)
    return out


def _words_bytes(seq: Any, count: int, zwords: int) -> bytes:
    """Serialise ``count`` z-codes from ``seq`` as flat u64 words."""
    if zwords == 1:
        return array("Q", [seq[i] for i in range(count)]).tobytes()
    if type(seq) is _MultiWordView:
        words = seq._words
        return array("Q", [words[i] for i in range(count * zwords)]).tobytes()
    return _pack_words([seq[i] for i in range(count)], zwords).tobytes()
