"""Greedy bounded-error piecewise-linear fitting over sorted z-codes.

FITing-Tree / A-Tree (PAPERS.md) observe that a sorted key stream is a
monotone function ``key -> position`` whose graph can be covered by a
handful of line segments if the data is anywhere near linear in key
space.  The *shrinking cone* algorithm fits those segments greedily in
one pass: a segment keeps absorbing points while some slope through its
origin stays within ``eps`` positions of every absorbed point; the
feasible slope interval (the cone) only ever shrinks, and when it
empties the segment is closed and a new one starts.

Two deviations from the textbook algorithm, both forced by arbitrary-
precision z-codes:

- Slopes are computed in *float* arithmetic over ``z - z0`` deltas.  A
  z-code is up to ``dims * width`` bits (1024 for a 16d/64-bit tree),
  so ``float(z)`` may overflow or round; overflow closes the segment,
  rounding silently loosens the cone.
- Because of that rounding, ``eps`` is only the *target* bound.  After
  fitting, :func:`measure_errors` re-walks every segment with exact
  integer comparisons and records the **true** maximum prediction error
  per segment.  Readers size their local search window from the
  measured error, so float noise can never produce a wrong answer --
  only a wider window, or (past the reader's window cap) a dead segment
  that falls back to the exact engine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["fit_segments", "measure_errors", "predict"]

_INF = float("inf")


def _delta(z: int, z0: int) -> float:
    """``float(z - z0)``, with overflow mapped to +inf (the caller
    treats an unrepresentable delta as a cone break)."""
    try:
        return float(z - z0)
    except OverflowError:
        return _INF


def fit_segments(
    zcodes: Sequence[int], eps: int
) -> List[Tuple[int, float]]:
    """Shrinking-cone segmentation of a strictly ascending z-code
    stream; returns ``[(start_index, slope), ...]``.

    Every position ``i`` in segment ``j`` (spanning ``start_j`` to the
    next segment's start) is *aimed* to satisfy
    ``|start_j + slope_j * float(zcodes[i] - zcodes[start_j]) - i| <= eps``;
    the guarantee that actually holds is whatever
    :func:`measure_errors` reports, float rounding included.

    >>> fit_segments([10, 20, 30, 40], eps=1)
    [(0, 0.1)]
    """
    if eps < 1:
        raise ValueError(f"eps must be >= 1, got {eps}")
    n = len(zcodes)
    segments: List[Tuple[int, float]] = []
    i = 0
    while i < n:
        start = i
        z0 = zcodes[i]
        lo, hi = 0.0, _INF
        i += 1
        while i < n:
            x = _delta(zcodes[i], z0)
            if x == _INF:
                break
            y = i - start
            if x == 0.0:
                # Distinct z-codes collapsed to the same float delta
                # (adversarially dense keys): the cone cannot see them,
                # so the true error grows silently.  measure_errors
                # catches it; keep absorbing.
                i += 1
                continue
            slope_lo = (y - eps) / x
            slope_hi = (y + eps) / x
            new_lo = slope_lo if slope_lo > lo else lo
            new_hi = slope_hi if slope_hi < hi else hi
            if new_lo > new_hi:
                # Reject the point *without* committing its bounds: the
                # closed segment's cone must reflect only the points it
                # actually covers, or the chosen slope drifts toward the
                # breaking point and the measured error inflates past
                # eps (costing window width downstream).
                break
            lo, hi = new_lo, new_hi
            i += 1
        if hi == _INF:
            # Nothing bounded the cone from above (single-point segment
            # or all-zero deltas): any slope "fits"; 0 keeps predictions
            # pinned to the segment start.
            slope = lo
        else:
            slope = (lo + hi) / 2.0
        segments.append((start, slope))
    return segments


def predict(
    start: int, slope: float, z0: int, z: int
) -> "int | None":
    """The model's position estimate for ``z`` in the segment anchored
    at ``(z0 -> start)``; ``None`` when the delta -- or the slope *
    delta product (a steep segment probed with a far-away 1024-bit z)
    -- overflows float."""
    x = _delta(z, z0)
    if x == _INF:
        return None
    try:
        return start + int(slope * x + 0.5)
    except OverflowError:
        return None


def measure_errors(
    zcodes: Sequence[int], segments: List[Tuple[int, float]]
) -> List[int]:
    """Exact per-segment maximum of ``|prediction - true position|``
    over the fitted stream (integer comparison, no trust in the cone).

    A segment whose predictions cannot be evaluated at all (float
    overflow) gets an error of ``len(zcodes)`` -- larger than any
    window cap, so readers treat it as dead.
    """
    n = len(zcodes)
    errors: List[int] = []
    for j, (start, slope) in enumerate(segments):
        end = segments[j + 1][0] if j + 1 < len(segments) else n
        z0 = zcodes[start]
        worst = 0
        for i in range(start, end):
            guess = predict(start, slope, z0, zcodes[i])
            if guess is None:
                worst = n
                break
            err = guess - i if guess >= i else i - guess
            if err > worst:
                worst = err
        errors.append(worst)
    return errors
