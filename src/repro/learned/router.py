"""LearnedZRouter: equi-mass z-interval sharding from a CDF model.

Drop-in peer of :class:`repro.parallel.router.ZShardRouter` (same
``shard_of`` / ``bounds`` / ``shards_for_box`` / ``split_sorted``
surface, so :class:`~repro.parallel.sharded.ShardedPHTree` and the
snapshot pool work unchanged), but the shard boundaries are *data*:
``n_shards - 1`` ascending z-codes -- equi-mass split points from a
:class:`~repro.learned.cdf.ZCdfModel`, a bulk-load stream, or a
:class:`~repro.obs.heat.ZHeatMap` -- instead of fixed z-prefix bits.

What survives from the prefix router (the parity contract):

- shard ``s`` owns one **contiguous z-interval** ``[cut[s-1], cut[s])``
  (cut 0 = 0, last cut = 2^zbits), so a globally z-sorted stream still
  splits into per-shard runs by position and per-shard results still
  concatenate in exact global z-order;
- every shard still advertises an axis-aligned bounding box -- the box
  of its z-interval's longest common z-prefix.  Unlike the prefix
  router's boxes it may be a *superset* of the owned region (an
  interval that straddles a prefix boundary has a short common prefix),
  which keeps every consumer correct: kNN shard ordering uses it as an
  admissible lower bound, and window routing intersects it *and* the
  exact z-interval, so a shard is only visited if the query box can
  overlap it.

What changes: equal *volume* is no longer guaranteed, equal *mass* is
(to the resolution of the evidence the cuts were built from).  Under a
CLUSTER-skewed load the prefix router funnels nearly everything into
the shards whose prefix covers the clusters; the learned cuts follow
the CDF and keep max/mean shard occupancy near 1.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.encoding.interleave import deinterleave, interleave
from repro.learned.cdf import ZCdfModel

__all__ = ["LearnedZRouter"]

Key = Tuple[int, ...]


class LearnedZRouter:
    """Routes keys to shards by ascending learned z-cut boundaries.

    ``cuts`` are ``n_shards - 1`` z-codes; shard ``s`` owns z-interval
    ``[cuts[s-1], cuts[s])`` (with virtual cuts 0 and 2^zbits at the
    ends).  Duplicate cuts are legal and simply leave the middle shard
    empty.

    >>> router = LearnedZRouter(dims=2, width=8, cuts=[4, 64])
    >>> router.n_shards
    3
    >>> router.shard_of((0, 0)), router.shard_of((255, 255))
    (0, 2)
    """

    __slots__ = (
        "_dims",
        "_width",
        "_zbits",
        "_cuts",
        "_bounds",
        "_z_of",
    )

    def __init__(
        self, dims: int, width: int, cuts: Sequence[int]
    ) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        zbits = dims * width
        zmax = 1 << zbits
        cuts = [int(c) for c in cuts]
        for i, c in enumerate(cuts):
            if not 0 <= c < zmax:
                raise ValueError(
                    f"cut {i} = {c} outside z-space [0, 2^{zbits})"
                )
            if i and c < cuts[i - 1]:
                raise ValueError("cuts must be ascending")
        self._dims = dims
        self._width = width
        self._zbits = zbits
        self._cuts = cuts
        self._z_of: Optional[Any] = None
        self._bounds: List[Tuple[Key, Key]] = [
            self._compute_bounds(s) for s in range(len(cuts) + 1)
        ]

    # -- constructors --------------------------------------------------------

    @classmethod
    def uniform(
        cls, dims: int, width: int, shards: int
    ) -> "LearnedZRouter":
        """Equal-volume cuts -- the no-evidence starting point (still
        interval semantics, unlike the prefix router only in shape)."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        span = 1 << (dims * width)
        return cls(
            dims,
            width,
            [span * s // shards for s in range(1, shards)],
        )

    @classmethod
    def from_sorted_zcodes(
        cls,
        zcodes: Sequence[int],
        dims: int,
        width: int,
        shards: int,
    ) -> "LearnedZRouter":
        """Exact equi-mass cuts from an ascending z-code stream (the
        bulk-load path: the stream is the full population, so the cuts
        are order statistics, not estimates)."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        n = len(zcodes)
        if n == 0:
            return cls.uniform(dims, width, shards)
        zmax = (1 << (dims * width)) - 1
        cuts = []
        for s in range(1, shards):
            idx = (n * s + shards - 1) // shards
            cuts.append(
                zcodes[idx] if idx < n else min(zcodes[-1] + 1, zmax)
            )
        return cls(dims, width, cuts)

    @classmethod
    def from_sample(
        cls,
        keys: Sequence[Sequence[int]],
        dims: int,
        width: int,
        shards: int,
    ) -> "LearnedZRouter":
        """Equi-mass cuts estimated from an unsorted key sample."""
        return cls.from_cdf(
            ZCdfModel.from_keys(keys, dims, width), dims, width, shards
        )

    @classmethod
    def from_heatmap(
        cls, heat, dims: int, width: int, shards: int
    ) -> "LearnedZRouter":
        """Equi-mass cuts from live traffic (the observability layer's
        z-region heat buckets)."""
        return cls.from_cdf(
            ZCdfModel.from_heatmap(heat, dims, width),
            dims,
            width,
            shards,
        )

    @classmethod
    def from_cdf(
        cls, model: ZCdfModel, dims: int, width: int, shards: int
    ) -> "LearnedZRouter":
        """Equi-mass cuts at the CDF's ``s / shards`` quantiles."""
        if model.zbits != dims * width:
            raise ValueError(
                f"CDF is over {model.zbits}-bit z-space, router needs "
                f"{dims * width}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if len(model) == 0:
            return cls.uniform(dims, width, shards)
        return cls(dims, width, model.cuts(shards))

    # -- introspection -------------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._dims

    @property
    def width(self) -> int:
        """Bit width ``w`` of each coordinate."""
        return self._width

    @property
    def n_shards(self) -> int:
        """Number of shards (any count >= 1, not only powers of two)."""
        return len(self._cuts) + 1

    @property
    def cuts(self) -> List[int]:
        """The learned z-cut boundaries (ascending, length
        ``n_shards - 1``)."""
        return list(self._cuts)

    def z_interval(self, shard: int) -> Tuple[int, int]:
        """Inclusive ``[z_lo, z_hi]`` interval owned by ``shard``."""
        cuts = self._cuts
        lo = cuts[shard - 1] if shard else 0
        hi = (
            cuts[shard] - 1
            if shard < len(cuts)
            else (1 << self._zbits) - 1
        )
        return lo, max(lo, hi)

    # -- key -> shard --------------------------------------------------------

    def _interleave(self, key: Sequence[int]) -> int:
        z_of = self._z_of
        if z_of is None:
            # Prefer the per-(k, width) specialised interleave; resolved
            # lazily so router construction stays allocation-cheap.
            from repro.core.specialize import get_spec

            spec = get_spec(self._dims, self._width)
            if spec is not None:
                z_of = spec.interleave
            else:
                width = self._width

                def z_of(key: Sequence[int]) -> int:
                    return interleave(key, width)

            self._z_of = z_of
        return z_of(key)

    def shard_of(self, key: Sequence[int]) -> int:
        """The shard owning ``key``: position of its z-code among the
        learned cuts."""
        if not self._cuts:
            return 0
        return bisect_right(self._cuts, self._interleave(key))

    def shard_of_z(self, z: int) -> int:
        """The shard owning z-code ``z``."""
        if not self._cuts:
            return 0
        return bisect_right(self._cuts, z)

    # -- shard -> geometry ---------------------------------------------------

    def _compute_bounds(self, shard: int) -> Tuple[Key, Key]:
        """Bounding box of the shard's z-interval: the box of the
        interval ends' longest common z-prefix (an admissible superset
        of the owned region)."""
        k = self._dims
        width = self._width
        z_lo, z_hi = self.z_interval(shard)
        diff = z_lo ^ z_hi
        free = diff.bit_length()
        base = (z_lo >> free) << free
        lower = deinterleave(base, k, width)
        upper = deinterleave(base | ((1 << free) - 1), k, width)
        return lower, upper

    def bounds(self, shard: int) -> Tuple[Key, Key]:
        """Inclusive ``(lower, upper)`` corner of the shard's bounding
        box (superset of the owned z-interval's keys)."""
        return self._bounds[shard]

    def shards_for_box(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> List[int]:
        """Shards that may own keys inside the inclusive box,
        ascending (= z-order, since shards are ascending z-intervals).

        A shard qualifies only if its z-interval overlaps the box's
        z-code range ``[z(box_min), z(box_max)]`` *and* its bounding
        box intersects the query box -- both are exact filters, so the
        result is a superset of the shards actually holding matches
        and never misses one.
        """
        max_v = (1 << self._width) - 1
        lo = tuple(min(max(v, 0), max_v) for v in box_min)
        hi = tuple(min(max(v, 0), max_v) for v in box_max)
        if any(a > b for a, b in zip(lo, hi)):
            return []
        z_lo = self._interleave(lo)
        z_hi = self._interleave(hi)
        cuts = self._cuts
        first = bisect_right(cuts, z_lo)
        last = bisect_right(cuts, z_hi)
        hits = []
        for shard in range(first, last + 1):
            lower, upper = self._bounds[shard]
            for a, b, slo, shi in zip(box_min, box_max, lower, upper):
                if b < slo or a > shi:
                    break
            else:
                hits.append(shard)
        return hits

    # -- sorted-run splitting ------------------------------------------------

    def split_sorted(
        self, items: List[Tuple[Key, Any]]
    ) -> Iterator[Tuple[int, List[Tuple[Key, Any]]]]:
        """Cut a globally z-sorted entry list into per-shard runs,
        yielding ``(shard, run)`` for every non-empty shard ascending.
        Shards are contiguous z-intervals, so each cut is one bisect
        over the items' z-codes."""
        zs = [self._interleave(key) for key, _ in items]
        yield from self.split_sorted_zs(items, zs)

    def split_sorted_zs(
        self,
        items: List[Tuple[Key, Any]],
        zs: Sequence[int],
    ) -> Iterator[Tuple[int, List[Tuple[Key, Any]]]]:
        """:meth:`split_sorted` when the caller already holds the
        items' ascending z-codes (the bulk-build path reuses its sort
        keys instead of re-interleaving)."""
        n = len(items)
        start = 0
        shard = self.shard_of_z(zs[0]) if n else 0
        for cut_shard in range(shard, self.n_shards - 1):
            end = bisect_left(zs, self._cuts[cut_shard], start, n)
            if end > start:
                yield cut_shard, items[start:end]
                start = end
            if start >= n:
                return
        if start < n:
            yield self.n_shards - 1, items[start:]