"""JVM-style memory model (substitute for the paper's heap measurements).

The paper measures index memory on a 64-bit Oracle JDK 1.7 with compressed
oops by diffing ``Runtime.totalMemory() - freeMemory()`` around index
construction, and notes that these numbers matched the analytic sum of all
node sizes within 5% (Section 4.3.5).  This package computes that analytic
sum directly: :class:`repro.memory.model.JvmMemoryModel` encodes the JDK's
object layout rules (headers, reference width, field packing, 8-byte
alignment), and every index structure walks its own object graph under the
model.
"""

from repro.memory.model import JvmMemoryModel
from repro.memory.report import SpaceReport, bytes_per_entry, space_report

__all__ = ["JvmMemoryModel", "SpaceReport", "bytes_per_entry", "space_report"]
