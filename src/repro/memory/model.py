"""Object-layout rules of the paper's testbed JVM.

The evaluation machine ran a 64-bit Oracle JDK 1.7 with default settings,
which means *compressed oops*: object references and the class word take
4 bytes each.  The layout rules implemented here:

- plain object: 8-byte mark word + 4-byte class pointer = 12-byte header,
  then fields (packed by the JVM; we sum their widths), padded to a multiple
  of 8,
- array: 12-byte header + 4-byte length = 16 bytes, then elements, padded
  to a multiple of 8,
- reference fields/elements: 4 bytes.

The constants are configurable so the model can also emulate an
uncompressed-oops JVM (``JvmMemoryModel.uncompressed()``) or be repurposed
as a CPython ``sys.getsizeof``-style model for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["JvmMemoryModel"]

_PRIMITIVE_BYTES = {
    "boolean": 1,
    "byte": 1,
    "char": 2,
    "short": 2,
    "int": 4,
    "float": 4,
    "long": 8,
    "double": 8,
}


@dataclass(frozen=True)
class JvmMemoryModel:
    """Sizing rules for Java objects and arrays.

    >>> model = JvmMemoryModel.compressed_oops()
    >>> model.array_bytes("double", 3)   # 16-byte header + 24, aligned
    40
    >>> model.object_bytes(refs=2, ints=1)   # 12 + 8 + 4 -> 24
    24
    """

    object_header_bytes: int = 12
    array_header_bytes: int = 16
    reference_bytes: int = 4
    alignment: int = 8

    @classmethod
    def compressed_oops(cls) -> "JvmMemoryModel":
        """The paper's configuration: 64-bit JVM, compressed oops."""
        return cls()

    @classmethod
    def uncompressed(cls) -> "JvmMemoryModel":
        """64-bit JVM with -XX:-UseCompressedOops (e.g. heaps > 32 GB)."""
        return cls(
            object_header_bytes=16,
            array_header_bytes=24,
            reference_bytes=8,
            alignment=8,
        )

    def align(self, size: int) -> int:
        """Round ``size`` up to the allocation granularity."""
        remainder = size % self.alignment
        if remainder:
            return size + self.alignment - remainder
        return size

    def primitive_bytes(self, type_name: str) -> int:
        """Width of a primitive field/element."""
        try:
            return _PRIMITIVE_BYTES[type_name]
        except KeyError:
            raise ValueError(
                f"unknown primitive type {type_name!r}; "
                f"one of {sorted(_PRIMITIVE_BYTES)}"
            ) from None

    def object_bytes(
        self,
        refs: int = 0,
        booleans: int = 0,
        bytes_: int = 0,
        chars: int = 0,
        shorts: int = 0,
        ints: int = 0,
        floats: int = 0,
        longs: int = 0,
        doubles: int = 0,
    ) -> int:
        """Aligned heap size of one object with the given fields."""
        size = (
            self.object_header_bytes
            + refs * self.reference_bytes
            + booleans
            + bytes_
            + chars * 2
            + shorts * 2
            + ints * 4
            + floats * 4
            + longs * 8
            + doubles * 8
        )
        return self.align(size)

    def array_bytes(self, element_type: str, length: int) -> int:
        """Aligned heap size of a primitive or reference array.

        ``element_type`` is a primitive name or ``"ref"``.
        """
        if length < 0:
            raise ValueError(f"array length must be >= 0, got {length}")
        if element_type == "ref":
            elem = self.reference_bytes
        else:
            elem = self.primitive_bytes(element_type)
        return self.align(self.array_header_bytes + elem * length)

    def byte_array_for_bits(self, n_bits: int) -> int:
        """Aligned size of the smallest ``byte[]`` holding ``n_bits``."""
        return self.array_bytes("byte", (n_bits + 7) // 8)

    def boxed_double_bytes(self) -> int:
        """A ``java.lang.Double`` instance."""
        return self.object_bytes(doubles=1)
