"""Actual CPython memory measurement (complements the JVM model).

The JVM model in :mod:`repro.memory.model` reproduces the paper's
numbers; this module measures what the structures *really* occupy in the
running CPython process, via a deduplicating deep ``sys.getsizeof`` walk.
The absolute numbers are CPython-specific (boxed floats, tuple headers,
dict tables) and much larger than the JVM's, but the *orderings* between
structures should agree with the model -- a cross-check the test suite
performs.

Interned/shared immutables (small ints, the empty tuple, ...) are counted
once, like a real heap census would.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, Set

__all__ = ["deep_sizeof", "index_sizeof"]

_ATOMIC = (type(None), bool, int, float, complex, str, bytes, bytearray)


def deep_sizeof(obj: Any, _seen: Set[int] = None) -> int:
    """Recursively measure ``obj`` and everything it references.

    Objects are counted once even when referenced repeatedly.  Class
    objects, modules and functions are skipped (shared interpreter
    state, not data).

    >>> deep_sizeof([]) == sys.getsizeof([])
    True
    >>> deep_sizeof([1.5]) > sys.getsizeof([1.5])
    True
    """
    seen = _seen if _seen is not None else set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        identity = id(current)
        if identity in seen:
            continue
        seen.add(identity)
        if isinstance(current, type) or callable(current):
            continue
        total += sys.getsizeof(current)
        if isinstance(current, _ATOMIC):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        elif hasattr(current, "__dict__"):
            stack.append(current.__dict__)
        if hasattr(current, "__slots__"):
            for slot in _all_slots(type(current)):
                try:
                    stack.append(getattr(current, slot))
                except AttributeError:
                    pass
    return total


def _all_slots(cls: type) -> Iterable[str]:
    for base in cls.__mro__:
        for slot in getattr(base, "__slots__", ()):
            yield slot


def index_sizeof(index: Any) -> int:
    """Deep CPython size of a spatial index structure."""
    return deep_sizeof(index)
