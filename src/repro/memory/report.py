"""Bytes-per-entry space reports (paper Tables 1-2, Figures 10, 14, 15).

Builds the paper's space comparison: load a dataset into each structure and
report the modelled heap bytes divided by the entry count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.model import JvmMemoryModel

__all__ = ["SpaceReport", "bytes_per_entry", "space_report"]

Point = Tuple[float, ...]


def bytes_per_entry(
    index: "SpatialIndex",  # noqa: F821 - protocol, avoids import cycle
    model: Optional[JvmMemoryModel] = None,
) -> float:
    """Modelled heap bytes of ``index`` divided by its entry count."""
    n = len(index)
    if n == 0:
        return 0.0
    return index.memory_bytes(model) / n


@dataclass
class SpaceReport:
    """Bytes-per-entry for several structures over one dataset."""

    dataset: str
    n_entries: int
    dims: int
    per_structure: Dict[str, float] = field(default_factory=dict)

    def row(self, names: Sequence[str]) -> List[float]:
        """Values in the order of ``names`` (missing -> NaN)."""
        return [self.per_structure.get(name, float("nan")) for name in names]

    def format_table(self) -> str:
        """Human-readable one-dataset table."""
        lines = [
            f"dataset={self.dataset} n={self.n_entries} k={self.dims}",
            f"{'structure':>10s} {'bytes/entry':>12s}",
        ]
        for name, bpe in self.per_structure.items():
            lines.append(f"{name:>10s} {bpe:>12.1f}")
        return "\n".join(lines)


def space_report(
    dataset_name: str,
    points: Sequence[Point],
    structure_names: Sequence[str],
    dims: int,
    model: Optional[JvmMemoryModel] = None,
) -> SpaceReport:
    """Load ``points`` into each named structure and measure it.

    Structures are created through
    :func:`repro.baselines.interface.make_index`.
    """
    from repro.baselines.interface import make_index

    model = model or JvmMemoryModel.compressed_oops()
    report = SpaceReport(
        dataset=dataset_name, n_entries=len(points), dims=dims
    )
    for name in structure_names:
        index = make_index(name, dims=dims)
        for point in points:
            index.put(point)
        report.per_structure[name] = bytes_per_entry(index, model)
    return report
