"""Bytes-per-entry space reports (paper Tables 1-2, Figures 10, 14, 15).

Builds the paper's space comparison: load a dataset into each structure and
report the modelled heap bytes divided by the entry count.

:func:`arena_space_report` extends the comparison to the two mutable
PH-tree engines themselves: the object engine's real CPython footprint
against the arena engine's slabs (capacity and live bytes), with the
paper's bit-stream layout (Section 3.4, the Table 3 space model) as the
packed reference floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.model import JvmMemoryModel

__all__ = [
    "SpaceReport",
    "arena_space_report",
    "bytes_per_entry",
    "space_report",
]

Point = Tuple[float, ...]


def bytes_per_entry(
    index: "SpatialIndex",  # noqa: F821 - protocol, avoids import cycle
    model: Optional[JvmMemoryModel] = None,
) -> float:
    """Modelled heap bytes of ``index`` divided by its entry count."""
    n = len(index)
    if n == 0:
        return 0.0
    return index.memory_bytes(model) / n


@dataclass
class SpaceReport:
    """Bytes-per-entry for several structures over one dataset."""

    dataset: str
    n_entries: int
    dims: int
    per_structure: Dict[str, float] = field(default_factory=dict)

    def row(self, names: Sequence[str]) -> List[float]:
        """Values in the order of ``names`` (missing -> NaN)."""
        return [self.per_structure.get(name, float("nan")) for name in names]

    def format_table(self) -> str:
        """Human-readable one-dataset table."""
        lines = [
            f"dataset={self.dataset} n={self.n_entries} k={self.dims}",
            f"{'structure':>10s} {'bytes/entry':>12s}",
        ]
        for name, bpe in self.per_structure.items():
            lines.append(f"{name:>10s} {bpe:>12.1f}")
        return "\n".join(lines)


def arena_space_report(
    entries: Sequence[Tuple[Tuple[int, ...], object]],
    dims: int,
    width: int = 64,
) -> Dict[str, float]:
    """Mutable-engine space comparison over one entry set.

    Loads ``entries`` into both mutable layouts and reports real
    bytes-per-entry figures:

    - ``object_deep``: the object engine's deduplicated deep
      ``sys.getsizeof`` footprint (boxed nodes, tuples, containers),
    - ``arena_capacity``: raw slab capacity the arena engine holds
      (including growth slack and free-listed blocks),
    - ``arena_live``: bytes inside live arena records only,
    - ``packed_reference``: the paper's per-node bit-stream layout
      (Section 3.4 / the Table 3 space model) -- the packed floor the
      arena approaches from above,
    - ``reduction_vs_object``: object_deep / arena_capacity.
    """
    from repro.core.phtree import PHTree
    from repro.core.stats import collect_stats
    from repro.memory.pysize import deep_sizeof

    obj_tree = PHTree(dims=dims, width=width, layout="object")
    arena_tree = PHTree(dims=dims, width=width, layout="arena")
    for key, value in entries:
        obj_tree.put(key, value)
        arena_tree.put(key, value)
    n = len(obj_tree)
    if n == 0:
        return {name: 0.0 for name in (
            "n_entries", "object_deep", "arena_capacity", "arena_live",
            "packed_reference", "reduction_vs_object",
        )}
    object_deep = deep_sizeof(obj_tree)
    slabs = arena_tree.space_stats()
    packed = collect_stats(obj_tree).serialized_bytes_per_entry
    return {
        "n_entries": float(n),
        "object_deep": object_deep / n,
        "arena_capacity": slabs["capacity_bytes"] / n,
        "arena_live": slabs["live_bytes"] / n,
        "packed_reference": packed,
        "reduction_vs_object": (
            object_deep / slabs["capacity_bytes"]
            if slabs["capacity_bytes"]
            else 0.0
        ),
    }


def space_report(
    dataset_name: str,
    points: Sequence[Point],
    structure_names: Sequence[str],
    dims: int,
    model: Optional[JvmMemoryModel] = None,
) -> SpaceReport:
    """Load ``points`` into each named structure and measure it.

    Structures are created through
    :func:`repro.baselines.interface.make_index`.
    """
    from repro.baselines.interface import make_index

    model = model or JvmMemoryModel.compressed_oops()
    report = SpaceReport(
        dataset=dataset_name, n_entries=len(points), dims=dims
    )
    for name in structure_names:
        index = make_index(name, dims=dims)
        for point in points:
            index.put(point)
        report.per_structure[name] = bytes_per_entry(index, model)
    return report
