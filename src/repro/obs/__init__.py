"""Observability layer: metrics, query tracing, telemetry, logging.

The paper's evaluation argues from *internal* quantities -- nodes
visited per query, HC vs LHC prevalence, bytes per entry -- so this
package makes those quantities visible on a live workload:

- :mod:`repro.obs.metrics` -- a dependency-free Counter/Gauge/Histogram
  registry with Prometheus-text and JSON exposition,
- :mod:`repro.obs.probes` -- the probe inventory the hot paths report
  into (kernel traversal counts, tree-shape accounting, kNN heap
  telemetry, per-shard/pool counters),
- :mod:`repro.obs.trace` -- ``explain()``-style structured traces for a
  single window or kNN query (imported lazily; see
  :func:`explain_query` / :func:`explain_knn`),
- :mod:`repro.obs.log` -- the shared ``repro.*`` logger hierarchy,
- :mod:`repro.obs.runtime` -- the global enable/disable switch.

**Zero-cost-off contract**: with :func:`disable` (the default), every
probe reduces to a single module-attribute truth test per operation --
the traversal kernels dispatch once per *call* to their uninstrumented
twins -- and ``tests/obs/test_overhead.py`` pins the disabled overhead
of ``get_many``/``query`` at <= 5%.

Quick use::

    from repro import obs
    obs.enable()
    ...run a workload...
    print(obs.render_prometheus())   # or obs.dump_json()
    obs.reset(); obs.disable()
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs import heat, metrics, probes, recorder, runtime, span
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
)
from repro.obs.recorder import FlightRecorder, get_recorder
from repro.obs.runtime import disable, enable, is_enabled
from repro.obs.span import Trace, current_trace, start_trace

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Registry",
    "Trace",
    "configure_logging",
    "current_trace",
    "disable",
    "dump_json",
    "enable",
    "explain_knn",
    "explain_query",
    "get_logger",
    "get_recorder",
    "get_registry",
    "heat",
    "is_enabled",
    "metrics",
    "probes",
    "recorder",
    "render_prometheus",
    "reset",
    "reset_all",
    "runtime",
    "span",
    "start_trace",
]


def render_prometheus() -> str:
    """Prometheus text exposition of the process-global registry."""
    return metrics.REGISTRY.render_prometheus()


def dump_json() -> Dict[str, Any]:
    """JSON-friendly dump of the process-global registry."""
    return metrics.REGISTRY.dump_json()


def reset() -> None:
    """Zero every metric in the process-global registry."""
    metrics.REGISTRY.reset()


def reset_all() -> None:
    """Reset *all* telemetry state: registry values, z-region heat
    buckets, the flight recorder, and the plan-cache aggregates the
    generated arena kernels count into.  This is what
    ``repro.tool metrics --reset`` calls, and what makes repeated
    in-process CLI runs idempotent."""
    metrics.REGISTRY.reset()
    heat.reset()
    recorder.clear()
    # Lazy: repro.core.specialize imports this package at import time.
    from repro.core import specialize as _specialize

    _specialize.reset_plan_cache_counts()


def explain_query(tree: Any, box_min: Any, box_max: Any, **kw: Any):
    """Structured per-node trace of one window query; see
    :func:`repro.obs.trace.explain_query`.  (Lazy import: the tracer
    depends on :mod:`repro.core`, which itself imports this package.)"""
    from repro.obs.trace import explain_query as _impl

    return _impl(tree, box_min, box_max, **kw)


def explain_knn(tree: Any, key: Any, n: int = 1, **kw: Any):
    """Structured trace of one kNN search; see
    :func:`repro.obs.trace.explain_knn`."""
    from repro.obs.trace import explain_knn as _impl

    return _impl(tree, key, n, **kw)
