"""Z-region heat tracking: who is hammering which part of z-space.

The PH-tree's z-ordering (paper §3.1) makes "where is the load" a
prefix question: the top ``levels`` bits of every dimension name an
axis-aligned region of key space, and the interleaved form of those
bits is a z-prefix.  :class:`ZHeatMap` buckets operations by that
prefix and keeps, per region:

- a per-op **count** (put/get/remove/query/knn/...),
- a **hotness score** with exponential half-life decay, so "hot right
  now" and "hot last week" are different answers,
- a **latency EWMA** for the ops that report a duration.

Buckets are a sparse dict keyed by ``(dims, width, code)`` -- only
regions that actually see traffic take memory.  Feeding sites sit
behind ``runtime.enabled`` (or inside already-instrumented twins), so
the disabled path pays nothing.  Updates are plain dict/attribute ops
under the GIL; concurrent feeders may interleave, which is fine for
telemetry.

This is the data plane for the ROADMAP's elastic-sharding rebalancer
and the learned z-address router: both consume "top-N hottest
z-prefixes" snapshots.
"""

from __future__ import annotations

from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.encoding.interleave import deinterleave, interleave

__all__ = [
    "DEFAULT_HALF_LIFE_S",
    "DEFAULT_LEVELS",
    "HEATMAP",
    "ZHeatBucket",
    "ZHeatMap",
    "get_heatmap",
    "record",
    "record_region",
    "render",
    "reset",
    "set_levels",
    "snapshot",
    "top",
]

#: Bits per dimension that name a region.  4 bits/dim keeps the bucket
#: space small (<= 2^(4k) regions, sparse in practice) while still
#: separating clusters that differ in their top hex digit.
DEFAULT_LEVELS = 4

#: Hotness half-life: a region untouched for this long keeps half its
#: score.  Short enough that "hot" means *now*, long enough that a
#: rebalancer polling every few seconds sees a stable ranking.
DEFAULT_HALF_LIFE_S = 30.0

#: EWMA weight for new latency samples.
_LATENCY_ALPHA = 0.2


class ZHeatBucket:
    """Accumulated heat for one z-prefix region."""

    __slots__ = (
        "dims",
        "width",
        "levels",
        "code",
        "count",
        "ops",
        "score",
        "last",
        "latency_ewma_s",
        "latency_count",
    )

    def __init__(
        self, dims: int, width: int, levels: int, code: int
    ) -> None:
        self.dims = dims
        self.width = width
        self.levels = levels
        self.code = code
        self.count = 0
        self.ops: Dict[str, int] = {}
        self.score = 0.0
        self.last = 0.0
        self.latency_ewma_s = 0.0
        self.latency_count = 0

    def ranges(self) -> List[Tuple[int, int]]:
        """Per-dimension ``[lo, hi]`` bounds of this region, in encoded
        (unsigned) key space."""
        prefixes = deinterleave(self.code, self.dims, self.levels)
        shift = self.width - self.levels
        span = (1 << shift) - 1 if shift > 0 else 0
        return [(p << shift, (p << shift) + span) for p in prefixes]

    def contains(self, key: Sequence[int]) -> bool:
        """Whether an encoded key falls inside this region."""
        return all(
            lo <= value <= hi
            for value, (lo, hi) in zip(key, self.ranges())
        )

    def bits(self) -> str:
        """The z-prefix as a bit string (``levels * dims`` bits)."""
        return format(self.code, f"0{self.levels * self.dims}b")

    def scored(self, now: float, half_life_s: float) -> float:
        """Score decayed to ``now`` (read-only; does not mutate)."""
        if self.score == 0.0:
            return 0.0
        return self.score * 0.5 ** ((now - self.last) / half_life_s)


class ZHeatMap:
    """Fixed-depth z-prefix heat buckets over encoded key space."""

    __slots__ = ("levels", "half_life_s", "_buckets", "_clock")

    def __init__(
        self,
        levels: int = DEFAULT_LEVELS,
        half_life_s: float = DEFAULT_HALF_LIFE_S,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if levels <= 0:
            raise ValueError(f"levels must be positive, got {levels}")
        if half_life_s <= 0:
            raise ValueError(
                f"half_life_s must be positive, got {half_life_s}"
            )
        self.levels = levels
        self.half_life_s = half_life_s
        self._buckets: Dict[Tuple[int, int, int], ZHeatBucket] = {}
        self._clock = clock

    # -- feeding -----------------------------------------------------------

    def record(
        self,
        key: Sequence[int],
        width: int,
        op: str,
        seconds: Optional[float] = None,
        count: int = 1,
    ) -> None:
        """Charge ``count`` ops of kind ``op`` to the region holding
        ``key`` (an encoded, unsigned key of per-dim ``width`` bits).

        ``seconds``, when given, feeds the region's latency EWMA.
        """
        levels = self.levels if width >= self.levels else width
        shift = width - levels
        k = len(key)
        code = interleave([v >> shift for v in key], levels)
        bkey = (k, width, code)
        bucket = self._buckets.get(bkey)
        if bucket is None:
            bucket = ZHeatBucket(k, width, levels, code)
            self._buckets[bkey] = bucket
        now = self._clock()
        if bucket.score:
            bucket.score *= 0.5 ** (
                (now - bucket.last) / self.half_life_s
            )
        bucket.score += count
        bucket.last = now
        bucket.count += count
        bucket.ops[op] = bucket.ops.get(op, 0) + count
        if seconds is not None:
            if bucket.latency_count == 0:
                bucket.latency_ewma_s = seconds
            else:
                bucket.latency_ewma_s += _LATENCY_ALPHA * (
                    seconds - bucket.latency_ewma_s
                )
            bucket.latency_count += 1

    # -- reading -----------------------------------------------------------

    def top(self, n: int = 10) -> List[ZHeatBucket]:
        """The ``n`` hottest regions by decayed score, hottest first."""
        now = self._clock()
        hl = self.half_life_s
        ranked = sorted(
            self._buckets.values(),
            key=lambda b: (b.scored(now, hl), b.count, b.code),
            reverse=True,
        )
        return ranked[: max(0, n)]

    def snapshot(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """JSON-friendly view of the top ``n`` (or all) regions."""
        now = self._clock()
        hl = self.half_life_s
        buckets = self.top(n if n is not None else len(self._buckets))
        return [
            {
                "z_prefix": b.bits(),
                "code": b.code,
                "dims": b.dims,
                "width": b.width,
                "levels": b.levels,
                "ranges": [list(r) for r in b.ranges()],
                "count": b.count,
                "ops": dict(sorted(b.ops.items())),
                "score": round(b.scored(now, hl), 3),
                "latency_ewma_us": round(b.latency_ewma_s * 1e6, 3),
                "latency_samples": b.latency_count,
            }
            for b in buckets
        ]

    def render(self, n: int = 10, bar_width: int = 32) -> str:
        """Text histogram of the hottest regions, one line each."""
        now = self._clock()
        hl = self.half_life_s
        buckets = self.top(n)
        if not buckets:
            return "heat map: (no traffic recorded)\n"
        peak = max(b.scored(now, hl) for b in buckets) or 1.0
        lines = [
            f"heat map: top {len(buckets)} of {len(self._buckets)} "
            f"z-regions ({self.levels} bits/dim, "
            f"half-life {self.half_life_s:g}s)"
        ]
        for b in buckets:
            score = b.scored(now, hl)
            bar = "#" * max(1, round(bar_width * score / peak))
            ops = " ".join(
                f"{name}={b.ops[name]}" for name in sorted(b.ops)
            )
            lat = (
                f" ~{b.latency_ewma_s * 1e6:.1f}us"
                if b.latency_count
                else ""
            )
            lines.append(
                f"  z={b.bits()} {bar:<{bar_width}s} "
                f"score={score:8.1f} n={b.count}{lat}  [{ops}]"
            )
            lines.append(
                "    region "
                + " x ".join(
                    f"[{lo}, {hi}]" for lo, hi in b.ranges()
                )
            )
        return "\n".join(lines) + "\n"

    # -- lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Drop every bucket."""
        self._buckets.clear()

    def set_levels(self, levels: int) -> None:
        """Change the region depth; drops existing buckets (regions at
        different depths are not comparable)."""
        if levels <= 0:
            raise ValueError(f"levels must be positive, got {levels}")
        self.levels = levels
        self._buckets.clear()

    def __len__(self) -> int:
        return len(self._buckets)


#: The process-global heat map every feeding site reports into.
HEATMAP = ZHeatMap()


def get_heatmap() -> ZHeatMap:
    """The process-global :class:`ZHeatMap`."""
    return HEATMAP


def record(
    key: Sequence[int],
    width: int,
    op: str,
    seconds: Optional[float] = None,
) -> None:
    """Charge one op at ``key`` to the process-global heat map."""
    HEATMAP.record(key, width, op, seconds)


def record_region(
    key: Sequence[int],
    width: int,
    op: str,
    count: int = 1,
    seconds: Optional[float] = None,
) -> None:
    """Charge ``count`` ops at a representative ``key`` (e.g. a shard's
    lower bound) to the process-global heat map."""
    HEATMAP.record(key, width, op, seconds, count)


def top(n: int = 10) -> List[ZHeatBucket]:
    """Hottest regions of the process-global heat map."""
    return HEATMAP.top(n)


def snapshot(n: Optional[int] = None) -> List[Dict[str, Any]]:
    """JSON snapshot of the process-global heat map."""
    return HEATMAP.snapshot(n)


def render(n: int = 10) -> str:
    """Text histogram of the process-global heat map."""
    return HEATMAP.render(n)


def reset() -> None:
    """Drop all buckets of the process-global heat map."""
    HEATMAP.reset()


def set_levels(levels: int) -> None:
    """Re-depth the process-global heat map (drops buckets)."""
    HEATMAP.set_levels(levels)


def timed_iter(
    it: Any, key: Sequence[int], width: int, op: str
) -> Any:
    """Wrap a scan iterator so that, once it finishes (or is dropped),
    one ``op`` at ``key`` is charged with the wall time from first
    ``next`` to exhaustion.  Consumer time between pulls is included --
    this is request-level telemetry, not a kernel microbenchmark."""
    from time import perf_counter

    t0 = perf_counter()
    try:
        for item in it:
            yield item
    finally:
        HEATMAP.record(key, width, op, perf_counter() - t0)
