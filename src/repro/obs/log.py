"""Shared logging helper (the ``repro.*`` logger hierarchy).

The library itself never configures handlers -- it only emits through
:func:`get_logger`, so embedding applications keep full control.  The
CLIs (``repro.tool``) call :func:`configure_logging` with their
``-v``/``-vv`` count to attach one stderr handler to the ``repro`` root
logger:

====== =========== =====================================================
flags  level       what you see
====== =========== =====================================================
(none) WARNING     only problems (e.g. snapshot discard failures)
-v     INFO        lifecycle events (pool start/stop, republish counts)
-vv    DEBUG       per-shard republish/attach detail
====== =========== =====================================================
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["configure_logging", "get_logger", "verbosity_to_level"]

_ROOT = "repro"
#: The handler installed by configure_logging (kept so repeated calls
#: reconfigure instead of stacking duplicate handlers).
_handler: Optional[logging.Handler] = None


def get_logger(name: str = "") -> logging.Logger:
    """Logger ``repro.<name>`` (or the ``repro`` root for empty name)."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v`` count to a :mod:`logging` level."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach (or retune) one stream handler on the ``repro`` logger.

    Idempotent: calling again replaces the previous handler's stream and
    level instead of stacking a second handler.  Returns the root
    ``repro`` logger.
    """
    global _handler
    logger = get_logger()
    level = verbosity_to_level(verbosity)
    if _handler is not None:
        logger.removeHandler(_handler)
    _handler = logging.StreamHandler(stream or sys.stderr)
    _handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(_handler)
    logger.setLevel(level)
    return logger
