"""A small in-process metrics registry (Counter / Gauge / Histogram).

Prometheus-shaped but dependency-free: metric families live in one
global :class:`Registry`, children are addressed by label values, and
the whole state renders either as Prometheus text exposition
(:meth:`Registry.render_prometheus`) or as a JSON-friendly dict
(:meth:`Registry.dump_json`).

Design constraints, in order:

1. **Cheap to touch.**  ``Counter.inc`` is one attribute add; histogram
   observation is one :func:`bisect.bisect_left` over a short tuple.
   Probes only run when :mod:`repro.obs.runtime` is enabled, but the
   enabled path still sits inside query loops.
2. **Fixed buckets.**  Histograms use fixed log-spaced buckets chosen at
   construction (:data:`LATENCY_BUCKETS_S` for seconds,
   :data:`DEPTH_BUCKETS` for tree depths), so rendering never needs to
   re-bucket and two processes' dumps are mergeable.
3. **Idempotent registration.**  Re-requesting a family with the same
   name returns the existing one, so probe modules can be re-imported
   (and tests can re-register) freely.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEPTH_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricFamily",
    "Registry",
    "get_registry",
]

#: Log-spaced latency buckets (seconds): 1 us .. ~4.2 s, factor 4 apart.
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    1e-6 * 4**i for i in range(12)
)

#: Power-of-two depth buckets (tree depth is bounded by the bit width).
DEPTH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers stay integral)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(
    labelnames: Sequence[str], labelvalues: Sequence[str]
) -> str:
    if not labelnames:
        return ""
    parts = ", ".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + parts + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: "int | float" = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> "int | float":
        """Current count."""
        return self._value

    def _reset(self) -> None:
        self._value = 0

    def _render(self, name: str, suffix: str) -> List[str]:
        return [f"{name}{suffix} {_format_value(self._value)}"]

    def _dump(self) -> Any:
        return self._value


class Gauge:
    """A value that can go up and down (plus a high-water helper)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def set(self, value: "int | float") -> None:
        """Set the gauge to ``value``."""
        self._value = value

    def inc(self, amount: "int | float" = 1) -> None:
        """Add ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: "int | float" = 1) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    def set_max(self, value: "int | float") -> None:
        """Raise the gauge to ``value`` if it is above the current value
        (high-water-mark semantics, e.g. the kNN heap size)."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> "int | float":
        """Current value."""
        return self._value

    def _reset(self) -> None:
        self._value = 0

    def _render(self, name: str, suffix: str) -> List[str]:
        return [f"{name}{suffix} {_format_value(self._value)}"]

    def _dump(self) -> Any:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus rendering."""

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(
        self, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        # One slot per finite bound plus the implicit +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: "int | float") -> None:
        """Record one observation."""
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative count per upper bound (Prometheus ``le`` labels)."""
        out: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            out[_format_value(bound)] = running
        out["+Inf"] = self._count
        return out

    def _reset(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def _render(self, name: str, suffix: str) -> List[str]:
        if suffix:
            # Merge the `le` label into the existing label set.
            base = suffix[:-1] + ', le="%s"}'
        else:
            base = '{le="%s"}'
        lines = []
        for bound, cumulative in self.bucket_counts().items():
            lines.append(
                f"{name}_bucket{base % bound} {cumulative}"
            )
        lines.append(f"{name}_sum{suffix} {_format_value(self._sum)}")
        lines.append(f"{name}_count{suffix} {self._count}")
        return lines

    def _dump(self) -> Any:
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": self.bucket_counts(),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with zero or more labelled children.

    Without label names the family has exactly one anonymous child and
    proxies ``inc``/``set``/``observe``/... straight to it, so unlabelled
    metrics read like plain instruments.
    """

    __slots__ = (
        "name",
        "help",
        "kind",
        "labelnames",
        "_buckets",
        "_children",
    )

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = self._make()

    def _make(self) -> Any:
        if self.kind == "histogram":
            if self._buckets is None:
                return Histogram()
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, *values: Any, **kv: Any) -> Any:
        """Child for one label-value combination (created on demand)."""
        if kv:
            if values:
                raise ValueError(
                    "pass label values positionally or by name, not both"
                )
            values = tuple(kv[name] for name in self.labelnames)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make()
            self._children[key] = child
        return child

    def children(self) -> Iterator[Tuple[Tuple[str, ...], Any]]:
        """Iterate ``(labelvalues, instrument)`` pairs, sorted."""
        return iter(sorted(self._children.items()))

    # -- unlabelled proxy ---------------------------------------------------

    def _solo(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled {self.labelnames}; call "
                f".labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: "int | float" = 1) -> None:
        self._solo().inc(amount)

    def dec(self, amount: "int | float" = 1) -> None:
        self._solo().dec(amount)

    def set(self, value: "int | float") -> None:
        self._solo().set(value)

    def set_max(self, value: "int | float") -> None:
        self._solo().set_max(value)

    def observe(self, value: "int | float") -> None:
        self._solo().observe(value)

    @property
    def value(self) -> Any:
        return self._solo().value

    @property
    def count(self) -> int:
        return self._solo().count

    @property
    def sum(self) -> float:
        return self._solo().sum

    def reset(self) -> None:
        """Zero every child (children created so far are kept)."""
        for child in self._children.values():
            child._reset()


class Registry:
    """All metric families of one process, renderable as a whole."""

    __slots__ = ("_families", "_collectors")

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: Dict[str, Any] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}{family.labelnames}"
                )
            return family
        family = MetricFamily(name, help_text, kind, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> MetricFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(
            name, help_text, "histogram", labelnames, buckets
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        """Family by name, or None."""
        return self._families.get(name)

    def families(self) -> Iterator[MetricFamily]:
        """All families, sorted by name."""
        for name in sorted(self._families):
            yield self._families[name]

    def reset(self) -> None:
        """Zero every instrument in the registry.

        Families (and any pre-bound children probe modules hold) are
        kept -- only values go to zero -- so resetting never orphans a
        probe.
        """
        for family in self._families.values():
            family.reset()

    # -- collectors --------------------------------------------------------

    def add_collector(self, name: str, fn: Any) -> None:
        """Register a zero-argument callable that refreshes derived
        metrics (e.g. gauges computed from live objects) just before
        each exposition.  Re-registering the same ``name`` replaces the
        previous collector, so modules can register at import time and
        be re-imported freely."""
        self._collectors[name] = fn

    def collect(self) -> None:
        """Run every registered collector (also called automatically by
        :meth:`render_prometheus` / :meth:`dump_json`)."""
        for fn in self._collectors.values():
            fn()

    # -- exposition --------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.children():
                suffix = _label_suffix(family.labelnames, labelvalues)
                lines.extend(child._render(family.name, suffix))
        return "\n".join(lines) + "\n"

    def dump_json(self) -> Dict[str, Any]:
        """JSON-friendly dump: ``{name: {type, help, values: [...]}}``."""
        self.collect()
        out: Dict[str, Any] = {}
        for family in self.families():
            values = []
            for labelvalues, child in family.children():
                values.append(
                    {
                        "labels": dict(
                            zip(family.labelnames, labelvalues)
                        ),
                        "value": child._dump(),
                    }
                )
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return out


#: The process-global registry every probe registers against.
REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global :class:`Registry`."""
    return REGISTRY
