"""Probe inventory: every instrument the hot paths report into.

One module so the whole surface is greppable (DESIGN.md §8 carries the
same table).  Hot code imports this module once and touches pre-bound
children (``ops_get``, ``switch_to_hc``, ...) so the enabled path pays
no label resolution; labelled families (per-shard, per-op) resolve
children at call time, which only ever happens with observability
enabled.

Naming follows Prometheus conventions: ``*_total`` for counters,
``*_seconds`` for latency histograms, bare names for gauges.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS_S,
    get_registry,
)

registry = get_registry()

# -- operation counts (PHTree API surface) ---------------------------------

ops = registry.counter(
    "repro_ops_total",
    "PH-tree operations by kind (put/get/contains/remove/query/...).",
    labelnames=("op",),
)
ops_put = ops.labels("put")
ops_get = ops.labels("get")
ops_contains = ops.labels("contains")
ops_remove = ops.labels("remove")
ops_update_key = ops.labels("update_key")
ops_query = ops.labels("query")
ops_query_approx = ops.labels("query_approx")
ops_knn = ops.labels("knn")
ops_get_many = ops.labels("get_many")
ops_query_many = ops.labels("query_many")

batch_keys = registry.counter(
    "repro_batch_keys_total",
    "Keys (get_many) / boxes (query_many) submitted through the batch "
    "engine.",
    labelnames=("op",),
)
batch_keys_get = batch_keys.labels("get_many")
batch_keys_query = batch_keys.labels("query_many")

# -- tree shape accounting (insert/delete paths) ---------------------------

insert_depth = registry.histogram(
    "repro_insert_depth",
    "Nodes on the root-to-entry path of each completed insert.",
    buckets=DEPTH_BUCKETS,
)
tree_nodes_created = registry.counter(
    "repro_tree_nodes_created_total",
    "Nodes spliced into a tree (root creation + conflict splits).",
)
tree_nodes_merged = registry.counter(
    "repro_tree_nodes_merged_total",
    "Nodes collapsed away (underfull merge after remove + root drop).",
)
node_switches = registry.counter(
    "repro_node_switches_total",
    "HC<->LHC container representation switches.",
    labelnames=("direction",),
)
switch_to_hc = node_switches.labels("lhc_to_hc")
switch_to_lhc = node_switches.labels("hc_to_lhc")

# -- point descents (get/contains and the write path) ----------------------

point_nodes_visited = registry.counter(
    "repro_point_nodes_visited_total",
    "Nodes traversed by single-key descents (get/contains).",
)
point_slots_scanned = registry.counter(
    "repro_point_slots_scanned_total",
    "Container probes issued by single-key descents (get/contains).",
)
write_nodes_visited = registry.counter(
    "repro_write_nodes_visited_total",
    "Nodes traversed by write descents (put/remove).",
)
write_slots_scanned = registry.counter(
    "repro_write_slots_scanned_total",
    "Container probes issued by write descents (put/remove).",
)

# -- the iterative range-scan kernel (core/kernel.py) ----------------------

kernel_nodes_visited = registry.counter(
    "repro_kernel_nodes_visited_total",
    "Nodes entered by the range-scan kernel (window + approx queries).",
)
kernel_hc_nodes_visited = registry.counter(
    "repro_kernel_hc_nodes_visited_total",
    "Kernel-visited nodes that were in the HC representation.",
)
kernel_lhc_nodes_visited = registry.counter(
    "repro_kernel_lhc_nodes_visited_total",
    "Kernel-visited nodes that were in the LHC representation.",
)
kernel_frames_pushed = registry.counter(
    "repro_kernel_frames_pushed_total",
    "Traversal frames pushed onto the kernel's explicit stack.",
)
kernel_slots_scanned = registry.counter(
    "repro_kernel_slots_scanned_total",
    "Slot fetches performed by the kernel (all frame modes).",
)
kernel_full_cover_flushes = registry.counter(
    "repro_kernel_full_cover_flushes_total",
    "Sub-trees flushed wholesale (node fully inside the query, or "
    "below the approximation slack).",
)
kernel_plain_scans = registry.counter(
    "repro_kernel_plain_scans_total",
    "Nodes entered in plain-scan mode (trivial masks m_L=0, m_U=full).",
)
kernel_mask_rejections = registry.counter(
    "repro_kernel_mask_rejections_total",
    "LHC slot addresses rejected by the m_L/m_U mask check.",
)
kernel_node_rejections = registry.counter(
    "repro_kernel_node_rejections_total",
    "Sub-nodes rejected by the region/box intersection test.",
)
kernel_postfix_drops = registry.counter(
    "repro_kernel_postfix_drops_total",
    "Entries rejected by the final per-dimension containment check.",
)
kernel_entries_yielded = registry.counter(
    "repro_kernel_entries_yielded_total",
    "Entries yielded by the range-scan kernel.",
)

# -- batch engine (core/batch.py) ------------------------------------------

batch_nodes_visited = registry.counter(
    "repro_batch_nodes_visited_total",
    "Nodes newly descended into by the get_many merge-join (shared "
    "path prefixes are counted once, which is the point).",
)
batch_slots_scanned = registry.counter(
    "repro_batch_slots_scanned_total",
    "Container probes issued by the get_many merge-join.",
)
qmany_nodes_visited = registry.counter(
    "repro_qmany_nodes_visited_total",
    "Nodes visited by the batched window-query walk (each node once "
    "per walk, however many boxes ride along).",
)
qmany_slots_scanned = registry.counter(
    "repro_qmany_slots_scanned_total",
    "Slots iterated by the batched window-query walk.",
)

# -- kNN engine (core/knn.py) ----------------------------------------------

knn_regions_expanded = registry.counter(
    "repro_knn_regions_expanded_total",
    "Node regions popped and expanded by the best-first kNN search.",
)
knn_heap_pushes = registry.counter(
    "repro_knn_heap_pushes_total",
    "Candidates (nodes + entries) pushed onto the kNN priority queue.",
)
knn_heap_high_water = registry.gauge(
    "repro_knn_heap_high_water",
    "Largest kNN priority-queue size seen since the last reset.",
)
knn_entries_yielded = registry.counter(
    "repro_knn_entries_yielded_total",
    "Entries yielded by the kNN engine.",
)

# -- sharded layer (parallel/sharded.py) -----------------------------------

shard_ops = registry.counter(
    "repro_shard_ops_total",
    "Operations routed to each shard of a ShardedPHTree.",
    labelnames=("shard", "op"),
)
shard_lock_wait = registry.histogram(
    "repro_shard_lock_wait_seconds",
    "Time spent acquiring a shard's read/write lock.",
    labelnames=("mode",),
    buckets=LATENCY_BUCKETS_S,
)
shard_lock_wait_read = shard_lock_wait.labels("read")
shard_lock_wait_write = shard_lock_wait.labels("write")

# -- snapshot pool (parallel/executor.py) ----------------------------------

snapshot_republish = registry.counter(
    "repro_snapshot_republish_total",
    "Shard snapshots (re)published into shared memory.",
)
snapshot_stale_invalidations = registry.counter(
    "repro_snapshot_stale_invalidations_total",
    "Superseded snapshots discarded because the shard generation moved.",
)
snapshot_discard_errors = registry.counter(
    "repro_snapshot_discard_errors_total",
    "Errors while unlinking superseded snapshot segments (logged and "
    "survived).",
)
snapshot_bytes = registry.gauge(
    "repro_snapshot_bytes",
    "Bytes currently published across all shard snapshots.",
)
freeze_arena_fast = registry.counter(
    "repro_freeze_arena_fast_total",
    "freeze() calls that serialised straight from arena slabs (no "
    "per-node object materialisation).",
)
fanout_tasks = registry.counter(
    "repro_fanout_tasks_total",
    "Per-shard tasks submitted to the snapshot process pool.",
    labelnames=("op",),
)
fanout_latency = registry.histogram(
    "repro_fanout_latency_seconds",
    "Wall time of one fan-out (submit to last result), by operation.",
    labelnames=("op",),
    buckets=LATENCY_BUCKETS_S,
)
fanout_failures = registry.counter(
    "repro_fanout_failures_total",
    "Fan-outs aborted by a worker or pool failure (the owning tree "
    "falls back to the live in-process engine).",
    labelnames=("op",),
)
snapshot_publish_failures = registry.counter(
    "repro_snapshot_publish_failures_total",
    "Failed attempts to publish a shard snapshot into shared memory "
    "(allocation or copy errors; reads fall back to the live engine).",
)

# -- learned index (repro/learned + core/frozen.py) ------------------------

learned_lookups = registry.counter(
    "repro_learned_lookups_total",
    "Frozen-tree reads that consulted the learned z-address model, by "
    "operation (point / window seek / knn seed).",
    labelnames=("op",),
)
learned_lookups_point = learned_lookups.labels("point")
learned_lookups_window = learned_lookups.labels("window")
learned_lookups_knn = learned_lookups.labels("knn")
learned_fallbacks = registry.counter(
    "repro_learned_fallbacks_total",
    "Learned-model probes that exceeded the error-bound contract (dead "
    "segment, float overflow or oversized scan span) and fell back to "
    "the exact engine, by operation.",
    labelnames=("op",),
)
learned_fallbacks_point = learned_fallbacks.labels("point")
learned_fallbacks_window = learned_fallbacks.labels("window")
learned_segments_consulted = registry.counter(
    "repro_learned_segments_consulted_total",
    "PLA segments the learned model binary-searched into (one per "
    "model-served probe).",
)
learned_prediction_error = registry.counter(
    "repro_learned_prediction_error_total",
    "Sum of |predicted rank - resolved rank| across model-served "
    "probes (divide by repro_learned_lookups_total for the mean).",
)

# -- durable store (store/engine.py) ---------------------------------------

store_wal_appends = registry.counter(
    "repro_store_wal_appends_total",
    "Group commits appended to the write-ahead log.",
)
store_wal_bytes = registry.counter(
    "repro_store_wal_bytes_total",
    "Framed bytes appended to the write-ahead log.",
)
store_flushes = registry.counter(
    "repro_store_flushes_total",
    "Memtable flushes (pending mutations frozen to segment files).",
)
store_compactions = registry.counter(
    "repro_store_compactions_total",
    "Segment-chain compactions (merge to one segment per shard).",
)
store_recoveries = registry.counter(
    "repro_store_recoveries_total",
    "Store opens that replayed an existing manifest + WAL.",
)
store_wal_replayed = registry.counter(
    "repro_store_wal_replayed_total",
    "WAL records replayed onto the segment set during recovery.",
)
store_torn_bytes = registry.counter(
    "repro_store_torn_bytes_total",
    "Torn or corrupt WAL tail bytes discarded during recovery.",
)
store_segments_live = registry.gauge(
    "repro_store_segments_live",
    "Segment-chain records referenced by the newest manifest.",
)


# -- lock health (core/concurrent.py) --------------------------------------

lock_timeouts = registry.counter(
    "repro_lock_timeouts_total",
    "ReadWriteLock acquisitions abandoned on timeout, by mode.",
    labelnames=("mode",),
)
lock_timeouts_read = lock_timeouts.labels("read")
lock_timeouts_write = lock_timeouts.labels("write")


# -- flush helpers (one call per instrumented operation) -------------------


def record_range_scan(
    nodes: int,
    hc_nodes: int,
    frames: int,
    slots: int,
    flushes: int,
    plain_scans: int,
    mask_rejections: int,
    node_rejections: int,
    postfix_drops: int,
    entries: int,
) -> None:
    """Publish one range-scan traversal's locally accumulated counts."""
    kernel_nodes_visited.inc(nodes)
    kernel_hc_nodes_visited.inc(hc_nodes)
    kernel_lhc_nodes_visited.inc(nodes - hc_nodes)
    kernel_frames_pushed.inc(frames)
    kernel_slots_scanned.inc(slots)
    kernel_full_cover_flushes.inc(flushes)
    kernel_plain_scans.inc(plain_scans)
    kernel_mask_rejections.inc(mask_rejections)
    kernel_node_rejections.inc(node_rejections)
    kernel_postfix_drops.inc(postfix_drops)
    kernel_entries_yielded.inc(entries)


def record_knn(
    regions: int, pushes: int, high_water: int, entries: int
) -> None:
    """Publish one kNN search's locally accumulated counts."""
    knn_regions_expanded.inc(regions)
    knn_heap_pushes.inc(pushes)
    knn_heap_high_water.set_max(high_water)
    knn_entries_yielded.inc(entries)


def record_shard_op(shard: int, op: str) -> None:
    """Count one operation against shard ``shard``."""
    shard_ops.labels(str(shard), op).inc()


# -- derived telemetry (refreshed by registry collectors) ------------------

heat_regions = registry.gauge(
    "repro_heat_regions",
    "Z-prefix regions currently tracked by the heat map.",
)
flight_recorder_events = registry.gauge(
    "repro_flight_recorder_events",
    "Events recorded by the flight recorder since its last clear "
    "(only the newest `capacity` remain in the ring).",
)


def _collect_obs_state() -> None:
    # Lazy imports: heat/recorder are siblings that may not be loaded
    # yet when this module is first imported by a core hot path.
    from repro.obs import heat as _heat
    from repro.obs import recorder as _recorder

    heat_regions.set(len(_heat.HEATMAP))
    flight_recorder_events.set(_recorder.RECORDER.seq)


registry.add_collector("obs_state", _collect_obs_state)
