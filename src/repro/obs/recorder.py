"""Always-on flight recorder: a lock-light ring of structured events.

The correctness harness (``repro.check``) can tell you *that* a drill
went red; this module remembers *what happened just before*.  A
:class:`FlightRecorder` keeps the last N structured events -- snapshot
republishes, plan-cache invalidations, HC<->LHC switches, splits and
merges, lock timeouts, injected faults -- in a fixed-size
:class:`collections.deque`, so a failing fuzz run or fault drill can
dump its tail as context.

Cost model, in order of how often each tier fires:

1. **Hot-path events** (op begin/end, split/merge, representation
   switches) are recorded only from code that already sits behind a
   ``runtime.enabled`` check, so the disabled path pays nothing.
2. **Rare structural events** (republish, publish failure, pool
   recycle, plan-cache invalidation, lock timeout, fault injection)
   are recorded unconditionally -- they happen a handful of times per
   process, and they are exactly the events a post-mortem needs.

"Lock-light" is literal: ``deque.append`` with a ``maxlen`` is atomic
under the GIL, and the monotonically increasing sequence number is the
only shared word besides the deque itself.  Readers (:meth:`dump`)
take a snapshot copy; they never block writers.
"""

from __future__ import annotations

from collections import deque
from time import monotonic
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "RECORDER",
    "clear",
    "dump",
    "get_recorder",
    "record",
    "render",
    "render_events",
]

#: Default ring size -- enough for "what led up to this" without turning
#: a dump into a log file.
DEFAULT_CAPACITY = 256

#: ``(seq, t_monotonic, kind, detail)``
Event = Tuple[int, float, str, Dict[str, Any]]


class FlightRecorder:
    """Fixed-size ring buffer of ``(seq, ts, kind, detail)`` events."""

    __slots__ = ("_ring", "_seq", "capacity")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, kind: str, **detail: Any) -> None:
        """Append one event; the oldest event falls off when full."""
        self._seq += 1
        self._ring.append((self._seq, monotonic(), kind, detail))

    def dump(self, last: Optional[int] = None) -> List[Event]:
        """Snapshot of the newest ``last`` events (all, by default),
        oldest first.  Safe to call while writers are appending."""
        events = list(self._ring)
        if last is not None and last >= 0:
            events = events[len(events) - min(last, len(events)):]
        return events

    def render(self, last: Optional[int] = None) -> str:
        """Human-readable tail, one event per line, oldest first.

        Timestamps print relative to the newest event (``-0.000s`` is
        the most recent), which survives process restarts better than
        absolute monotonic readings.
        """
        events = self.dump(last)
        if not events:
            return "flight recorder: (empty)\n"
        newest = events[-1][1]
        total = self._seq
        lines = [
            f"flight recorder: last {len(events)} of {total} events"
        ]
        for seq, ts, kind, detail in events:
            extra = " ".join(
                f"{key}={detail[key]!r}" for key in sorted(detail)
            )
            lines.append(
                f"  #{seq:<6d} {ts - newest:+9.3f}s  {kind:<24s} {extra}"
            )
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        """Drop all events and restart the sequence counter."""
        self._ring.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def seq(self) -> int:
        """Total events recorded since the last :meth:`clear`."""
        return self._seq


#: The process-global recorder every event site reports into.
RECORDER = FlightRecorder()


def get_recorder() -> FlightRecorder:
    """The process-global :class:`FlightRecorder`."""
    return RECORDER


def record(kind: str, **detail: Any) -> None:
    """Record one event into the process-global recorder."""
    RECORDER.record(kind, **detail)


def dump(last: Optional[int] = None) -> List[Event]:
    """Snapshot of the process-global recorder (oldest first)."""
    return RECORDER.dump(last)


def render(last: Optional[int] = None) -> str:
    """Human-readable tail of the process-global recorder."""
    return RECORDER.render(last)


def clear() -> None:
    """Empty the process-global recorder."""
    RECORDER.clear()


def render_events(events: List[Event]) -> str:
    """Render a previously captured :meth:`FlightRecorder.dump` list --
    e.g. a tail carried on a failure object after the live ring has
    moved on."""
    if not events:
        return "flight recorder: (empty)\n"
    newest = events[-1][1]
    lines = [f"flight recorder: {len(events)} captured event(s)"]
    for seq, ts, kind, detail in events:
        extra = " ".join(
            f"{key}={detail[key]!r}" for key in sorted(detail)
        )
        lines.append(
            f"  #{seq:<6d} {ts - newest:+9.3f}s  {kind:<24s} {extra}"
        )
    return "\n".join(lines) + "\n"
