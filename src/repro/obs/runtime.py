"""The observability on/off switch (the zero-cost-off contract).

Every probe in the hot paths guards itself with a *single* check of the
module-level :data:`enabled` flag -- one module attribute load and a
truth test per operation (or, for the traversal kernels, one check per
*call*, after which the uninstrumented engine runs untouched).  With the
flag off -- the default -- no counter is touched, no label is resolved,
no timestamp is taken; ``tests/obs/test_overhead.py`` pins the disabled
overhead of the ``get_many``/``query`` hot paths at <= 5%.

Hot modules must read the flag through the module object, never by
``from repro.obs.runtime import enabled`` (which would snapshot the
value at import time)::

    from repro.obs import runtime as _rt
    ...
    if _rt.enabled:
        _probes.ops_get.inc()

The flag is process-local: worker processes spawned by
:mod:`repro.parallel.executor` start with observability disabled, so the
parent's exposition covers the parent-side fan-out (submit latency,
republish counts), not the workers' internal traversals.
"""

from __future__ import annotations

__all__ = ["disable", "enable", "enabled", "is_enabled"]

#: The global switch.  Mutate only through :func:`enable`/:func:`disable`.
enabled = False


def enable() -> None:
    """Turn all probes on (metrics start accumulating immediately)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn all probes off (the default; hot paths revert to the
    uninstrumented engines)."""
    global enabled
    enabled = False


def is_enabled() -> bool:
    """Current state of the switch (for callers that want a function)."""
    return enabled
