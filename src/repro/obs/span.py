"""Request-scoped spans: timing a query across the shard fan-out.

One sharded query touches many hops -- the router picks shards, each
shard waits for its read lock, the kernel scans, results merge, and a
:class:`~repro.parallel.executor.SnapshotPool` may run parts in worker
processes.  Aggregate histograms (PR 3) tell you the *distribution*;
this module answers "where did **this** request's time go".

A :class:`Trace` is propagated through a :mod:`contextvars` variable,
so any layer can attach spans without plumbing arguments.  The cost
contract mirrors the rest of the obs layer:

- With no active trace, :func:`current_trace` is one ``ContextVar.get``
  returning ``None``; span sites test that and skip.  Span sites live
  only in the sharded/parallel call layer, never inside per-node
  kernel loops.
- Timestamps use :func:`time.monotonic`, which on Linux is the
  system-wide ``CLOCK_MONOTONIC`` -- worker processes stamp spans on
  the same clock, so shipped-back spans land on the parent's timeline
  without translation.

Remote (worker-side) spans travel as plain ``(name, start, end)``
tuples appended to the worker's result and re-attached via
:meth:`Trace.add_remote`.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from contextvars import ContextVar
from time import monotonic
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Trace",
    "current_trace",
    "maybe_span",
    "start_trace",
]

#: Worker-side wire format: ``(name, start, end)``.
RemoteSpan = Tuple[str, float, float]

_trace_ids = itertools.count(1)

_current: ContextVar[Optional["Trace"]] = ContextVar(
    "repro_trace", default=None
)


class Span:
    """One timed hop of a request."""

    __slots__ = ("name", "start", "end", "labels")

    def __init__(
        self,
        name: str,
        start: float,
        end: float,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.labels = labels or {}

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start,
            "end_s": self.end,
            "duration_us": round(self.duration_s * 1e6, 3),
            "labels": dict(self.labels),
        }

    def __repr__(self) -> str:
        extra = "".join(
            f" {k}={v!r}" for k, v in sorted(self.labels.items())
        )
        return (
            f"Span({self.name}{extra}, {self.duration_s * 1e6:.1f}us)"
        )


class Trace:
    """All spans of one request, on one monotonic timeline."""

    __slots__ = ("trace_id", "t0", "t1", "spans")

    def __init__(self, trace_id: Optional[int] = None) -> None:
        self.trace_id = (
            trace_id if trace_id is not None else next(_trace_ids)
        )
        self.t0 = monotonic()
        self.t1: Optional[float] = None
        self.spans: List[Span] = []

    # -- recording ---------------------------------------------------------

    def add(
        self, name: str, start: float, end: float, **labels: Any
    ) -> Span:
        """Attach one already-timed span (monotonic timestamps)."""
        span = Span(name, start, end, labels)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **labels: Any) -> Iterator[Span]:
        """Time a ``with`` block as one span."""
        start = monotonic()
        span = Span(name, start, start, labels)
        try:
            yield span
        finally:
            span.end = monotonic()
            self.spans.append(span)

    def add_remote(
        self, spans: Sequence[RemoteSpan], **labels: Any
    ) -> None:
        """Attach worker-side ``(name, start, end)`` spans, tagging each
        with ``labels`` (e.g. ``shard=3``).  Workers share the parent's
        ``CLOCK_MONOTONIC``, so timestamps need no translation."""
        for name, start, end in spans:
            self.spans.append(Span(name, start, end, dict(labels)))

    def finish(self) -> None:
        """Close the trace's overall window."""
        if self.t1 is None:
            self.t1 = monotonic()

    # -- reading -----------------------------------------------------------

    @property
    def duration_s(self) -> float:
        end = self.t1 if self.t1 is not None else monotonic()
        return max(0.0, end - self.t0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "duration_us": round(self.duration_s * 1e6, 3),
            "spans": [
                s.to_dict()
                for s in sorted(self.spans, key=lambda s: s.start)
            ],
        }

    def render(self, width: int = 40) -> str:
        """Text waterfall: one bar per span on the trace timeline."""
        total = self.duration_s or 1e-9
        lines = [
            f"span waterfall: trace {self.trace_id}, "
            f"{len(self.spans)} spans, {total * 1e3:.3f} ms total"
        ]
        for span in sorted(
            self.spans, key=lambda s: (s.start, s.end, s.name)
        ):
            offset = min(max(span.start - self.t0, 0.0), total)
            left = int(width * offset / total)
            bar = max(1, round(width * span.duration_s / total))
            bar = min(bar, width - left) or 1
            lane = " " * left + "=" * bar
            extra = " ".join(
                f"{k}={v}" for k, v in sorted(span.labels.items())
            )
            label = f"{span.name} {extra}".strip()
            lines.append(
                f"  {label:<24s} |{lane:<{width}s}| "
                f"{span.duration_s * 1e6:9.1f}us "
                f"@+{offset * 1e6:.1f}us"
            )
        return "\n".join(lines) + "\n"


# -- context propagation ---------------------------------------------------


def current_trace() -> Optional[Trace]:
    """The trace active in this context, or ``None``."""
    return _current.get()


@contextmanager
def start_trace(
    trace_id: Optional[int] = None,
) -> Iterator[Trace]:
    """Open a trace for the ``with`` block and make it the context's
    current trace.  Nested calls stack; the outer trace is restored on
    exit."""
    trace = Trace(trace_id)
    token = _current.set(trace)
    try:
        yield trace
    finally:
        trace.finish()
        _current.reset(token)


@contextmanager
def maybe_span(
    trace: Optional[Trace], name: str, **labels: Any
) -> Iterator[Optional[Span]]:
    """``trace.span(...)`` when a trace is given, no-op otherwise."""
    if trace is None:
        yield None
        return
    with trace.span(name, **labels) as span:
        yield span
