"""``explain()``-style structured traces for single queries.

:func:`explain_query` re-runs one window (or approximate-window) query
through a recording traversal that takes exactly the decisions of the
production kernel (:func:`repro.core.kernel.range_scan`): same node
admission test, same full-cover flush rule, same trivial-mask plain-scan
degradation, same postfix filter.  Instead of being fast it writes one
:class:`NodeRecord` per visited node -- which mode the node was walked
in, its masks, how many slots were scanned, which children were pushed
or rejected, how entries fared against the postfix filter.

:func:`explain_knn` does the same for the best-first kNN engine: one
:class:`KnnStep` per priority-queue pop, plus heap telemetry.

Traces are correctness-checked against the production engines by
``tests/obs/test_trace.py`` (same entries, same order) and are reachable
from the command line via ``repro.tool query --explain`` and
``repro.tool knn --explain``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import knn as knn_mod
from repro.core.node import Node

__all__ = [
    "KnnStep",
    "KnnTrace",
    "NodeRecord",
    "QueryTrace",
    "explain_knn",
    "explain_query",
]

Key = Tuple[int, ...]


@dataclass
class NodeRecord:
    """One visited node of a traced window query."""

    index: int
    depth: int
    path: Tuple[int, ...]
    post_len: int
    infix_len: int
    container: str  # "HC" | "LHC"
    mode: str  # "masked" | "scan" | "flush"
    mask_low: Optional[int]
    mask_high: Optional[int]
    slots_scanned: int = 0
    mask_rejections: int = 0
    children_pushed: int = 0
    children_rejected: int = 0
    entries_checked: int = 0
    entries_yielded: int = 0
    postfix_drops: int = 0

    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        out["path"] = list(self.path)
        return out

    def render(self) -> str:
        masks = (
            f" mL={self.mask_low:b} mU={self.mask_high:b}"
            if self.mode == "masked"
            else ""
        )
        path = "/".join(str(a) for a in self.path) or "root"
        return (
            f"#{self.index:<3d} depth={self.depth} at {path}: "
            f"{self.container} {self.mode}{masks} post_len={self.post_len} "
            f"slots={self.slots_scanned} "
            f"children +{self.children_pushed}/-{self.children_rejected} "
            f"mask_rej={self.mask_rejections} "
            f"entries {self.entries_yielded}/{self.entries_checked} "
            f"(postfix_drop={self.postfix_drops})"
        )


@dataclass
class QueryTrace:
    """Structured trace of one window query."""

    box_min: Key
    box_max: Key
    slack_bits: int
    records: List[NodeRecord] = field(default_factory=list)
    results: List[Tuple[Key, Any]] = field(default_factory=list)
    truncated: bool = False
    totals: Dict[str, int] = field(
        default_factory=lambda: {
            "nodes_visited": 0,
            "hc_nodes_visited": 0,
            "lhc_nodes_visited": 0,
            "slots_scanned": 0,
            "mask_rejections": 0,
            "full_cover_flushes": 0,
            "plain_scans": 0,
            "children_rejected": 0,
            "postfix_drops": 0,
            "entries_yielded": 0,
        }
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "box_min": list(self.box_min),
            "box_max": list(self.box_max),
            "slack_bits": self.slack_bits,
            "totals": dict(self.totals),
            "n_results": len(self.results),
            "truncated": self.truncated,
            "nodes": [r.to_dict() for r in self.records],
        }

    def render(self) -> str:
        lines = [
            f"window query trace: box={list(self.box_min)} .. "
            f"{list(self.box_max)}"
            + (f" slack_bits={self.slack_bits}" if self.slack_bits else "")
        ]
        lines.extend(record.render() for record in self.records)
        if self.truncated:
            lines.append(
                f"... trace truncated at {len(self.records)} node "
                f"records (totals cover the full traversal)"
            )
        totals = ", ".join(
            f"{k}={v}" for k, v in sorted(self.totals.items())
        )
        lines.append(f"totals: {totals}")
        lines.append(f"results: {len(self.results)} entr(ies)")
        return "\n".join(lines)


def explain_query(
    tree: Any,
    box_min: Sequence[int],
    box_max: Sequence[int],
    slack_bits: int = 0,
    max_records: int = 512,
) -> QueryTrace:
    """Trace one window query over a :class:`~repro.core.phtree.PHTree`.

    Yields the exact result set (and order) of
    ``tree.query(box_min, box_max)`` (or ``query_approx`` for
    ``slack_bits > 0``) in ``trace.results`` while recording a
    :class:`NodeRecord` per visited node.  ``max_records`` bounds the
    per-node detail on huge traversals; totals always cover the whole
    walk.
    """
    if slack_bits < 0:
        raise ValueError(f"slack_bits must be >= 0, got {slack_bits}")
    bmin = tree._check_key(box_min)
    bmax = tree._check_key(box_max)
    trace = QueryTrace(bmin, bmax, slack_bits)
    root = tree.root
    if root is None or any(lo > hi for lo, hi in zip(bmin, bmax)):
        return trace
    k = len(bmin)
    full = (1 << k) - 1
    if slack_bits > 0:
        slack = (1 << slack_bits) - 1
        lo_chk = tuple(v - slack for v in bmin)
        hi_chk = tuple(v + slack for v in bmax)
    else:
        lo_chk = bmin
        hi_chk = bmax
    totals = trace.totals
    records = trace.records
    results = trace.results

    def classify(node: Node) -> Optional[Tuple[bool, bool, int, int]]:
        """The kernel's fused intersection/coverage/mask computation:
        ``(hit, inside, m_L, m_U)`` (None when the node misses the
        box)."""
        post = node.post_len
        free = (1 << (post + 1)) - 1
        ml = mh = 0
        inside = True
        for nlo, lo, hi in zip(node.prefix, bmin, bmax):
            nhi = nlo | free
            if hi < nlo or lo > nhi:
                return None
            if nlo < lo or nhi > hi:
                inside = False
            if lo < nlo:
                lo = nlo
            if hi > nhi:
                hi = nhi
            ml = (ml << 1) | ((lo >> post) & 1)
            mh = (mh << 1) | ((hi >> post) & 1)
        return True, inside, ml, mh

    def record_node(
        node: Node, depth: int, path: Tuple[int, ...], mode: str,
        ml: Optional[int], mh: Optional[int],
    ) -> NodeRecord:
        totals["nodes_visited"] += 1
        is_hc = node.container.is_hc
        totals["hc_nodes_visited" if is_hc else "lhc_nodes_visited"] += 1
        if mode == "scan":
            totals["plain_scans"] += 1
        rec = NodeRecord(
            index=totals["nodes_visited"] - 1,
            depth=depth,
            path=path,
            post_len=node.post_len,
            infix_len=node.infix_len,
            container="HC" if is_hc else "LHC",
            mode=mode,
            mask_low=ml,
            mask_high=mh,
        )
        if len(records) < max_records:
            records.append(rec)
        else:
            trace.truncated = True
        return rec

    def visit(
        node: Node,
        depth: int,
        path: Tuple[int, ...],
        mode: str,
        ml: Optional[int],
        mh: Optional[int],
    ) -> None:
        rec = record_node(node, depth, path, mode, ml, mh)
        for address, slot in node.items():
            rec.slots_scanned += 1
            totals["slots_scanned"] += 1
            if mode == "masked" and (
                (address | ml) != address or (address & mh) != address
            ):
                rec.mask_rejections += 1
                totals["mask_rejections"] += 1
                continue
            if isinstance(slot, Node):
                child_path = path + (address,)
                if mode == "flush":
                    rec.children_pushed += 1
                    visit(slot, depth + 1, child_path, "flush", None, None)
                    continue
                verdict = classify(slot)
                if verdict is None:
                    rec.children_rejected += 1
                    totals["children_rejected"] += 1
                    continue
                _, inside, cml, cmh = verdict
                rec.children_pushed += 1
                if inside or slot.post_len < slack_bits:
                    totals["full_cover_flushes"] += 1
                    visit(slot, depth + 1, child_path, "flush", None, None)
                elif cml == 0 and cmh == full:
                    visit(slot, depth + 1, child_path, "scan", None, None)
                else:
                    visit(slot, depth + 1, child_path, "masked", cml, cmh)
            else:
                if mode == "flush":
                    rec.entries_yielded += 1
                    totals["entries_yielded"] += 1
                    results.append((slot.key, slot.value))
                    continue
                rec.entries_checked += 1
                key = slot.key
                for v, lo, hi in zip(key, lo_chk, hi_chk):
                    if v < lo or v > hi:
                        rec.postfix_drops += 1
                        totals["postfix_drops"] += 1
                        break
                else:
                    rec.entries_yielded += 1
                    totals["entries_yielded"] += 1
                    results.append((key, slot.value))

    verdict = classify(root)
    if verdict is None:
        return trace
    _, _, ml, mh = verdict
    # The root is never flushed, mirroring the kernel.
    if ml == 0 and mh == full:
        visit(root, 0, (), "scan", None, None)
    else:
        visit(root, 0, (), "masked", ml, mh)
    return trace


# ---------------------------------------------------------------------------
# kNN tracing
# ---------------------------------------------------------------------------


@dataclass
class KnnStep:
    """One priority-queue pop of a traced kNN search."""

    index: int
    kind: str  # "node" | "entry"
    distance: Any
    heap_size: int  # size after the pop (and, for nodes, the expansion)
    post_len: Optional[int] = None
    children_pushed: int = 0
    key: Optional[Key] = None
    rank: Optional[int] = None  # 1-based result rank for entries

    def to_dict(self) -> Dict[str, Any]:
        out = dict(self.__dict__)
        if self.key is not None:
            out["key"] = list(self.key)
        return out

    def render(self) -> str:
        if self.kind == "node":
            return (
                f"#{self.index:<3d} pop node  d>={self.distance} "
                f"post_len={self.post_len} pushed={self.children_pushed} "
                f"heap={self.heap_size}"
            )
        return (
            f"#{self.index:<3d} pop entry d={self.distance} "
            f"key={self.key} -> result #{self.rank} heap={self.heap_size}"
        )


@dataclass
class KnnTrace:
    """Structured trace of one kNN search."""

    query: Key
    n: int
    steps: List[KnnStep] = field(default_factory=list)
    results: List[Tuple[Key, Any]] = field(default_factory=list)
    truncated: bool = False
    totals: Dict[str, int] = field(
        default_factory=lambda: {
            "regions_expanded": 0,
            "heap_pushes": 0,
            "heap_high_water": 0,
            "entries_yielded": 0,
        }
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": list(self.query),
            "n": self.n,
            "totals": dict(self.totals),
            "n_results": len(self.results),
            "truncated": self.truncated,
            "steps": [s.to_dict() for s in self.steps],
        }

    def render(self) -> str:
        lines = [f"kNN trace: query={list(self.query)} n={self.n}"]
        lines.extend(step.render() for step in self.steps)
        if self.truncated:
            lines.append(
                f"... trace truncated at {len(self.steps)} steps "
                f"(totals cover the full search)"
            )
        totals = ", ".join(
            f"{k}={v}" for k, v in sorted(self.totals.items())
        )
        lines.append(f"totals: {totals}")
        lines.append(f"results: {len(self.results)} entr(ies)")
        return "\n".join(lines)


def explain_knn(
    tree: Any, key: Sequence[int], n: int = 1, max_records: int = 512
) -> KnnTrace:
    """Trace one kNN search over a :class:`~repro.core.phtree.PHTree`.

    Replays the best-first engine of :func:`repro.core.knn.knn_iter`
    (same distances, same Morton tie-break, so the same results in the
    same order) recording one :class:`KnnStep` per heap pop plus heap
    telemetry -- regions expanded and the queue's high-water mark.
    """
    qkey = tree._check_key(key)
    trace = KnnTrace(qkey, n)
    root = tree.root
    if root is None or n <= 0:
        return trace
    point_distance = knn_mod.squared_euclidean_int(qkey)
    region_distance = knn_mod.squared_euclidean_region_int(qkey)
    z_key = knn_mod.morton_tiebreak(tree.width)
    totals = trace.totals
    counter = itertools.count()
    lower, upper = root.region()
    heap: list = [
        (region_distance(lower, upper), z_key(lower), next(counter), root)
    ]
    totals["heap_pushes"] += 1
    totals["heap_high_water"] = 1
    node_cls = Node
    step_index = 0

    def add_step(step: KnnStep) -> None:
        if len(trace.steps) < max_records:
            trace.steps.append(step)
        else:
            trace.truncated = True

    while heap:
        dist, _, _, item = heapq.heappop(heap)
        if item.__class__ is node_cls:
            totals["regions_expanded"] += 1
            pushed = 0
            for _, slot in item.items():
                if slot.__class__ is node_cls:
                    lower = slot.prefix
                    free = (1 << (slot.post_len + 1)) - 1
                    heapq.heappush(
                        heap,
                        (
                            region_distance(
                                lower, tuple(p | free for p in lower)
                            ),
                            z_key(lower),
                            next(counter),
                            slot,
                        ),
                    )
                else:
                    heapq.heappush(
                        heap,
                        (
                            point_distance(slot.key),
                            z_key(slot.key),
                            next(counter),
                            slot,
                        ),
                    )
                pushed += 1
            totals["heap_pushes"] += pushed
            if len(heap) > totals["heap_high_water"]:
                totals["heap_high_water"] = len(heap)
            add_step(
                KnnStep(
                    index=step_index,
                    kind="node",
                    distance=dist,
                    heap_size=len(heap),
                    post_len=item.post_len,
                    children_pushed=pushed,
                )
            )
        else:
            trace.results.append((item.key, item.value))
            totals["entries_yielded"] += 1
            add_step(
                KnnStep(
                    index=step_index,
                    kind="entry",
                    distance=dist,
                    heap_size=len(heap),
                    key=item.key,
                    rank=len(trace.results),
                )
            )
            if len(trace.results) >= n:
                return trace
        step_index += 1
    return trace
