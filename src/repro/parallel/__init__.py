"""The parallel layer: z-prefix sharding and multi-core query fan-out.

The paper presents the PH-tree as a primary in-memory storage layout
whose shape is determined solely by the key set (Sections 1 and 3).
This package exploits the resulting trivially partitionable structure:

- :mod:`repro.parallel.router` -- pure z-prefix shard arithmetic,
- :mod:`repro.parallel.sharded` -- :class:`ShardedPHTree`, S independent
  locked PH-trees observationally identical to one tree,
- :mod:`repro.parallel.executor` -- process-pool query fan-out over
  frozen shard snapshots in shared memory.
"""

from repro.parallel.errors import (
    ParallelError,
    SnapshotPublishError,
    SnapshotReadError,
)
from repro.parallel.router import ZShardRouter
from repro.parallel.sharded import ShardedPHTree

__all__ = [
    "ParallelError",
    "ShardedPHTree",
    "SnapshotPublishError",
    "SnapshotReadError",
    "ZShardRouter",
]
