"""Typed failure surface of the parallel layer.

Everything the snapshot fan-out machinery can throw at a caller derives
from :class:`ParallelError`, so the owning
:class:`~repro.parallel.sharded.ShardedPHTree` (and any downstream user)
can catch one type and fall back to the live in-process read engines.
Infrastructure faults -- a killed worker, an exhausted shared-memory
arena -- degrade a read's *latency*, never its correctness.
"""

from __future__ import annotations

__all__ = [
    "ParallelError",
    "SnapshotPublishError",
    "SnapshotReadError",
]


class ParallelError(RuntimeError):
    """Base class for snapshot/fan-out infrastructure failures."""


class SnapshotPublishError(ParallelError):
    """Publishing a shard snapshot into shared memory failed
    (segment allocation or byte-stream copy)."""


class SnapshotReadError(ParallelError):
    """A process-pool fan-out failed to deliver results (worker death,
    broken pool, or a worker-side attach error)."""
