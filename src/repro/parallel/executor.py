"""Process-pool query fan-out over shared-memory snapshots.

CPython's GIL serialises the pure-Python tree traversal, so scaling
reads past one core means *processes* -- and shipping a live pointer
tree to a process is exactly the copy this layer exists to avoid.
Instead, every shard is published as a :func:`repro.core.frozen.freeze`
byte stream inside a :class:`multiprocessing.shared_memory.SharedMemory`
segment.  Workers attach the segment and wrap it in a
:class:`~repro.core.frozen.FrozenPHTree` *zero-copy* (the frozen reader
decodes bits straight out of the shared mapping), so the per-query cost
in a worker is O(traversal), not O(tree).

Staleness protocol: the owning :class:`~repro.parallel.sharded.ShardedPHTree`
bumps a per-shard generation counter under the shard's write lock on
every mutation.  A snapshot records the generation it was frozen at;
:meth:`SnapshotPool.refresh` republishes exactly the shards whose
counter moved (lazily, before a fan-out -- writes never block on
snapshot maintenance).  Every publication gets a fresh segment name, so
a worker can never confuse generations; superseded segments are
unlinked by the parent and vanish once the last attached worker evicts
them from its bounded LRU.
"""

from __future__ import annotations

import uuid
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from time import monotonic, perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.frozen import FrozenPHTree, freeze
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt
from repro.obs import span as _span
from repro.obs.log import get_logger
from repro.parallel.errors import (
    SnapshotPublishError,
    SnapshotReadError,
)

__all__ = ["SnapshotPool"]

Key = Tuple[int, ...]

#: Parent-side lifecycle/telemetry logger (workers stay silent: their
#: processes inherit no handler unless the embedding app installs one).
_log = get_logger("parallel.executor")

# ---------------------------------------------------------------------------
# Worker side: a bounded LRU of attached snapshots, keyed by segment name.
# Segment names are unique per publication, so a cache hit is always the
# right generation.

_ATTACH_LRU_SIZE = 16
_attached: "OrderedDict[str, Tuple[shared_memory.SharedMemory, FrozenPHTree]]" = (
    OrderedDict()
)


def _attach(name: str, value_codec: Any) -> FrozenPHTree:
    """Attach (or re-use) the snapshot segment ``name`` in this worker."""
    cached = _attached.get(name)
    if cached is not None:
        _attached.move_to_end(name)
        return cached[1]
    segment = shared_memory.SharedMemory(name=name)
    frozen = FrozenPHTree(segment.buf, value_codec)
    _attached[name] = (segment, frozen)
    while len(_attached) > _ATTACH_LRU_SIZE:
        _, (old_segment, old_frozen) = _attached.popitem(last=False)
        del old_frozen  # drop the memoryview before closing the mapping
        old_segment.close()
    return frozen


def _worker_window(
    name: str,
    value_codec: Any,
    box_min: Key,
    box_max: Key,
    want_spans: bool = False,
) -> Any:
    """One shard's window query, straight off the shared bytes.

    With ``want_spans`` the worker also returns ``(name, t0, t1)``
    span tuples timed on ``time.monotonic`` -- CLOCK_MONOTONIC is
    system-wide on Linux, so the parent can splice them into its own
    trace without clock translation.
    """
    if not want_spans:
        return list(_attach(name, value_codec).query(box_min, box_max))
    t0 = monotonic()
    frozen = _attach(name, value_codec)
    t1 = monotonic()
    rows = list(frozen.query(box_min, box_max))
    t2 = monotonic()
    return rows, [("attach", t0, t1), ("scan", t1, t2)]


def _worker_query_many(
    name: str,
    value_codec: Any,
    boxes: List[Tuple[Key, Key]],
    want_spans: bool = False,
) -> Any:
    """One shard's slice of a batched window query."""
    if not want_spans:
        frozen = _attach(name, value_codec)
        return [list(frozen.query(lo, hi)) for lo, hi in boxes]
    t0 = monotonic()
    frozen = _attach(name, value_codec)
    t1 = monotonic()
    rows = [list(frozen.query(lo, hi)) for lo, hi in boxes]
    t2 = monotonic()
    return rows, [("attach", t0, t1), ("scan", t1, t2)]


def _worker_knn(
    name: str,
    value_codec: Any,
    key: Key,
    n: int,
    want_spans: bool = False,
) -> Any:
    """One shard's k-nearest candidates (merged by the parent)."""
    if not want_spans:
        return _attach(name, value_codec).knn(key, n)
    t0 = monotonic()
    frozen = _attach(name, value_codec)
    t1 = monotonic()
    rows = frozen.knn(key, n)
    t2 = monotonic()
    return rows, [("attach", t0, t1), ("scan", t1, t2)]


# ---------------------------------------------------------------------------
# Parent side.


class _Snapshot:
    """One published shard snapshot: segment + frozen generation."""

    __slots__ = ("segment", "generation", "nbytes")

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        generation: int,
        nbytes: int,
    ) -> None:
        self.segment = segment
        self.generation = generation
        self.nbytes = nbytes


class SnapshotPool:
    """Publishes a sharded tree's shards as shared-memory snapshots and
    fans queries out over a process pool.

    The pool is owned by a :class:`~repro.parallel.sharded.ShardedPHTree`
    and is not part of the public API surface; use the tree's ``query`` /
    ``knn`` / ``query_many`` with ``workers > 0``.
    """

    def __init__(
        self,
        sharded: Any,
        workers: int,
        value_codec: Any,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._sharded = sharded
        self._workers = workers
        self._codec = value_codec
        self._snapshots: List[Optional[_Snapshot]] = [
            None for _ in range(sharded.n_shards)
        ]
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    @property
    def workers(self) -> int:
        """Pool size."""
        return self._workers

    def _pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("SnapshotPool is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
            _log.info(
                "started snapshot process pool (%d workers, %d shards)",
                self._workers,
                len(self._snapshots),
            )
        return self._executor

    # -- publication ---------------------------------------------------------

    def _publish(self, shard: int) -> _Snapshot:
        """Freeze shard ``shard`` under its read lock into a fresh
        segment (called only when the generation counter moved).

        Raises :class:`~repro.parallel.errors.SnapshotPublishError` when
        the segment cannot be allocated or filled; the previous snapshot
        (if any) stays installed, and the owning tree answers from the
        live engine instead.
        """
        locked = self._sharded._shards[shard]
        with locked.lock.read():
            generation = self._sharded._generations[shard]
            blob = freeze(
                locked.unsafe_tree,
                self._codec,
                learned=getattr(
                    self._sharded, "_learned_snapshots", False
                ),
            )
        try:
            segment = shared_memory.SharedMemory(
                create=True,
                size=max(1, len(blob)),
                name=f"phx{uuid.uuid4().hex[:16]}",
            )
        except Exception as exc:
            if _rt.enabled:
                _probes.snapshot_publish_failures.inc()
            _recorder.record(
                "snapshot_publish_failed", shard=shard, stage="allocate"
            )
            _log.warning(
                "failed to allocate snapshot segment for shard %d: %s",
                shard,
                exc,
            )
            raise SnapshotPublishError(
                f"cannot publish shard {shard}: {exc}"
            ) from exc
        try:
            segment.buf[: len(blob)] = blob
        except BaseException as exc:
            if _rt.enabled:
                _probes.snapshot_publish_failures.inc()
            _recorder.record(
                "snapshot_publish_failed", shard=shard, stage="fill"
            )
            _log.warning(
                "failed to fill snapshot segment for shard %d: %s",
                shard,
                exc,
            )
            try:
                segment.close()
                segment.unlink()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            raise SnapshotPublishError(
                f"cannot publish shard {shard}: {exc}"
            ) from exc
        _log.debug(
            "published shard %d generation %d (%d bytes, segment %s)",
            shard,
            generation,
            len(blob),
            segment.name,
        )
        return _Snapshot(segment, generation, len(blob))

    def refresh(self) -> int:
        """Republish every shard whose generation counter moved since
        its snapshot was frozen; returns how many were republished."""
        if self._closed:
            raise RuntimeError("SnapshotPool is closed")
        republished = 0
        for shard in range(len(self._snapshots)):
            snapshot = self._snapshots[shard]
            if (
                snapshot is not None
                and snapshot.generation
                == self._sharded._generations[shard]
            ):
                continue
            fresh = self._publish(shard)
            self._snapshots[shard] = fresh
            republished += 1
            _recorder.record(
                "snapshot_republish",
                shard=shard,
                generation=fresh.generation,
                nbytes=fresh.nbytes,
            )
            if _rt.enabled:
                _probes.snapshot_republish.inc()
            if snapshot is not None:
                if _rt.enabled:
                    _probes.snapshot_stale_invalidations.inc()
                self._discard(snapshot)
        if republished:
            _log.info(
                "republished %d stale shard snapshot(s), %d bytes "
                "published in total",
                republished,
                self.snapshot_bytes(),
            )
            if _rt.enabled:
                _probes.snapshot_bytes.set(self.snapshot_bytes())
        return republished

    @staticmethod
    def _discard(snapshot: _Snapshot) -> None:
        """Unlink a superseded segment (attached workers keep their
        mapping alive until LRU eviction).

        Unlink failures are logged and survived: a raced unlink (another
        unlinker got there first, or the platform already reclaimed the
        segment) must not fail the query that merely triggered snapshot
        maintenance.
        """
        name = snapshot.segment.name
        try:
            snapshot.segment.close()
            snapshot.segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            _log.debug("snapshot segment %s already unlinked", name)
        except Exception as exc:
            if _rt.enabled:
                _probes.snapshot_discard_errors.inc()
            _log.warning(
                "failed to discard snapshot segment %s: %s", name, exc
            )

    def snapshot_bytes(self) -> int:
        """Total bytes currently published across all shard snapshots."""
        return sum(s.nbytes for s in self._snapshots if s is not None)

    # -- fan-out -------------------------------------------------------------

    def _names(self, shards: Sequence[int]) -> List[str]:
        return [self._snapshots[s].segment.name for s in shards]

    def _fanout_failed(self, op: str, exc: BaseException) -> None:
        """Convert a worker/pool failure into a typed error.

        The (possibly broken) executor is recycled -- the next fan-out
        starts a fresh pool -- and the published snapshots stay valid,
        so one dead worker costs one restarted pool, never a wrong
        answer: the owning tree catches the typed error and re-answers
        from the live engine.
        """
        if _rt.enabled:
            _probes.fanout_failures.labels(op).inc()
        _recorder.record(
            "pool_recycled", op=op, error=type(exc).__name__
        )
        _log.warning(
            "%s fan-out failed (%s: %s); recycling the process pool",
            op,
            type(exc).__name__,
            exc,
        )
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        raise SnapshotReadError(f"{op} fan-out failed: {exc}") from exc

    def query(
        self, box_min: Key, box_max: Key, shards: Sequence[int]
    ) -> List[Tuple[Key, Any]]:
        """Window query fanned out over ``shards``; results arrive
        merged in z-order (= shard index order concatenation)."""
        trace = _span.current_trace()
        with _span.maybe_span(trace, "refresh"):
            self.refresh()
        pool = self._pool()
        obs = _rt.enabled
        if obs:
            start = perf_counter()
            _probes.fanout_tasks.labels("query").inc(len(shards))
            for shard in shards:
                _probes.record_shard_op(shard, "query")
        merged: List[Tuple[Key, Any]] = []
        want_spans = trace is not None
        t_fan = monotonic()
        try:
            futures = [
                pool.submit(
                    _worker_window,
                    name,
                    self._codec,
                    box_min,
                    box_max,
                    want_spans,
                )
                for name in self._names(shards)
            ]
            for shard, future in zip(shards, futures):
                part = future.result()
                if want_spans:
                    part, wspans = part
                    trace.add_remote(wspans, shard=shard)
                merged.extend(part)
        except Exception as exc:
            self._fanout_failed("query", exc)
        if want_spans:
            trace.add("fanout", t_fan, monotonic(), shards=len(shards))
        if obs:
            _probes.fanout_latency.labels("query").observe(
                perf_counter() - start
            )
        return merged

    def query_many(
        self,
        per_shard: "Dict[int, List[int]]",
        boxes: List[Tuple[Key, Key]],
        n_boxes: int,
    ) -> List[List[Tuple[Key, Any]]]:
        """Batched window queries: ``per_shard`` maps shard -> indices
        into ``boxes`` that intersect it.  Per-box outputs concatenate
        shard results in shard order, which is z-order."""
        trace = _span.current_trace()
        with _span.maybe_span(trace, "refresh"):
            self.refresh()
        pool = self._pool()
        ordered = sorted(per_shard.items())
        obs = _rt.enabled
        if obs:
            start = perf_counter()
            _probes.fanout_tasks.labels("query_many").inc(len(ordered))
            for shard, _indices in ordered:
                _probes.record_shard_op(shard, "query_many")
        results: List[List[Tuple[Key, Any]]] = [[] for _ in range(n_boxes)]
        want_spans = trace is not None
        t_fan = monotonic()
        try:
            futures = [
                (
                    shard,
                    indices,
                    pool.submit(
                        _worker_query_many,
                        self._snapshots[shard].segment.name,
                        self._codec,
                        [boxes[i] for i in indices],
                        want_spans,
                    ),
                )
                for shard, indices in ordered
            ]
            for shard, indices, future in futures:
                parts = future.result()
                if want_spans:
                    parts, wspans = parts
                    trace.add_remote(wspans, shard=shard)
                for index, part in zip(indices, parts):
                    results[index].extend(part)
        except Exception as exc:
            self._fanout_failed("query_many", exc)
        if want_spans:
            trace.add("fanout", t_fan, monotonic(), shards=len(ordered))
        if obs:
            _probes.fanout_latency.labels("query_many").observe(
                perf_counter() - start
            )
        return results

    def knn(self, key: Key, n: int) -> List[List[Tuple[Key, Any]]]:
        """Per-shard k-nearest candidate lists (every shard queried; the
        owning tree merges by ``(distance, z-code)``)."""
        trace = _span.current_trace()
        with _span.maybe_span(trace, "refresh"):
            self.refresh()
        pool = self._pool()
        shards = range(len(self._snapshots))
        obs = _rt.enabled
        if obs:
            start = perf_counter()
            _probes.fanout_tasks.labels("knn").inc(len(self._snapshots))
            for shard in shards:
                _probes.record_shard_op(shard, "knn")
        want_spans = trace is not None
        t_fan = monotonic()
        try:
            futures = [
                pool.submit(
                    _worker_knn, name, self._codec, key, n, want_spans
                )
                for name in self._names(shards)
            ]
            results = []
            for shard, future in zip(shards, futures):
                part = future.result()
                if want_spans:
                    part, wspans = part
                    trace.add_remote(wspans, shard=shard)
                results.append(part)
        except Exception as exc:
            self._fanout_failed("knn", exc)
        if want_spans:
            trace.add("fanout", t_fan, monotonic(), shards=len(self._snapshots))
        if obs:
            _probes.fanout_latency.labels("knn").observe(
                perf_counter() - start
            )
        return results

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and unlink every published segment."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            _log.info("snapshot process pool shut down")
        for snapshot in self._snapshots:
            if snapshot is not None:
                self._discard(snapshot)
        self._snapshots = [None for _ in self._snapshots]

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
