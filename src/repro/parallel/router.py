"""Z-prefix shard routing: cutting the key space into 2^b z-order runs.

The PH-tree's layout is fully determined by its key set (paper Section
3), so the tree over any key set equals the disjoint union of trees over
any partition of that set -- and the partition by the *top bits of the
Morton code* is the one that keeps every global operation cheap:

- each shard's key set occupies one contiguous z-order interval, so a
  globally z-sorted batch splits into per-shard runs by a linear scan
  (bulk build never re-sorts),
- each shard's region is an axis-aligned box (the top ``q`` or ``q + 1``
  bits of every coordinate are fixed, the rest are free), so window
  queries route by plain box intersection,
- shard index order *is* z-order, so per-shard query results concatenate
  into exactly the order the unsharded tree would produce.

The router is pure arithmetic: it owns no trees and no locks, only the
mapping ``key -> shard`` (via the process-wide byte spread table of
:func:`repro.encoding.lut.spread_table`, the same table the Morton
kernels and the batch z-sort keys run on) and the inverse geometry
``shard -> bounding box``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.encoding.lut import spread_table

__all__ = ["ZShardRouter"]

Key = Tuple[int, ...]


class ZShardRouter:
    """Routes ``width``-bit ``dims``-dimensional keys to ``2^b`` shards
    by the top ``b`` bits of their Morton code.

    >>> router = ZShardRouter(dims=2, width=8, shards=4)
    >>> router.shard_of((0, 0)), router.shard_of((255, 255))
    (0, 3)
    >>> router.bounds(2)
    ((128, 0), (255, 127))
    >>> router.shards_for_box((0, 0), (255, 0))
    [0, 2]
    """

    __slots__ = (
        "_dims",
        "_width",
        "_shards",
        "_bits",
        "_nlayers",
        "_bounds",
        "_table",
    )

    def __init__(self, dims: int, width: int, shards: int) -> None:
        if dims < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if shards < 1 or shards & (shards - 1):
            raise ValueError(
                f"shard count must be a power of two >= 1, got {shards}"
            )
        bits = shards.bit_length() - 1
        if bits > dims * width:
            raise ValueError(
                f"{shards} shards need {bits} z-prefix bits; a "
                f"{dims}x{width}-bit key space only has {dims * width}"
            )
        self._dims = dims
        self._width = width
        self._shards = shards
        self._bits = bits
        # Bit layers of the z-code the shard key spans (the last one may
        # be partial: only dimensions 0..r-1 contribute).
        self._nlayers = -(-bits // dims) if bits else 0
        # Shared process-wide spread table (see repro.encoding.lut);
        # shard keys rarely span more than 8 layers, so shard_of is
        # usually one table lookup per dimension.
        self._table: Optional[Tuple[int, ...]] = (
            spread_table(dims) if self._nlayers else None
        )
        self._bounds: List[Tuple[Key, Key]] = [
            self._compute_bounds(s) for s in range(shards)
        ]

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._dims

    @property
    def width(self) -> int:
        """Bit width ``w`` of each coordinate."""
        return self._width

    @property
    def n_shards(self) -> int:
        """Number of shards (a power of two)."""
        return self._shards

    @property
    def bits(self) -> int:
        """Number of top z-order bits forming the shard key."""
        return self._bits

    # -- key -> shard -------------------------------------------------------

    def shard_of(self, key: Sequence[int]) -> int:
        """The shard owning ``key``: its top ``bits`` Morton-code bits.

        Only the top ``nlayers`` bit layers are interleaved (via the
        byte spread table), never the full code.
        """
        bits = self._bits
        if not bits:
            return 0
        k = self._dims
        nlayers = self._nlayers
        drop = self._width - nlayers
        table = self._table
        code = 0
        shift = k - 1
        for value in key:
            top = value >> drop
            if top:
                if top < 256:
                    code |= table[top] << shift
                else:
                    byte_shift = shift
                    while top:
                        code |= table[top & 0xFF] << byte_shift
                        top >>= 8
                        byte_shift += 8 * k
            shift -= 1
        return code >> (k * nlayers - bits)

    def shard_of_z(self, z: int) -> int:
        """The shard owning an already-interleaved z-code: its top
        ``bits`` (callers holding sort keys skip the re-interleave)."""
        bits = self._bits
        if not bits:
            return 0
        return z >> (self._dims * self._width - bits)

    def z_interval(self, shard: int) -> Tuple[int, int]:
        """Inclusive ``[z_lo, z_hi]`` z-code interval owned by
        ``shard`` (prefix shards are contiguous z-intervals too)."""
        span_bits = self._dims * self._width - self._bits
        lo = shard << span_bits
        return lo, lo | ((1 << span_bits) - 1)

    # -- shard -> geometry ----------------------------------------------------

    def _compute_bounds(self, shard: int) -> Tuple[Key, Key]:
        """The shard's region as an inclusive coordinate box."""
        k = self._dims
        width = self._width
        bits = self._bits
        q, r = divmod(bits, k)
        fixed = [0] * k
        n_fixed = [q + 1 if d < r else q for d in range(k)]
        pos = bits
        for layer in range(self._nlayers):
            for d in range(k if layer < q else r):
                pos -= 1
                fixed[d] = (fixed[d] << 1) | ((shard >> pos) & 1)
        lower = tuple(
            fixed[d] << (width - n_fixed[d]) if n_fixed[d] else 0
            for d in range(k)
        )
        upper = tuple(
            lo | ((1 << (width - n_fixed[d])) - 1)
            for d, lo in enumerate(lower)
        )
        return lower, upper

    def bounds(self, shard: int) -> Tuple[Key, Key]:
        """Inclusive ``(lower, upper)`` corner of the shard's box."""
        return self._bounds[shard]

    def shards_for_box(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> List[int]:
        """Shards whose region intersects the inclusive query box,
        ascending (= z-order of the shard regions)."""
        hits = []
        for shard, (lower, upper) in enumerate(self._bounds):
            for lo, hi, slo, shi in zip(box_min, box_max, lower, upper):
                if hi < slo or lo > shi:
                    break
            else:
                hits.append(shard)
        return hits

    # -- sorted-run splitting ---------------------------------------------------

    def split_sorted(
        self, items: List[Tuple[Key, Any]]
    ) -> Iterator[Tuple[int, List[Tuple[Key, Any]]]]:
        """Cut a globally z-sorted entry list into per-shard runs.

        Yields ``(shard, run)`` for every non-empty shard, ascending.
        Because the shard key is a z-code *prefix*, each shard's entries
        are contiguous in the sorted order -- the cut is a single linear
        scan, and every run is itself z-sorted (ready for
        :func:`repro.core.bulk.bulk_load_sorted`).
        """
        start = 0
        n = len(items)
        while start < n:
            shard = self.shard_of(items[start][0])
            end = start + 1
            while end < n and self.shard_of(items[end][0]) == shard:
                end += 1
            yield shard, items[start:end]
            start = end
