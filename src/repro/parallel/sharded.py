"""ShardedPHTree: one PH-tree per z-prefix partition, queried in parallel.

Because the PH-tree's shape is a pure function of its key set (paper
Section 3), partitioning the key set by the top bits of the Morton code
yields S completely independent PH-trees whose *disjoint union is
observationally identical* to the single tree: every read and write
touches exactly the shards whose z-region it intersects, and per-shard
results concatenate (in shard index order) into exactly the unsharded
z-order.  The test suite pins that equivalence operation by operation,
order included.

Each shard is a plain :class:`~repro.core.phtree.PHTree` behind its own
:class:`~repro.core.concurrent.ReadWriteLock`, so writers to different
shards never contend.  Reads have two engines:

- **live** (default): traverse the locked shard trees in-process,
- **snapshot fan-out** (``workers > 0``): ship each query to a process
  pool working over frozen shard snapshots in shared memory
  (:mod:`repro.parallel.executor`), escaping the GIL for multi-core
  scaling.  A per-shard generation counter, bumped under the shard's
  write lock, invalidates snapshots lazily: the next fan-out republishes
  only the shards that changed.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from time import monotonic, perf_counter

from repro.core.bulk import bulk_load_sorted
from repro.core.concurrent import SynchronizedPHTree
from repro.core.knn import squared_euclidean_region_int
from repro.core.phtree import PHTree
from repro.core.serialize import NoneValueCodec
from repro.encoding.interleave import interleave
from repro.obs import heat as _heat
from repro.obs import probes as _probes
from repro.obs import recorder as _recorder
from repro.obs import runtime as _rt
from repro.obs import span as _span
from repro.obs.log import get_logger
from repro.parallel.errors import ParallelError
from repro.parallel.router import ZShardRouter

__all__ = ["ShardedPHTree"]

_log = get_logger("parallel.sharded")

_MISSING = object()

Key = Tuple[int, ...]


class _TimedGuard:
    """Lock guard measuring acquisition wait into a histogram and
    dropping op begin/end events into the flight recorder (only
    constructed on the observability-enabled path)."""

    __slots__ = ("_guard", "_hist", "_shard", "_op")

    def __init__(
        self, guard: Any, hist: Any, shard: int, op: str
    ) -> None:
        self._guard = guard
        self._hist = hist
        self._shard = shard
        self._op = op

    def __enter__(self) -> None:
        _recorder.record("op_begin", shard=self._shard, op=self._op)
        start = perf_counter()
        self._guard.__enter__()
        self._hist.observe(perf_counter() - start)

    def __exit__(self, *exc_info: object) -> None:
        self._guard.__exit__(*exc_info)
        _recorder.record("op_end", shard=self._shard, op=self._op)


class ShardedPHTree:
    """A z-prefix-partitioned, lock-per-shard, optionally multi-process
    PH-tree with the exact observable behaviour of one
    :class:`~repro.core.phtree.PHTree`.

    Parameters
    ----------
    dims, width, hc_mode:
        As for :class:`~repro.core.phtree.PHTree` (``width`` may be
        per-dimension; routing uses the maximum width).
    shards:
        Number of partitions; a power of two.  Each shard holds the keys
        whose top ``log2(shards)`` Morton-code bits equal its index.
    workers:
        ``0`` (default) answers every read from the live locked shards.
        ``> 0`` routes ``query``/``knn``/``query_many`` through a
        process pool over frozen shared-memory snapshots; values must
        then be encodable by ``value_codec``.
    value_codec:
        Codec used to freeze shard snapshots for the worker processes
        (default: the set-semantics ``NoneValueCodec``).
    router:
        ``"prefix"`` (default) keeps the fixed z-prefix
        :class:`~repro.parallel.router.ZShardRouter`.  ``"learned"``
        uses a :class:`~repro.learned.router.LearnedZRouter` with
        skew-aware equi-mass z-cuts (seeded uniform here; :meth:`build`
        fits the cuts to the data, :meth:`relearn_router` re-fits from
        a sample or the live heat map).  A router *instance* (anything
        with the same surface) is used as-is; ``shards`` is then taken
        from it.  All routers keep the z-interval parity contract, so
        results and their order are identical to the unsharded tree.
    learned_snapshots:
        When true, shard snapshots are frozen with a learned z-address
        trailer (:func:`repro.core.frozen.freeze` ``learned=True``), so
        snapshot-pool workers serve model-seeded reads zero-copy.

    >>> tree = ShardedPHTree(dims=2, width=8, shards=4)
    >>> tree.put((1, 2), None)
    >>> tree.put((200, 3), None)
    >>> len(tree), sorted(tree.shard_sizes().items())[:2]
    (2, [(0, 1), (1, 0)])
    >>> [key for key, _ in tree.query((0, 0), (255, 255))]
    [(1, 2), (200, 3)]
    """

    def __init__(
        self,
        dims: int,
        width: "int | Sequence[int]" = 64,
        shards: int = 8,
        workers: int = 0,
        value_codec: Any = NoneValueCodec,
        hc_mode: str = "auto",
        router: "str | Any" = "prefix",
        learned_snapshots: bool = False,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        proto = PHTree(dims=dims, width=width, hc_mode=hc_mode)
        if router == "prefix":
            router = ZShardRouter(dims, proto.width, shards)
        elif router == "learned":
            from repro.learned.router import LearnedZRouter

            router = LearnedZRouter.uniform(dims, proto.width, shards)
        elif isinstance(router, str):
            raise ValueError(
                f"router must be 'prefix', 'learned' or a router "
                f"instance, got {router!r}"
            )
        else:
            if router.dims != dims or router.width != proto.width:
                raise ValueError(
                    f"router shape ({router.dims}d/w{router.width}) "
                    f"does not match the tree "
                    f"({dims}d/w{proto.width})"
                )
            shards = router.n_shards
        shards = router.n_shards
        self._shards = [SynchronizedPHTree(proto)] + [
            SynchronizedPHTree(
                PHTree(dims=dims, width=width, hc_mode=hc_mode)
            )
            for _ in range(shards - 1)
        ]
        self._router = router
        self._width_arg = width
        self._hc_mode = hc_mode
        self._check_key = proto._check_key
        self._generations: List[int] = [0] * shards
        self._workers = workers
        self._codec = value_codec
        self._learned_snapshots = learned_snapshots
        self._pool: Optional[Any] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        entries: "Sequence[Tuple[Sequence[int], Any]]",
        dims: int,
        width: "int | Sequence[int]" = 64,
        shards: int = 8,
        workers: int = 0,
        value_codec: Any = NoneValueCodec,
        hc_mode: str = "auto",
        build_workers: int = 0,
        router: "str | Any" = "prefix",
        learned_snapshots: bool = False,
    ) -> "ShardedPHTree":
        """Bulk-build: one global z-sort, then a per-shard bottom-up
        :func:`~repro.core.bulk.bulk_load_sorted` over each contiguous
        run (no re-sorting, no per-insert node splicing; the sort's
        z-codes are handed straight to the per-shard builds).

        Duplicate keys keep the last value, matching repeated ``put``.
        ``router="learned"`` fits equi-mass z-cuts to the sorted batch
        itself -- the bulk stream *is* the distribution -- so a skewed
        key set still spreads evenly over the shards.
        ``build_workers > 1`` builds the independent shard trees on a
        thread pool; under CPython's GIL that overlaps little compute,
        but the runs are fully independent, so the build parallelises
        for free on GIL-free interpreters.
        """
        tree = cls(
            dims,
            width,
            shards=shards,
            workers=workers,
            value_codec=value_codec,
            hc_mode=hc_mode,
            router=router,
            learned_snapshots=learned_snapshots,
        )
        check = tree._check_key
        deduped: Dict[Key, Any] = {}
        for key, value in entries:
            deduped[check(key)] = value
        w = tree._router.width
        decorated = sorted(
            (interleave(key, w), key) for key in deduped
        )
        items = [(key, deduped[key]) for _, key in decorated]
        zs = [z for z, _ in decorated]
        if router == "learned":
            from repro.learned.router import LearnedZRouter

            tree._router = LearnedZRouter.from_sorted_zcodes(
                zs, dims, w, tree.n_shards
            )
        # Cut the sorted batch into per-shard runs straight from the
        # z-codes (works for any contiguous-z-interval router).
        shard_of_z = tree._router.shard_of_z
        runs: List[Tuple[int, List[Tuple[Key, Any]], List[int]]] = []
        start = 0
        n = len(items)
        while start < n:
            shard = shard_of_z(zs[start])
            end = start + 1
            while end < n and shard_of_z(zs[end]) == shard:
                end += 1
            runs.append((shard, items[start:end], zs[start:end]))
            start = end

        def install(
            shard: int,
            run: List[Tuple[Key, Any]],
            run_zs: List[int],
        ) -> None:
            built = bulk_load_sorted(
                run,
                dims,
                width,
                hc_mode=hc_mode,
                validate=False,
                zcodes=run_zs,
            )
            locked = tree._shards[shard]
            with locked.lock.write():
                locked._tree = built
                tree._generations[shard] += 1

        if build_workers > 1 and len(runs) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=build_workers) as pool:
                for future in [
                    pool.submit(install, shard, run, run_zs)
                    for shard, run, run_zs in runs
                ]:
                    future.result()
        else:
            for shard, run, run_zs in runs:
                install(shard, run, run_zs)
        return tree

    # -- topology ----------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions ``k``."""
        return self._router.dims

    @property
    def width(self) -> int:
        """Bit width ``w`` used for routing (the maximum per-dim width)."""
        return self._router.width

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self._router.n_shards

    @property
    def router(self) -> Any:
        """The shard router -- a z-prefix
        :class:`~repro.parallel.router.ZShardRouter` or a
        :class:`~repro.learned.router.LearnedZRouter` (pure arithmetic,
        shareable)."""
        return self._router

    @property
    def generations(self) -> Tuple[int, ...]:
        """Per-shard write generation counters (snapshot staleness)."""
        return tuple(self._generations)

    def relearn_router(self, source: str = "contents") -> None:
        """Re-fit learned equi-mass z-cuts and re-shard in place.

        ``source="contents"`` derives exact order-statistic cuts from
        the stored keys (the population itself); ``source="heatmap"``
        fits to the observability layer's live z-region traffic
        (:data:`repro.obs.heat.HEATMAP`), steering capacity toward hot
        regions rather than dense ones.  The shard count is unchanged;
        every shard tree is rebuilt bottom-up from its new z-interval
        run under an exclusive lock over all shards (one consistent
        re-partition, never a torn read).
        """
        from repro.learned.router import LearnedZRouter

        dims, w = self.dims, self.width
        guards = [locked.lock.write() for locked in self._shards]
        for guard in guards:
            guard.__enter__()
        try:
            # Shards are ascending z-intervals, so concatenating their
            # z-ordered item streams is already the global z-sort.
            items: List[Tuple[Key, Any]] = [
                entry
                for locked in self._shards
                for entry in locked.unsafe_tree.items()
            ]
            zs = [interleave(key, w) for key, _ in items]
            if source == "contents":
                router = LearnedZRouter.from_sorted_zcodes(
                    zs, dims, w, self.n_shards
                )
            elif source == "heatmap":
                router = LearnedZRouter.from_heatmap(
                    _heat.HEATMAP, dims, w, self.n_shards
                )
            else:
                raise ValueError(
                    f"source must be 'contents' or 'heatmap', "
                    f"got {source!r}"
                )
            shard_of_z = router.shard_of_z
            runs: Dict[int, Tuple[int, int]] = {}
            start = 0
            n = len(items)
            while start < n:
                shard = shard_of_z(zs[start])
                end = start + 1
                while end < n and shard_of_z(zs[end]) == shard:
                    end += 1
                runs[shard] = (start, end)
                start = end
            for index, locked in enumerate(self._shards):
                lo, hi = runs.get(index, (0, 0))
                locked._tree = bulk_load_sorted(
                    items[lo:hi],
                    dims,
                    self._width_arg,
                    hc_mode=self._hc_mode,
                    validate=False,
                    zcodes=zs[lo:hi],
                )
                self._generations[index] += 1
            self._router = router
        finally:
            for guard in reversed(guards):
                guard.__exit__(None, None, None)

    def shard_sizes(self) -> Dict[int, int]:
        """Entry count per shard index."""
        return {
            index: len(shard) for index, shard in enumerate(self._shards)
        }

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __bool__(self) -> bool:
        return any(len(shard) for shard in self._shards)

    # -- mutations (shard write lock + generation bump) ---------------------------

    def put(self, key: Sequence[int], value: Any = None) -> Any:
        """Insert/update; returns the previous value (or ``None``)."""
        key = self._check_key(key)
        index = self._router.shard_of(key)
        locked = self._shards[index]
        with self._write_guard(index, "put"):
            previous = locked.unsafe_tree.put(key, value)
            self._generations[index] += 1
        return previous

    def _write_guard(self, index: int, op: str) -> Any:
        """The shard's write lock; with observability enabled, also
        counts the op against the shard, feeds the z-region heat map
        at the shard's lower bound, and times the acquisition."""
        guard = self._shards[index].lock.write()
        if _rt.enabled:
            _probes.record_shard_op(index, op)
            _heat.record_region(
                self._router.bounds(index)[0], self._router.width, op
            )
            return _TimedGuard(
                guard, _probes.shard_lock_wait_write, index, op
            )
        return guard

    def _read_guard(self, index: int, op: str) -> Any:
        """The shard's read lock, instrumented like :meth:`_write_guard`."""
        guard = self._shards[index].lock.read()
        if _rt.enabled:
            _probes.record_shard_op(index, op)
            _heat.record_region(
                self._router.bounds(index)[0], self._router.width, op
            )
            return _TimedGuard(
                guard, _probes.shard_lock_wait_read, index, op
            )
        return guard

    def remove(self, key: Sequence[int], default: Any = _MISSING) -> Any:
        """Delete ``key``; :class:`KeyError` when absent unless
        ``default`` is given."""
        key = self._check_key(key)
        index = self._router.shard_of(key)
        locked = self._shards[index]
        with self._write_guard(index, "remove"):
            if default is _MISSING:
                value = locked.unsafe_tree.remove(key)
            else:
                value = locked.unsafe_tree.remove(key, default)
            self._generations[index] += 1
        return value

    def update_key(
        self, old_key: Sequence[int], new_key: Sequence[int]
    ) -> None:
        """Move an entry (same semantics as :meth:`PHTree.update_key`);
        cross-shard moves lock both shards in index order."""
        old_key = self._check_key(old_key)
        new_key = self._check_key(new_key)
        source = self._router.shard_of(old_key)
        target = self._router.shard_of(new_key)
        if source == target:
            locked = self._shards[source]
            with self._write_guard(source, "update_key"):
                locked.unsafe_tree.update_key(old_key, new_key)
                self._generations[source] += 1
            return
        first, second = sorted((source, target))
        with self._write_guard(first, "update_key"):
            with self._write_guard(second, "update_key"):
                source_tree = self._shards[source].unsafe_tree
                target_tree = self._shards[target].unsafe_tree
                if target_tree.contains(new_key):
                    raise ValueError(
                        f"target key already present: {new_key}"
                    )
                value = source_tree.remove(old_key)
                target_tree.put(new_key, value)
                self._generations[source] += 1
                self._generations[target] += 1

    def put_all(
        self, entries: "Sequence[Tuple[Sequence[int], Any]]"
    ) -> None:
        """Bulk insert, one lock acquisition per touched shard."""
        grouped: Dict[int, List[Tuple[Key, Any]]] = {}
        for key, value in entries:
            key = self._check_key(key)
            grouped.setdefault(self._router.shard_of(key), []).append(
                (key, value)
            )
        for index in sorted(grouped):
            locked = self._shards[index]
            with self._write_guard(index, "put_all"):
                put = locked.unsafe_tree.put
                for key, value in grouped[index]:
                    put(key, value)
                self._generations[index] += 1

    def clear(self) -> None:
        """Remove all entries from every shard."""
        for index, locked in enumerate(self._shards):
            with self._write_guard(index, "clear"):
                locked.unsafe_tree.clear()
                self._generations[index] += 1

    # -- point reads (live shard, shared lock) --------------------------------------

    def get(self, key: Sequence[int], default: Any = None) -> Any:
        """Value stored at ``key`` or ``default``."""
        key = self._check_key(key)
        index = self._router.shard_of(key)
        if _rt.enabled:
            with self._read_guard(index, "get"):
                return self._shards[index].unsafe_tree.get(key, default)
        return self._shards[index].get(key, default)

    def contains(self, key: Sequence[int]) -> bool:
        """Point query."""
        key = self._check_key(key)
        index = self._router.shard_of(key)
        if _rt.enabled:
            with self._read_guard(index, "contains"):
                return self._shards[index].unsafe_tree.contains(key)
        return self._shards[index].contains(key)

    def __contains__(self, key: Sequence[int]) -> bool:
        return self.contains(key)

    def get_many(
        self, keys: "Sequence[Sequence[int]]", default: Any = None
    ) -> List[Any]:
        """Batched ``get``: routed per shard, answered by each shard's
        batch engine under one read lock, in input order."""
        checked = [self._check_key(key) for key in keys]
        grouped: Dict[int, List[int]] = {}
        for position, key in enumerate(checked):
            grouped.setdefault(self._router.shard_of(key), []).append(
                position
            )
        results: List[Any] = [default] * len(checked)
        for index in sorted(grouped):
            positions = grouped[index]
            locked = self._shards[index]
            with self._read_guard(index, "get_many"):
                values = locked.unsafe_tree.get_many(
                    [checked[p] for p in positions], default
                )
            for position, value in zip(positions, values):
                results[position] = value
        return results

    # -- window queries -----------------------------------------------------------

    def query(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> List[Tuple[Key, Any]]:
        """Materialised window query, in exactly the unsharded z-order
        (shard regions are z-contiguous, so concatenation suffices).

        With ``workers > 0`` the query fans out over the snapshot
        process pool; any :class:`~repro.parallel.errors.ParallelError`
        (worker death, broken pool, publish failure) degrades to the
        live in-process engine -- same results, no infrastructure fault
        ever surfaces as a wrong or failed read.
        """
        trace = _span.current_trace()
        box_min = self._check_key(box_min)
        box_max = self._check_key(box_max)
        if any(lo > hi for lo, hi in zip(box_min, box_max)):
            return []
        if trace is not None:
            with trace.span("route"):
                shards = self._router.shards_for_box(box_min, box_max)
        else:
            shards = self._router.shards_for_box(box_min, box_max)
        if self._workers:
            try:
                return self._snapshot_pool().query(
                    box_min, box_max, shards
                )
            except ParallelError as exc:
                self._note_fallback("query", exc)
        return self._query_live(shards, box_min, box_max)

    def _note_fallback(self, op: str, exc: ParallelError) -> None:
        _log.warning(
            "%s fan-out degraded to the live engine: %s", op, exc
        )

    def _query_live(
        self, shards: Sequence[int], box_min: Key, box_max: Key
    ) -> List[Tuple[Key, Any]]:
        merged: List[Tuple[Key, Any]] = []
        trace = _span.current_trace()
        if _rt.enabled or trace is not None:
            for index in shards:
                t0 = monotonic()
                guard = (
                    self._read_guard(index, "query")
                    if _rt.enabled
                    else self._shards[index].lock.read()
                )
                with guard:
                    t1 = monotonic()
                    part = list(
                        self._shards[index].unsafe_tree.query(
                            box_min, box_max
                        )
                    )
                    t2 = monotonic()
                if trace is not None:
                    trace.add("lock_wait", t0, t1, shard=index)
                    trace.add("scan", t1, t2, shard=index)
                merged.extend(part)
            return merged
        for index in shards:
            merged.extend(self._shards[index].query(box_min, box_max))
        return merged

    def query_many(
        self,
        boxes: "Sequence[Tuple[Sequence[int], Sequence[int]]]",
        use_masks: bool = True,
    ) -> List[List[Tuple[Key, Any]]]:
        """Batched window queries, each result list exactly equal to the
        unsharded :meth:`PHTree.query_many` output (order included)."""
        checked: List[Tuple[Key, Key]] = [
            (self._check_key(lo), self._check_key(hi)) for lo, hi in boxes
        ]
        per_shard: Dict[int, List[int]] = {}
        for position, (lo, hi) in enumerate(checked):
            if any(l > h for l, h in zip(lo, hi)):
                continue
            for index in self._router.shards_for_box(lo, hi):
                per_shard.setdefault(index, []).append(position)
        if self._workers:
            try:
                return self._snapshot_pool().query_many(
                    per_shard, checked, len(checked)
                )
            except ParallelError as exc:
                self._note_fallback("query_many", exc)
        return self._query_many_live(per_shard, checked, use_masks)

    def _query_many_live(
        self,
        per_shard: "Dict[int, List[int]]",
        checked: List[Tuple[Key, Key]],
        use_masks: bool,
    ) -> List[List[Tuple[Key, Any]]]:
        results: List[List[Tuple[Key, Any]]] = [[] for _ in checked]
        trace = _span.current_trace()
        for index in sorted(per_shard):
            positions = per_shard[index]
            locked = self._shards[index]
            t0 = monotonic() if trace is not None else 0.0
            with self._read_guard(index, "query_many"):
                t1 = monotonic() if trace is not None else 0.0
                parts = locked.unsafe_tree.query_many(
                    [checked[p] for p in positions], use_masks=use_masks
                )
                t2 = monotonic() if trace is not None else 0.0
            if trace is not None:
                trace.add("lock_wait", t0, t1, shard=index)
                trace.add("scan", t1, t2, shard=index)
            for position, part in zip(positions, parts):
                results[position].extend(part)
        return results

    def count(
        self, box_min: Sequence[int], box_max: Sequence[int]
    ) -> int:
        """Number of entries in the inclusive box."""
        return len(self.query(box_min, box_max))

    # -- kNN --------------------------------------------------------------------

    def knn(
        self, key: Sequence[int], n: int = 1
    ) -> List[Tuple[Key, Any]]:
        """``n`` nearest entries, identical (order included) to the
        unsharded tree: per-shard candidates merged by
        ``(squared distance, Morton code)`` -- the unsharded tie order.

        Shards are visited in ascending region distance and skipped once
        their region lower bound exceeds the current ``n``-th best
        distance (equality is kept: an equidistant candidate could still
        win the z-order tie).
        """
        key = self._check_key(key)
        if n <= 0:
            return []
        width = self._router.width
        candidate_lists: Optional[List[List[Tuple[Key, Any]]]] = None
        if self._workers:
            try:
                candidate_lists = self._snapshot_pool().knn(key, n)
            except ParallelError as exc:
                self._note_fallback("knn", exc)
        if candidate_lists is None:
            candidate_lists = self._knn_live_candidates(key, n)
        trace = _span.current_trace()
        t0 = monotonic() if trace is not None else 0.0
        merged = [
            (self._point_dist(key, candidate), interleave(candidate, width),
             candidate, value)
            for part in candidate_lists
            for candidate, value in part
        ]
        merged.sort(key=lambda item: (item[0], item[1]))
        if trace is not None:
            trace.add("merge", t0, monotonic())
        return [(candidate, value) for _, _, candidate, value in merged[:n]]

    def _knn_live_candidates(
        self, key: Key, n: int
    ) -> List[List[Tuple[Key, Any]]]:
        """Per-shard candidate lists from the live locked shards, in
        ascending region distance with lower-bound pruning."""
        region_dist = squared_euclidean_region_int(key)
        order = sorted(
            range(self.n_shards),
            key=lambda s: region_dist(*self._router.bounds(s)),
        )
        candidate_lists: List[List[Tuple[Key, Any]]] = []
        distances: List[int] = []
        for index in order:
            if len(distances) >= n:
                distances.sort()
                # Shards come in ascending region distance: once the
                # lower bound exceeds the n-th best exact distance,
                # no remaining shard can contribute (ties are kept --
                # an equidistant candidate may win on z-order).
                if (
                    region_dist(*self._router.bounds(index))
                    > distances[n - 1]
                ):
                    break
            trace = _span.current_trace()
            if _rt.enabled or trace is not None:
                t0 = monotonic()
                guard = (
                    self._read_guard(index, "knn")
                    if _rt.enabled
                    else self._shards[index].lock.read()
                )
                with guard:
                    t1 = monotonic()
                    part = self._shards[index].unsafe_tree.knn(key, n)
                    t2 = monotonic()
                if trace is not None:
                    trace.add("lock_wait", t0, t1, shard=index)
                    trace.add("scan", t1, t2, shard=index)
            else:
                part = self._shards[index].knn(key, n)
            candidate_lists.append(part)
            distances.extend(
                self._point_dist(key, candidate)
                for candidate, _ in part
            )
        return candidate_lists

    @staticmethod
    def _point_dist(query: Key, candidate: Key) -> int:
        total = 0
        for q, v in zip(query, candidate):
            d = q - v
            total += d * d
        return total

    # -- iteration ----------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Key, Any]]:
        """All entries in global z-order (materialised per shard under
        its read lock, yielded shard by shard)."""
        for shard in self._shards:
            yield from shard.items()

    def keys(self) -> Iterator[Key]:
        """All keys in global z-order."""
        for key, _ in self.items():
            yield key

    def __iter__(self) -> Iterator[Key]:
        return self.keys()

    # -- parallel engine management ----------------------------------------------

    def _snapshot_pool(self) -> Any:
        if self._pool is None:
            from repro.parallel.executor import SnapshotPool

            self._pool = SnapshotPool(self, self._workers, self._codec)
        return self._pool

    def set_workers(self, workers: int) -> None:
        """Resize (or disable, with ``0``) the process-pool engine."""
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if workers == self._workers:
            return
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._workers = workers

    def refresh_snapshots(self) -> int:
        """Eagerly republish stale shard snapshots; returns the count
        republished (0 when no pool is active)."""
        if self._workers == 0:
            return 0
        return self._snapshot_pool().refresh()

    def snapshot_bytes(self) -> int:
        """Bytes currently published in shared memory (0 without a pool)."""
        if self._pool is None:
            return 0
        return self._pool.snapshot_bytes()

    def close(self) -> None:
        """Shut down the process pool and unlink all shared memory;
        subsequent reads fall back to the live (in-process) engine.
        Re-enable fan-out with :meth:`set_workers`."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._workers = 0

    def __enter__(self) -> "ShardedPHTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- snapshots ----------------------------------------------------------------

    def freeze_shards(
        self,
        value_codec: Any = NoneValueCodec,
        learned: "bool | None" = None,
    ) -> List[bytes]:
        """Freeze every shard to its packed byte stream, each under its
        read lock; index ``i`` of the result is shard ``i``'s stream
        (header-only when the shard is empty).

        This is the whole-tree snapshot primitive: the durable store's
        checkpoint writes these streams verbatim as segment files and
        later mmap-attaches them zero-copy.  ``learned`` defaults to
        this tree's ``learned_snapshots`` setting.
        """
        from repro.core.frozen import freeze

        if learned is None:
            learned = self._learned_snapshots
        blobs: List[bytes] = []
        for locked in self._shards:
            with locked.lock.read():
                blobs.append(
                    freeze(locked.unsafe_tree, value_codec, learned=learned)
                )
        return blobs

    # -- validation ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Per-shard structural validation plus the routing invariant:
        every stored key lives in the shard its z-prefix names."""
        for index, locked in enumerate(self._shards):
            with locked.lock.read():
                tree = locked.unsafe_tree
                tree.check_invariants()
                for key in tree.keys():
                    owner = self._router.shard_of(key)
                    if owner != index:
                        raise AssertionError(
                            f"key {key} stored in shard {index} but "
                            f"routed to {owner}"
                        )
