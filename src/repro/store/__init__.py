"""Durable storage engine: WAL + frozen segment store (DESIGN.md §14).

:class:`DurablePHTree` persists a (sharded) PH-tree in a directory --
an append-only CRC-framed write-ahead log for mutations, immutable
mmap-attached segment files holding verbatim ``freeze()`` streams
(learned ``PHL1`` trailers included), and an atomically rename-swapped
manifest naming what is live.  Crash recovery replays the longest
valid WAL prefix onto the newest committed segment chain; the fault
drills in :mod:`repro.check.faults` and ``tests/store/`` prove the
contract at seeded byte offsets via :mod:`repro.store.io`.
"""

from repro.store.engine import DurablePHTree, StoreError
from repro.store.io import SimulatedCrash
from repro.store.manifest import Manifest, SegmentRecord
from repro.store.wal import RecordCodec, WriteAheadLog

__all__ = [
    "DurablePHTree",
    "Manifest",
    "RecordCodec",
    "SegmentRecord",
    "SimulatedCrash",
    "StoreError",
    "WriteAheadLog",
]
