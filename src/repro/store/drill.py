"""Subprocess driver for kill-during-X crash drills.

``python -m repro.store.drill DIR --scenario flush`` runs a
deterministic seeded workload against a :class:`DurablePHTree` in
``DIR`` and prints ``COMPLETE`` when it survives.  The parent drill
(:func:`repro.check.faults.run_fault_drill`) arms a real ``SIGKILL``
at a seeded byte offset via the ``REPRO_STORE_CRASH`` environment
variable, expects the process to die mid-phase, then reopens the
directory and checks recovery against :func:`expected_state` -- the
same pure function of ``(dims, width, entries, seed)`` the workload
is generated from, so parent and child agree on the oracle without
any channel between them.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, Dict, List, Tuple

Key = Tuple[int, ...]

#: Workload shape: PUT_RATIO of ops insert, the rest delete a
#: previously inserted key (when one exists).
_PUT_RATIO = 0.75

SCENARIOS = ("wal", "flush", "compact")


def build_ops(
    dims: int, width: int, entries: int, seed: int
) -> List[Tuple[str, Key, Any]]:
    """The deterministic op stream: ``(op, key, value)`` triples."""
    rng = random.Random(seed)
    mask = (1 << width) - 1
    live: List[Key] = []
    ops: List[Tuple[str, Key, Any]] = []
    for i in range(entries):
        if live and rng.random() > _PUT_RATIO:
            key = live.pop(rng.randrange(len(live)))
            ops.append(("del", key, None))
        else:
            key = tuple(rng.randrange(mask + 1) for _ in range(dims))
            live.append(key)
            ops.append(("put", key, (i * 2654435761) & ((1 << 64) - 1)))
    return ops


def expected_state(
    dims: int, width: int, entries: int, seed: int
) -> Dict[Key, Any]:
    """Final contents after the full op stream (the recovery oracle
    for scenarios whose ops were all WAL-durable before the kill)."""
    state: Dict[Key, Any] = {}
    for op, key, value in build_ops(dims, width, entries, seed):
        if op == "put":
            state[key] = value
        else:
            state.pop(key, None)
    return state


def prefix_states(
    dims: int, width: int, entries: int, seed: int
) -> List[Dict[Key, Any]]:
    """Contents after every op-stream prefix (oracle for kills inside
    the WAL append itself: recovery must land on exactly one)."""
    state: Dict[Key, Any] = {}
    out = [dict(state)]
    for op, key, value in build_ops(dims, width, entries, seed):
        if op == "put":
            state[key] = value
        else:
            state.pop(key, None)
        out.append(dict(state))
    return out


def run_scenario(store: Any, scenario: str, ops: List) -> None:
    """Drive the store through ``scenario``; the armed crash decides
    where it dies."""
    def apply(chunk: List) -> None:
        for op, key, value in chunk:
            if op == "put":
                store.put(key, value)
            else:
                store.remove(key, None)

    if scenario == "wal":
        apply(ops)
    elif scenario == "flush":
        apply(ops)
        store.flush()
    elif scenario == "compact":
        # Two flushed deltas plus a live tail make the compaction merge
        # a real multi-segment chain.
        third = max(1, len(ops) // 3)
        apply(ops[:third])
        store.flush()
        apply(ops[third : 2 * third])
        store.flush()
        apply(ops[2 * third :])
        store.compact()
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    store.close()


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.store.drill")
    parser.add_argument("dir")
    parser.add_argument("--scenario", choices=SCENARIOS, required=True)
    parser.add_argument("--dims", type=int, default=2)
    parser.add_argument("--width", type=int, default=16)
    parser.add_argument("--entries", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--learned", action="store_true")
    args = parser.parse_args(argv)

    from repro.core.serialize import U64ValueCodec
    from repro.store.engine import DurablePHTree

    store = DurablePHTree.open(
        args.dir,
        dims=args.dims,
        width=args.width,
        shards=args.shards,
        value_codec=U64ValueCodec,
        learned=args.learned,
    )
    ops = build_ops(args.dims, args.width, args.entries, args.seed)
    run_scenario(store, args.scenario, ops)
    print("COMPLETE")
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
